#!/usr/bin/env bash
# Metric-name lint: the README metrics reference table must list
# exactly the metric names registered by production code — no stale
# rows after a rename, no undocumented instruments (DESIGN.md §5i).
#
#   scripts/lint_metrics.sh
#
# Source side: every `metrics::` / `stream::` registration call in
# crates/*/src. Registration calls may wrap across lines (rustfmt puts
# the name literal on the line after `counter_family_with_cap(` etc.),
# so the scan carries a two-line lookahead for the first string
# literal after the call opener.
#
# Doc side: the first backticked identifier of each table row between
# the `<!-- metrics-table-start -->` / `<!-- metrics-table-end -->`
# markers in README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

src_names="$(
    # shellcheck disable=SC2046 # find output is one path per token
    awk '
        /(metrics|stream)::(counter|gauge|histogram|windowed_counter|windowed_histogram|counter_family|counter_family_with_cap|detector)\(/ {
            pending = 2
        }
        pending > 0 {
            if (match($0, /"[a-z][a-z0-9_]*"/)) {
                print substr($0, RSTART + 1, RLENGTH - 2)
                pending = 0
            } else {
                pending--
            }
        }
    ' $(find crates/*/src -name '*.rs') | sort -u
)"

doc_names="$(
    awk '/<!-- metrics-table-start -->/ { in_table = 1; next }
         /<!-- metrics-table-end -->/ { in_table = 0 }
         in_table && /^\|/ {
             if (match($0, /`[a-z][a-z0-9_]*`/)) {
                 print substr($0, RSTART + 1, RLENGTH - 2)
             }
         }' README.md | sort -u
)"

if [ -z "$doc_names" ]; then
    echo "lint_metrics: no names found between the metrics-table markers in README.md" >&2
    exit 1
fi

status=0
undocumented="$(comm -23 <(echo "$src_names") <(echo "$doc_names"))"
if [ -n "$undocumented" ]; then
    echo "lint_metrics: registered in code but missing from the README table:" >&2
    echo "$undocumented" | sed 's/^/    /' >&2
    status=1
fi
stale="$(comm -13 <(echo "$src_names") <(echo "$doc_names"))"
if [ -n "$stale" ]; then
    echo "lint_metrics: listed in the README table but never registered:" >&2
    echo "$stale" | sed 's/^/    /' >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    count="$(echo "$src_names" | wc -l)"
    echo "lint_metrics: README table matches the $count registered metric names"
fi
exit "$status"
