#!/usr/bin/env bash
# Records a perf-baseline snapshot (BENCH_*.json) by chaining the
# timing experiment and the serving experiment into one cumulative
# `poisonrec-bench-v1` file (exp_timing writes the attack-loop metrics,
# exp_serve seeds from them via --bench-base and appends the
# connections × shards wire-path p50/p95/p99 grid, the idle keep-alive
# fleet numbers, and the retrain-churn read latency), so future PRs can
# gate against it with `perf_diff` (DESIGN.md §5d–f).
#
#   scripts/bench_snapshot.sh [OUT.json]
#
# OUT defaults to BENCH_PR10.json at the repo root. All workload knobs
# are env-overridable so CI can run a tiny variant into a temp dir:
#
#   BENCH_SCALE=0.02 BENCH_STEPS=1 BENCH_EPISODES=4 BENCH_EVAL_USERS=32 \
#       scripts/bench_snapshot.sh /tmp/BENCH_tiny.json
#
# The seed is fixed so the measured workload (not its wall time) is
# bit-identical across machines; wall times are compared with a
# relative threshold by `perf_diff`, never for equality.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
scale="${BENCH_SCALE:-0.05}"
steps="${BENCH_STEPS:-3}"
episodes="${BENCH_EPISODES:-8}"
eval_users="${BENCH_EVAL_USERS:-128}"
threads="${BENCH_THREADS:-4}"
seed="${BENCH_SEED:-7}"
# The over-the-wire replay pays one HTTP round-trip per eval user per
# observation, so it gets its own (smaller) attack cell by default.
serve_steps="${BENCH_SERVE_STEPS:-2}"
serve_episodes="${BENCH_SERVE_EPISODES:-4}"
serve_eval_users="${BENCH_SERVE_EVAL_USERS:-32}"
work_dir="$(mktemp -d)"
trap 'rm -rf "$work_dir"' EXIT

echo "==> cargo build --release (timing + trace tools)"
cargo build --release -p bench -p telemetry >/dev/null

echo "==> exp_timing (scale=$scale steps=$steps episodes=$episodes seed=$seed)"
./target/release/exp_timing \
    --scale "$scale" --steps "$steps" --episodes "$episodes" \
    --eval-users "$eval_users" --threads "$threads" --seed "$seed" \
    --out "$work_dir" \
    --trace "$work_dir/trace.json" \
    --bench-json "$work_dir/BENCH_timing.json"

echo "==> exp_serve (steps=$serve_steps episodes=$serve_episodes eval_users=$serve_eval_users)"
SERVE_ACCESS_LOG="$work_dir/serve_access.jsonl" \
./target/release/exp_serve \
    --scale "$scale" --steps "$serve_steps" --episodes "$serve_episodes" \
    --eval-users "$serve_eval_users" --threads "$threads" --seed "$seed" \
    --rankers itempop \
    --out "$work_dir" \
    --bench-base "$work_dir/BENCH_timing.json" \
    --bench-json "$out"

echo "==> validating the trace and access log behind the snapshot"
./target/release/validate_jsonl --trace "$work_dir/trace.json" \
    --access-log "$work_dir/serve_access.jsonl"
./target/release/trace_report "$work_dir/trace.json" >/dev/null

echo "==> perf_diff self-compare (a fresh snapshot must gate itself)"
./target/release/perf_diff "$out" "$out" >/dev/null

# Gate the full-size snapshot against the previous committed baseline
# (CI's env-shrunken tiny variant is a different workload, so only the
# default full run is comparable). PR7's kernel rewrite must *improve*
# the update hot path, not merely hold it. The binding constraint is
# the 1-core container (DESIGN.md §5g): the pool-parallel paths cannot
# contribute on one core, and the residual update time is bit-pinned
# libm exp/tanh plus per-node bookkeeping, so the end-to-end update
# gate is >= 1.54x (--threshold -0.35, measured ~1.65x with margin for
# timer noise) rather than the multi-core >= 5x target. The MatMulT
# kernels themselves — the part the rewrite owns — must be >= 3x
# faster per call (--threshold -0.6667; measured 5.4x fwd / 3.2x bwd).
# Everything else must stay within the general 2x allowance.
if [ "$out" = "BENCH_PR7.json" ] && [ -f BENCH_PR6.json ]; then
    echo "==> perf_diff vs committed BENCH_PR6.json (2x allowance)"
    ./target/release/perf_diff BENCH_PR6.json "$out" --threshold 1.0
    echo "==> must-improve gate: step/update_secs_median >= 1.54x faster"
    ./target/release/perf_diff BENCH_PR6.json "$out" \
        --threshold -0.35 --only step/update_secs_median
    echo "==> must-improve gate: op/MatMulT/* >= 3x faster"
    ./target/release/perf_diff BENCH_PR6.json "$out" \
        --threshold -0.6667 --only op/MatMulT/
fi

# PR9 adds the live-metrics plane to the serve hot path; the snapshot
# must stay inside the general 2x allowance vs the PR7 baseline, and
# exp_serve itself asserts plane-on vs plane-off read latency within
# SERVE_PLANE_GATE (the serve/plane_{off,on}_read_p{50,99}_secs metrics
# recorded above carry the measured pair).
if [ "$out" = "BENCH_PR9.json" ] && [ -f BENCH_PR7.json ]; then
    echo "==> perf_diff vs committed BENCH_PR7.json (2x allowance)"
    ./target/release/perf_diff BENCH_PR7.json "$out" --threshold 1.0
fi

# PR10 adds the defense subsystem. The snapshot workload serves
# *undefended* (no --defense flag), so the admission judge must cost
# nothing when absent: every attack-loop and wire-path metric stays
# inside the general 2x allowance vs the PR9 baseline.
if [ "$out" = "BENCH_PR10.json" ] && [ -f BENCH_PR9.json ]; then
    echo "==> perf_diff vs committed BENCH_PR9.json (2x allowance)"
    ./target/release/perf_diff BENCH_PR9.json "$out" --threshold 1.0
fi

echo "bench snapshot recorded: $out"
