#!/usr/bin/env bash
# Regenerates every artifact in results/ in dependency order.
# Defaults are laptop-scale; pass extra flags through, e.g.
#   scripts/run_all_experiments.sh --scale 0.2 --steps 60
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench

BIN=target/release
FLAGS=("$@")

$BIN/exp_table2  "${FLAGS[@]}"
$BIN/exp_timing  "${FLAGS[@]}"
$BIN/exp_fig4    "${FLAGS[@]}"
$BIN/exp_fig5    "${FLAGS[@]}"
$BIN/exp_fig6    "${FLAGS[@]}"
$BIN/exp_table3  "${FLAGS[@]}"
$BIN/exp_table4  "${FLAGS[@]}"          # consumes table3.csv
$BIN/exp_compare_paper "${FLAGS[@]}"    # consumes table3.csv
$BIN/exp_ablation "${FLAGS[@]}"
$BIN/exp_variance "${FLAGS[@]}"
$BIN/exp_defense  "${FLAGS[@]}"

echo "all artifacts written to results/"
