#!/usr/bin/env bash
# Full local CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> telemetry smoke (tiny fig4 run + JSONL validation)"
# 3 steps x 4 episodes on one tiny ItemPop cell per design; the
# validator checks every line parses, steps are gap-free per cell, and
# each cell's cumulative observations equal episodes x (step + 1).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -p bench --bin exp_fig4 -- \
    --scale 0.02 --steps 3 --episodes 4 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 16 --rankers itempop \
    --out "$smoke_dir" --telemetry "$smoke_dir/run.jsonl" >/dev/null
test -s "$smoke_dir/run.jsonl" || { echo "telemetry log empty"; exit 1; }
cargo run --release -p telemetry --bin validate_jsonl -- \
    "$smoke_dir/run.jsonl" --expect-steps 3 --expect-cells 4

echo "CI green."
