#!/usr/bin/env bash
# Full local CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> metric-name lint (README table vs registration calls)"
scripts/lint_metrics.sh

echo "==> kernel equivalence smoke (blocked/parallel kernels vs naive refs)"
# The release-mode codegen is what production runs, so the bit-exactness
# contract (kernel.rs) is re-proven here under --release: blocked and
# pool-parallel matmul/t_matmul/matmul_t must match the naive reference
# loops bit-for-bit at threads 1/4/8, NaN/Inf propagation included.
cargo test -q --release -p tensor --test kernel_equivalence

echo "==> telemetry smoke (tiny fig4 run + JSONL validation)"
# 3 steps x 4 episodes on one tiny ItemPop cell per design; the
# validator checks every line parses, steps are gap-free per cell, and
# each cell's cumulative observations equal episodes x (step + 1).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -p bench --bin exp_fig4 -- \
    --scale 0.02 --steps 3 --episodes 4 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 16 --rankers itempop \
    --out "$smoke_dir" --telemetry "$smoke_dir/run.jsonl" >/dev/null
test -s "$smoke_dir/run.jsonl" || { echo "telemetry log empty"; exit 1; }
cargo run --release -p telemetry --bin validate_jsonl -- \
    "$smoke_dir/run.jsonl" --expect-steps 3 --expect-cells 4

echo "==> crash/resume smoke (scripted kill + bit-identical resume)"
# First run checkpoints every 2 steps and a scripted fault kills the
# process right after the step-4 checkpoint of the first cell (exit
# code 42). The second run resumes from the checkpoint directory and
# finishes everything. Stitching the two telemetry logs (dropping the
# second manifest) must yield a gap-free 6-step trace for all 4 cells
# — the proof that resume continued exactly where the crash stopped.
crash_dir="$smoke_dir/crash"
mkdir -p "$crash_dir"
set +e
cargo run --release -p bench --bin exp_fig4 -- \
    --scale 0.02 --steps 6 --episodes 4 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 16 --rankers itempop --threads 1 \
    --checkpoint-every 2 --checkpoint-dir "$crash_dir/ckpt" \
    --fault-kill-step 4 \
    --out "$crash_dir" --telemetry "$crash_dir/run1.jsonl" >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 42 ]; then
    echo "expected fault exit code 42, got $status"
    exit 1
fi
ls "$crash_dir"/ckpt/*.ckpt >/dev/null || { echo "no checkpoint written before kill"; exit 1; }
cargo run --release -p bench --bin exp_fig4 -- \
    --scale 0.02 --steps 6 --episodes 4 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 16 --rankers itempop --threads 1 \
    --checkpoint-every 2 --checkpoint-dir "$crash_dir/ckpt" \
    --resume "$crash_dir/ckpt" \
    --out "$crash_dir" --telemetry "$crash_dir/run2.jsonl" >/dev/null
cat "$crash_dir/run1.jsonl" > "$crash_dir/stitched.jsonl"
tail -n +2 "$crash_dir/run2.jsonl" >> "$crash_dir/stitched.jsonl"
cargo run --release -p telemetry --bin validate_jsonl -- \
    "$crash_dir/stitched.jsonl" --expect-steps 6 --expect-cells 4

echo "==> trace smoke (tiny traced fig4 run + Chrome-trace validation)"
# The same tiny cell, now with the hierarchical tracer armed. The
# validator re-parses the Chrome JSON and enforces the trace schema
# (balanced begin/end per span, monotone timestamps per track, LIFO
# nesting); trace_report then aggregates it and gates the op table.
trace_dir="$smoke_dir/trace"
mkdir -p "$trace_dir"
cargo run --release -p bench --bin exp_fig4 -- \
    --scale 0.02 --steps 3 --episodes 4 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 16 --rankers itempop \
    --out "$trace_dir" --trace "$trace_dir/trace.json" >/dev/null
cargo run --release -p telemetry --bin validate_jsonl -- --trace "$trace_dir/trace.json"
cargo run --release -p telemetry --bin trace_report -- "$trace_dir/trace.json" >/dev/null

echo "==> serve smoke (over-the-wire attack cell + sharded load grid + access log)"
# exp_serve replays a tiny fig-4 cell through RemoteSystem over a real
# socket (asserting bit-identical rewards at the highest shard count),
# sweeps a connections × shards load grid on persistent keep-alive
# connections (asserting zero non-200s and no reconnect-per-request),
# churns retrains under read load, and shuts down gracefully — its
# exit code is non-zero if any accepted request was dropped. The
# access log it leaves behind must validate, including the per-event
# shard and lag_micros fields.
serve_dir="$smoke_dir/serve"
mkdir -p "$serve_dir"
SERVE_SHARDS_GRID=1,2 SERVE_CONNS_GRID=2 SERVE_REQUESTS=60 SERVE_IDLE_CONNS=0 \
SERVE_ACCESS_LOG="$serve_dir/access.jsonl" \
cargo run --release -p bench --bin exp_serve -- \
    --scale 0.02 --steps 1 --episodes 2 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 8 --rankers itempop --threads 2 \
    --out "$serve_dir" >/dev/null
cargo run --release -p telemetry --bin validate_jsonl -- \
    --access-log "$serve_dir/access.jsonl"

echo "==> high-connection smoke (1k idle keep-alive conns on the event loop)"
# The event loop holds 1k idle keep-alive connections on its fixed
# thread set while the grid and retrain churn run; the access log must
# still validate (shard field in bounds, per-conn clocks monotone).
many_dir="$smoke_dir/many_conns"
mkdir -p "$many_dir"
SERVE_SHARDS_GRID=2 SERVE_CONNS_GRID=2 SERVE_REQUESTS=40 SERVE_IDLE_CONNS=1000 \
SERVE_ACCESS_LOG="$many_dir/access.jsonl" \
cargo run --release -p bench --bin exp_serve -- \
    --scale 0.02 --steps 1 --episodes 2 --attackers 4 --trajectory 5 \
    --dim 8 --eval-users 8 --rankers itempop --threads 2 \
    --out "$many_dir" >/dev/null
cargo run --release -p telemetry --bin validate_jsonl -- \
    --access-log "$many_dir/access.jsonl"

echo "==> live-metrics smoke (/metrics scrapes against the real binary)"
# The serve binary up on a real socket, driven over its stdin protocol:
# obs_top scrapes /metrics in Prometheus text twice (validate_prom
# checks exposition well-formedness on each and cumulative-series
# monotonicity across the pair), once with ?window=5 (the narrowed
# window must label every windowed series), and once as the JSON
# table render. A "quit" line then shuts the server down gracefully
# (exit 0 == nothing dropped) and the access log's drop accounting
# must balance.
live_dir="$smoke_dir/live_metrics"
mkdir -p "$live_dir"
mkfifo "$live_dir/stdin.fifo"
./target/release/serve \
    --dataset steam --scale 0.02 --ranker ItemPop --port 0 \
    --threads 2 --shards 2 --eval-users 8 \
    --access-log "$live_dir/access.jsonl" \
    < "$live_dir/stdin.fifo" > "$live_dir/serve.out" &
serve_pid=$!
exec 9> "$live_dir/stdin.fifo" # hold the writer open: EOF means shutdown
for _ in $(seq 100); do
    grep -q '"type":"serving"' "$live_dir/serve.out" 2>/dev/null && break
    sleep 0.1
done
addr="$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$live_dir/serve.out" | head -1)"
test -n "$addr" || { echo "serve bin never announced its address"; exit 1; }
./target/release/obs_top --addr "$addr" --scrape prom --iters 1 --no-clear \
    > "$live_dir/scrape1.prom"
./target/release/obs_top --addr "$addr" --scrape prom --iters 1 --no-clear \
    > "$live_dir/scrape2.prom"
cargo run --release -p telemetry --bin validate_prom -- \
    "$live_dir/scrape1.prom" "$live_dir/scrape2.prom"
./target/release/obs_top --addr "$addr" --scrape prom --window 5 --iters 1 \
    --no-clear > "$live_dir/scrape_w5.prom"
grep -q 'window="5"' "$live_dir/scrape_w5.prom" \
    || { echo "?window=5 scrape missing narrowed window label"; exit 1; }
./target/release/obs_top --addr "$addr" --iters 1 --no-clear \
    > "$live_dir/table.txt"
grep -q 'windowed histograms' "$live_dir/table.txt" \
    || { echo "obs_top table render missing windowed histograms"; exit 1; }
echo quit >&9
exec 9>&-
wait "$serve_pid" || { echo "serve bin exited non-zero (dropped requests?)"; exit 1; }
cargo run --release -p telemetry --bin validate_jsonl -- \
    --access-log "$live_dir/access.jsonl"

echo "==> attack zoo smoke (tiny grid, one cell per family, local + wire)"
# exp_zoo drives every registered attack family through the shared
# run_attack lifecycle on one tiny cell each — in-process AND through
# RemoteSystem over a real socket, asserting the two are bit-identical
# per cell. The zoo telemetry log must validate under the zoo schema
# (gap-free steps per cell, observations within the declared budget,
# injection peaks within N x T, one summary per cell).
zoo_dir="$smoke_dir/zoo"
mkdir -p "$zoo_dir"
ZOO_BUDGETS=4x6 ZOO_TRANSPORT=both ZOO_SHARDS=2 \
ZOO_APPGRAD_ITERS=2 ZOO_INFLUENCE_ROUNDS=2 \
cargo run --release -p bench --bin exp_zoo -- \
    --scale 0.02 --steps 2 --episodes 4 --attackers 4 --trajectory 6 \
    --dim 8 --eval-users 16 --rankers itempop --datasets steam \
    --out "$zoo_dir" --telemetry "$zoo_dir/zoo.jsonl" >/dev/null
# 8 families x 2 transports.
cargo run --release -p telemetry --bin validate_jsonl -- \
    "$zoo_dir/zoo.jsonl" --zoo --expect-cells 16

echo "==> defense smoke (attack x defense matrix, both transports + CSV lift gate)"
# exp_defense runs the Popular family against all five defense kinds
# (undefended `none` first as the lift baseline), each cell in-process
# AND over the wire, asserting bit-identical histories/poison/RecNum
# and verdict ledgers between the transports. The committed smoke
# config (Steam 0.1 x CoVisitation, N=16 T=20) is the acceptance
# setting from DESIGN.md §5j: the undefended lift is large enough
# (RecNum 29) that every layered kind must show positive lift
# degradation at <= 5% organic FPR — the awk gate below enforces
# exactly that from the CSV. The telemetry log must validate under the
# defense schema (one defense_cell per cell x transport, balanced
# verdict ledgers, finite rates, none-cells reject nothing).
def_dir="$smoke_dir/defense"
mkdir -p "$def_dir"
DEF_ATTACKS=popular DEF_BUDGETS=16x20 DEF_TRANSPORT=both DEF_SHARDS=2 \
cargo run --release -p bench --bin exp_defense -- \
    --scale 0.1 --attackers 16 --trajectory 20 --eval-users 96 \
    --rankers covisitation --datasets steam --threads 2 \
    --out "$def_dir" --telemetry "$def_dir/defense.jsonl" >/dev/null
# 5 defense kinds x 2 transport legs.
cargo run --release -p telemetry --bin validate_jsonl -- \
    "$def_dir/defense.jsonl" --defense --expect-cells 10
awk -F, '
    NR == 1 { next }
    $6 != "local" { next }
    $3 == "none" {
        if ($15 + 0 == 0) { print "defense smoke: no undefended lift to degrade"; bad = 1 }
        next
    }
    {
        kinds++
        if ($17 + 0 <= 0) { print "defense smoke: " $3 " shows no lift degradation"; bad = 1 }
        if ($14 + 0 > 0.05) { print "defense smoke: " $3 " organic FPR " $14 " > 0.05"; bad = 1 }
    }
    END {
        if (kinds != 4) { print "defense smoke: expected 4 layered kinds, saw " kinds; bad = 1 }
        exit bad
    }
' "$def_dir/defense.csv"

echo "==> attack zoo conformance suite (release)"
# Every registered family through the pinned checks: thread
# invariance, wire transparency at shards 1 and 4, interrupt+resume
# bit-identity, and the budget/capability property tests — re-proven
# under release codegen, which is what the experiment grids run.
# defense_conformance re-proves the same gate with a stateful
# admission judge in the path (every family x defense kind), plus
# kill+resume with the defense state sealed into the checkpoint.
cargo test -q --release --test attack_conformance --test attack_budget \
    --test defense_conformance

echo "==> perf gate (tiny bench snapshot + perf_diff both ways)"
# A fresh snapshot must pass against itself, and the committed +20%
# regression fixture must fail the gate (exit non-zero).
BENCH_SCALE=0.02 BENCH_STEPS=1 BENCH_EPISODES=4 BENCH_EVAL_USERS=32 BENCH_THREADS=2 \
BENCH_SERVE_STEPS=1 BENCH_SERVE_EPISODES=2 BENCH_SERVE_EVAL_USERS=8 \
SERVE_SHARDS_GRID=1,2 SERVE_CONNS_GRID=2 SERVE_REQUESTS=60 SERVE_IDLE_CONNS=200 \
    scripts/bench_snapshot.sh "$smoke_dir/BENCH_tiny.json" >/dev/null
cargo run --release -p telemetry --bin perf_diff -- \
    "$smoke_dir/BENCH_tiny.json" "$smoke_dir/BENCH_tiny.json" >/dev/null
if cargo run --release -p telemetry --bin perf_diff -- \
    tests/golden/bench_baseline.json tests/golden/bench_regressed.json >/dev/null 2>&1; then
    echo "perf_diff accepted a +20% regression fixture"; exit 1
fi

echo "==> committed-snapshot must-improve gate (PR7 kernels vs PR6 baseline)"
# The committed BENCH_PR7.json was recorded on the same workload as
# BENCH_PR6.json; the kernel rewrite must show up in it as a >= 1.54x
# faster PPO update median (1-core container is the binding
# constraint — see bench_snapshot.sh and DESIGN.md §5g) and >= 3x
# faster MatMulT kernels. Comparing the committed files keeps this
# stage deterministic and fast (no re-benchmarking in CI).
if [ -f BENCH_PR6.json ] && [ -f BENCH_PR7.json ]; then
    cargo run --release -p telemetry --bin perf_diff -- \
        BENCH_PR6.json BENCH_PR7.json --threshold -0.35 --only step/update_secs_median
    cargo run --release -p telemetry --bin perf_diff -- \
        BENCH_PR6.json BENCH_PR7.json --threshold -0.6667 --only op/MatMulT/
fi

echo "==> committed-snapshot gate (PR9 metrics plane vs PR7 baseline)"
# The live-metrics plane rides the serve hot path; the committed
# BENCH_PR9.json (same workload as BENCH_PR7.json, plane enabled) must
# hold every wire-path latency inside the general 2x allowance.
# exp_serve additionally asserts plane-on vs plane-off p50/p99 within
# SERVE_PLANE_GATE when it records the snapshot; the measured pair is
# carried in serve/plane_{off,on}_read_p{50,99}_secs.
if [ -f BENCH_PR7.json ] && [ -f BENCH_PR9.json ]; then
    cargo run --release -p telemetry --bin perf_diff -- \
        BENCH_PR7.json BENCH_PR9.json --threshold 1.0
fi

echo "==> committed-snapshot gate (PR10 defense subsystem vs PR9 baseline)"
# The snapshot workload serves undefended, so the defense subsystem
# must be free when absent: the committed BENCH_PR10.json (same
# workload as BENCH_PR9.json) holds every metric inside the general
# 2x allowance.
if [ -f BENCH_PR9.json ] && [ -f BENCH_PR10.json ]; then
    cargo run --release -p telemetry --bin perf_diff -- \
        BENCH_PR9.json BENCH_PR10.json --threshold 1.0
fi

echo "CI green."
