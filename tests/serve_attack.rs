//! Cross-crate integration: the PoisonRec attack against a **served**
//! recommender. Every byte crosses a real 127.0.0.1 socket — this is
//! the over-the-wire twin of `end_to_end_attack.rs`.
//!
//! Covers the serve-path acceptance criteria: bit-identical rewards vs
//! the in-process run, graceful shutdown that completes every accepted
//! request under concurrent load, and fault-injected handler panics
//! that surface as 500 without taking the server down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::remote::{HttpClient, RemoteSystem};
use recsys::system::{BlackBoxSystem, ObservableSystem, SystemConfig};
use runtime::FaultPlan;
use serve::{RecApp, Server, ServerConfig};

fn small_system(seed: u64) -> BlackBoxSystem {
    let data = PaperDataset::Steam.generate_scaled(0.04, seed);
    let boxed = RankerKind::ItemPop.build(&LogView::clean(&data), 32);
    BlackBoxSystem::build(
        data,
        boxed,
        SystemConfig {
            eval_users: 64,
            seed,
            ..SystemConfig::default()
        },
    )
}

fn quick_cfg(seed: u64) -> PoisonRecConfig {
    PoisonRecConfig {
        policy: PolicyConfig {
            dim: 16,
            num_attackers: 8,
            trajectory_len: 12,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            samples_per_step: 6,
            batch: 6,
            ..PpoConfig::default()
        },
        action_space: ActionSpaceKind::BcbtPopular,
        seed,
        threads: 2,
    }
}

fn start_server(cfg: ServerConfig) -> (Server, String) {
    let server = Server::start(RecApp::new(small_system(7), None), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// The tentpole criterion: an identical-seed attack cell trained
/// through `RemoteSystem` over a real socket produces a bit-identical
/// reward history to the in-process run — at every shard count. The
/// sharded serving state (per-shard snapshot cells, seq-merged
/// feedback queues) must be invisible to the attacker.
#[test]
fn remote_attack_is_bit_identical_to_in_process() {
    const STEPS: usize = 2;

    // In-process reference.
    let reference = small_system(7);
    let mut local = PoisonRecTrainer::new(quick_cfg(21), &reference);
    local.train(&reference, STEPS);
    let local_history: Vec<(f32, f32)> = local
        .history()
        .iter()
        .map(|s| (s.mean_reward, s.max_reward))
        .collect();

    // Identical system, served at each shard count; attack over the wire.
    for shards in [1usize, 4] {
        let (server, addr) = start_server(ServerConfig {
            threads: 2,
            shards,
            ..ServerConfig::default()
        });
        let remote = RemoteSystem::connect(addr).expect("connect to served system");
        assert_eq!(remote.ranker_name(), reference.ranker_name());
        assert_eq!(remote.shards(), shards, "served shard count undisclosed");
        let mut over_wire = PoisonRecTrainer::new(quick_cfg(21), &remote);
        over_wire.train(&remote, STEPS);
        let remote_history: Vec<(f32, f32)> = over_wire
            .history()
            .iter()
            .map(|s| (s.mean_reward, s.max_reward))
            .collect();

        assert_eq!(
            local_history, remote_history,
            "over-the-wire attack diverged from the in-process run at {shards} shard(s)"
        );
        assert_eq!(
            remote.observations_spent(),
            reference.observations_spent(),
            "remote attack consumed a different observation budget at {shards} shard(s)"
        );

        let stats = server.shutdown();
        assert_eq!(stats.dropped(), 0, "shutdown dropped requests");
    }
}

/// Graceful shutdown under concurrent read load: every request the
/// server accepted is completed, none dropped, and clients only ever
/// see whole, well-framed responses (HttpClient validates framing).
#[test]
fn graceful_shutdown_completes_inflight_requests_under_load() {
    let (server, addr) = start_server(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });

    let completed = AtomicU64::new(0);
    let stats = std::thread::scope(|scope| {
        for t in 0..3usize {
            let addr = addr.clone();
            let completed = &completed;
            scope.spawn(move || {
                let mut client = HttpClient::new(addr);
                for i in 0..200usize {
                    let user = ((t * 31 + i) % 50) as u32;
                    match client.request("GET", &format!("/recommend/{user}?k=5"), None) {
                        // Any fully-framed response counts; once shutdown
                        // lands, connection errors are expected — stop.
                        Ok((status, _)) => {
                            assert!(status == 200 || status == 404, "unexpected status {status}");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        // Let the load ramp, then shut down mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.shutdown()
    });

    assert_eq!(stats.dropped(), 0, "accepted requests were dropped");
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "load never reached the server"
    );
    // The server's ledger can only exceed the clients' count by
    // responses written to sockets the clients had already abandoned.
    assert!(stats.completed >= completed.load(Ordering::Relaxed));
}

/// The live-metrics plane over the wire plus access-log drop
/// accounting: `/metrics` answers both JSON and Prometheus exposition
/// (with window narrowing), and after a graceful shutdown the access
/// log ends in an `access-summary` line whose ledger balances — every
/// request the server completed is either a line in the file or
/// explicitly counted as dropped.
#[test]
fn metrics_scrapes_and_access_log_accounting_balance() {
    use telemetry::json::{self, Json};

    let log_path = std::env::temp_dir().join(format!(
        "serve-access-accounting-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log_path);
    let (server, addr) = start_server(ServerConfig {
        threads: 2,
        shards: 2,
        access_log: Some(log_path.clone()),
        ..ServerConfig::default()
    });

    let mut client = HttpClient::new(addr.clone());
    for i in 0..20u32 {
        let (status, _) = client
            .request("GET", &format!("/recommend/{}?k=5", i % 7), None)
            .expect("recommend");
        assert_eq!(status, 200);
    }
    // One parse-error request: logged with method "?" but outside the
    // completed-request ledger the summary balances.
    let (status, _) = client.request("BOGUS", "/healthz", None).expect("bad verb");
    assert_eq!(status, 405);

    // Prom scrape: typed exposition carrying the labeled request family.
    let (status, prom) = client
        .request_text("GET", "/metrics?format=prom&window=10", None)
        .expect("prom scrape");
    assert_eq!(status, 200);
    assert!(prom.contains("# TYPE serve_requests_total counter"));
    assert!(prom.contains("route=\"recommend\""));
    assert!(prom.contains("serve_request_secs_window_count{window=\"10\"}"));

    // JSON scrape: cumulative layer plus the streaming plane.
    let (status, doc) = client
        .request("GET", "/metrics", None)
        .expect("json scrape");
    assert_eq!(status, 200);
    assert!(doc
        .get("stream")
        .and_then(|s| s.get("histograms"))
        .is_some());

    let stats = server.shutdown();
    assert_eq!(stats.dropped(), 0);

    // Replay the file: summary must be the last line and must balance.
    let text = std::fs::read_to_string(&log_path).expect("access log written");
    let lines: Vec<&str> = text.lines().collect();
    let summary = json::parse(lines.last().expect("non-empty log")).expect("summary parses");
    assert_eq!(
        summary.get("type").and_then(Json::as_str),
        Some("access-summary"),
        "last line must be the accounting summary"
    );
    let counted = lines
        .iter()
        .filter_map(|l| json::parse(l).ok())
        .filter(|v| {
            v.get("type").and_then(Json::as_str) == Some("access")
                && v.get("method").and_then(Json::as_str) != Some("?")
        })
        .count() as u64;
    let events = summary.get("events").and_then(Json::as_u64).unwrap();
    let dropped = summary.get("dropped").and_then(Json::as_u64).unwrap();
    let completed = summary.get("completed").and_then(Json::as_u64).unwrap();
    assert_eq!(events, counted, "summary events == ledger lines in file");
    assert_eq!(
        events + dropped,
        completed,
        "every completed request is in the file or counted as dropped"
    );
    assert_eq!(
        completed, stats.completed,
        "summary matches the server ledger"
    );
    let _ = std::fs::remove_file(&log_path);
}

/// A handler panic injected via `runtime::FaultPlan` is contained: the
/// faulted request gets a 500, the connection stays sane, and the
/// server keeps serving 200s afterwards. Both byte-moving drivers run
/// the same `Connection` machine, so both must behave identically.
#[test]
fn fault_injected_panic_returns_500_and_server_keeps_serving() {
    for driver in [serve::DriverKind::Event, serve::DriverKind::Blocking] {
        let (server, addr) = start_server(ServerConfig {
            threads: 1,
            driver,
            fault_plan: Some(Arc::new(FaultPlan::new().panic_on_job(2))),
            ..ServerConfig::default()
        });
        assert_eq!(server.driver(), driver, "requested driver not honored");

        let mut client = HttpClient::new(addr);
        let mut statuses = Vec::new();
        for _ in 0..5 {
            let (status, body) = client.request("GET", "/healthz", None).expect("request");
            if status == 500 {
                assert_eq!(
                    body.get("error").and_then(telemetry::json::Json::as_str),
                    Some("internal error")
                );
            }
            statuses.push(status);
        }
        // Work-unit ordinals count from 0, so the plan fires on request #3.
        assert_eq!(statuses, vec![200, 200, 500, 200, 200], "driver {driver:?}");

        let stats = server.shutdown();
        assert_eq!(stats.dropped(), 0);
        assert_eq!(stats.accepted, 5);
    }
}
