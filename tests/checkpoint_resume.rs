//! Integration proof of the checkpoint/resume contract: a training run
//! interrupted at a step boundary and resumed from its checkpoint
//! continues **bit-identically** to a run that was never interrupted —
//! same per-step stats, same parameter bytes, same best episode — at
//! every thread count. Also proves the failure side: corrupted files
//! and mismatched configurations are refused loudly, never half-loaded.

use poisonrec::{
    ActionSpaceKind, CheckpointError, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig,
};
use recsys::data::Dataset;
use recsys::rankers::ItemPop;
use recsys::system::{BlackBoxSystem, SystemConfig};
use tensor::wire::Codec;

/// Deterministic tiny victim; rebuilt fresh for every run so each
/// trainer sees an untouched observation seed stream, exactly like a
/// process restart.
fn tiny_system() -> BlackBoxSystem {
    let histories = (0..40u32)
        .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
        .collect();
    let data = Dataset::from_histories("tiny", histories, 60, 8);
    BlackBoxSystem::build(
        data,
        Box::new(ItemPop::new()),
        SystemConfig {
            eval_users: 24,
            reserve_attackers: 8,
            ..SystemConfig::default()
        },
    )
}

fn tiny_cfg(threads: usize) -> PoisonRecConfig {
    PoisonRecConfig {
        policy: PolicyConfig {
            dim: 8,
            num_attackers: 4,
            trajectory_len: 6,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            lr: 0.01,
            samples_per_step: 6,
            batch: 6,
            epochs: 2,
            ..PpoConfig::default()
        },
        action_space: ActionSpaceKind::BcbtPopular,
        seed: 5,
        threads,
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("poisonrec-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Every deterministic bit of two trainers must agree.
fn assert_trainers_identical(straight: &PoisonRecTrainer, resumed: &PoisonRecTrainer) {
    assert_eq!(straight.history().len(), resumed.history().len());
    for (a, b) in straight.history().iter().zip(resumed.history()) {
        assert_eq!(a.step, b.step);
        assert_eq!(
            a.mean_reward.to_bits(),
            b.mean_reward.to_bits(),
            "step {}",
            a.step
        );
        assert_eq!(
            a.max_reward.to_bits(),
            b.max_reward.to_bits(),
            "step {}",
            a.step
        );
        assert_eq!(
            a.target_click_ratio.to_bits(),
            b.target_click_ratio.to_bits(),
            "step {}",
            a.step
        );
        assert_eq!(
            a.ppo_signal.to_bits(),
            b.ppo_signal.to_bits(),
            "step {}",
            a.step
        );
        assert_eq!(a.observations, b.observations, "step {}", a.step);
    }
    assert_eq!(
        straight.policy().params().to_bytes(),
        resumed.policy().params().to_bytes(),
        "parameter bytes diverged"
    );
    let (ba, bb) = (
        straight.best_episode().expect("ran steps"),
        resumed.best_episode().expect("ran steps"),
    );
    assert_eq!(ba.reward.to_bits(), bb.reward.to_bits());
    assert_eq!(ba.trajectories, bb.trajectories);
}

#[test]
fn kill_and_resume_continues_bit_identically() {
    for threads in [1usize, 4] {
        // Reference: 12 uninterrupted steps.
        let sys_straight = tiny_system();
        let mut straight = PoisonRecTrainer::new(tiny_cfg(threads), &sys_straight);
        straight.train(&sys_straight, 12);

        // Interrupted run: 6 steps, checkpoint, then drop the trainer
        // AND its system — the in-process equivalent of a crash.
        let dir = scratch_dir(&format!("resume-t{threads}"));
        let path = dir.join("trainer.ckpt");
        {
            let sys_first = tiny_system();
            let mut first = PoisonRecTrainer::new(tiny_cfg(threads), &sys_first);
            first.train(&sys_first, 6);
            first.save_checkpoint(&sys_first, &path).expect("save");
        }

        // Resume against a freshly built system and finish the run.
        let sys_resumed = tiny_system();
        let mut resumed =
            PoisonRecTrainer::resume(&path, tiny_cfg(threads), &sys_resumed).expect("resume");
        assert_eq!(resumed.history().len(), 6, "resume restores the step index");
        resumed.train(&sys_resumed, 6);

        assert_trainers_identical(&straight, &resumed);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_may_change_thread_count() {
    // The fingerprint deliberately excludes `threads`: training is
    // thread-count invariant, so a checkpoint written single-threaded
    // must resume (and stay bit-identical) on a parallel scoring phase.
    let sys_straight = tiny_system();
    let mut straight = PoisonRecTrainer::new(tiny_cfg(1), &sys_straight);
    straight.train(&sys_straight, 10);

    let dir = scratch_dir("resume-cross-threads");
    let path = dir.join("trainer.ckpt");
    {
        let sys_first = tiny_system();
        let mut first = PoisonRecTrainer::new(tiny_cfg(1), &sys_first);
        first.train(&sys_first, 5);
        first.save_checkpoint(&sys_first, &path).expect("save");
    }
    let sys_resumed = tiny_system();
    let mut resumed =
        PoisonRecTrainer::resume(&path, tiny_cfg(4), &sys_resumed).expect("cross-thread resume");
    resumed.train(&sys_resumed, 5);
    assert_trainers_identical(&straight, &resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_config_is_refused() {
    let dir = scratch_dir("resume-mismatch");
    let path = dir.join("trainer.ckpt");
    let sys = tiny_system();
    let mut trainer = PoisonRecTrainer::new(tiny_cfg(1), &sys);
    trainer.train(&sys, 2);
    trainer.save_checkpoint(&sys, &path).expect("save");

    // Different trainer seed => different run => refuse.
    let mut other = tiny_cfg(1);
    other.seed = 6;
    let err = PoisonRecTrainer::resume(&path, other, &tiny_system())
        .err()
        .expect("seed change must be refused");
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "unexpected error: {err}"
    );

    // Different action space => refuse.
    let mut other = tiny_cfg(1);
    other.action_space = ActionSpaceKind::Plain;
    let err = PoisonRecTrainer::resume(&path, other, &tiny_system())
        .err()
        .expect("action-space change must be refused");
    assert!(matches!(err, CheckpointError::ConfigMismatch { .. }));

    // Resume against a system that has already spent observations
    // would fork the seed stream => refuse.
    let spent = tiny_system();
    let mut warm = PoisonRecTrainer::new(tiny_cfg(1), &spent);
    warm.train(&spent, 3); // 18 observations > the checkpoint's 12
    let err = PoisonRecTrainer::resume(&path, tiny_cfg(1), &spent)
        .err()
        .expect("rewinding the observation stream must be refused");
    assert!(
        err.to_string().contains("observation"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_files_fail_loudly_not_halfway() {
    let dir = scratch_dir("resume-corrupt");
    let path = dir.join("trainer.ckpt");
    let sys = tiny_system();
    let mut trainer = PoisonRecTrainer::new(tiny_cfg(1), &sys);
    trainer.train(&sys, 2);
    trainer.save_checkpoint(&sys, &path).expect("save");
    let pristine = std::fs::read(&path).expect("read");

    // A flipped byte anywhere in the body breaks the checksum.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&path, &flipped).expect("write");
    let err = PoisonRecTrainer::resume(&path, tiny_cfg(1), &tiny_system())
        .err()
        .expect("corruption must be refused");
    assert!(matches!(err, CheckpointError::Format(_)), "{err}");

    // Truncation is detected before any state is touched.
    std::fs::write(&path, &pristine[..pristine.len() - 7]).expect("write");
    let err = PoisonRecTrainer::resume(&path, tiny_cfg(1), &tiny_system())
        .err()
        .expect("truncation must be refused");
    assert!(matches!(err, CheckpointError::Format(_)), "{err}");

    // A missing file is an I/O error, not a panic.
    std::fs::remove_file(&path).expect("remove");
    let err = PoisonRecTrainer::resume(&path, tiny_cfg(1), &tiny_system())
        .err()
        .expect("missing file must be an error");
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_write_is_atomic_and_repeatable() {
    // Saving twice at different steps must atomically replace the file
    // (no .tmp residue) and the later file resumes at the later step.
    let dir = scratch_dir("resume-atomic");
    let path = dir.join("trainer.ckpt");
    let sys = tiny_system();
    let mut trainer = PoisonRecTrainer::new(tiny_cfg(1), &sys);
    trainer.train(&sys, 2);
    trainer.save_checkpoint(&sys, &path).expect("first save");
    trainer.train(&sys, 2);
    let bytes = trainer.save_checkpoint(&sys, &path).expect("second save");
    assert_eq!(
        std::fs::metadata(&path).expect("file exists").len(),
        bytes,
        "reported size matches the file"
    );
    assert!(
        !path.with_extension("ckpt.tmp").exists()
            && std::fs::read_dir(&dir)
                .expect("dir")
                .filter_map(|e| e.ok())
                .all(|e| !e.file_name().to_string_lossy().ends_with(".tmp")),
        "atomic write must leave no tmp residue"
    );
    let resumed =
        PoisonRecTrainer::resume(&path, tiny_cfg(1), &tiny_system()).expect("resume latest");
    assert_eq!(resumed.history().len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}
