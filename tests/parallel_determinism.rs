//! The parallel observation engine must be invisible in the results:
//! same seeds ⇒ same observations, for every thread count, and the
//! thin sequential wrappers must keep the documented seed schedule
//! (`child_seed(cfg.seed, 1000 + i)` for the `i`-th observation).

use poisonrec::{ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::{LogView, Trajectory};
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, Observation, SystemConfig};
use runtime::WorkerPool;

fn build_system(ranker: RankerKind, seed: u64) -> BlackBoxSystem {
    let data = datasets::PaperDataset::Phone.generate_scaled(0.03, seed);
    let boxed = ranker.build(&LogView::clean(&data), 16);
    BlackBoxSystem::build(
        data,
        boxed,
        SystemConfig {
            eval_users: 48,
            reserve_attackers: 16,
            seed,
            ..SystemConfig::default()
        },
    )
}

fn poisons(system: &BlackBoxSystem, n: usize) -> Vec<Vec<Trajectory>> {
    let info = system.public_info();
    (0..n)
        .map(|i| {
            let target = info.target_items[i % info.target_items.len()];
            let filler = (i as u32 * 7) % info.num_items;
            vec![vec![target, filler, target, target]; 1 + i % 4]
        })
        .collect()
}

#[test]
fn observe_batch_is_thread_count_invariant() {
    // Same batch, fresh identically-seeded systems, thread counts 1
    // and 8 on explicit pools: the Observation vectors must be equal
    // down to the last bit (PartialEq covers rec_num, seed, lists).
    for ranker in [RankerKind::ItemPop, RankerKind::Bpr] {
        let batch = poisons(&build_system(ranker, 7), 10);

        let sys1 = build_system(ranker, 7);
        let pool1 = WorkerPool::new(0);
        let obs1: Vec<Observation> = sys1.observe_batch_on(&pool1, &batch, 1);

        let sys8 = build_system(ranker, 7);
        let pool8 = WorkerPool::new(7);
        let obs8: Vec<Observation> = sys8.observe_batch_on(&pool8, &batch, 8);

        assert_eq!(obs1, obs8, "{ranker}: thread count changed observations");
    }
}

#[test]
fn observe_batch_matches_sequential_wrapper_stream() {
    // A batched call must consume exactly the same seed schedule as
    // the same observations made one by one through the wrapper.
    let batch = poisons(&build_system(RankerKind::ItemPop, 9), 6);

    let seq_sys = build_system(RankerKind::ItemPop, 9);
    let sequential: Vec<u32> = batch
        .iter()
        .map(|p| seq_sys.inject_and_observe(p))
        .collect();

    let batch_sys = build_system(RankerKind::ItemPop, 9);
    let batched: Vec<u32> = batch_sys
        .observe_batch(&batch, 4)
        .into_iter()
        .map(|o| o.rec_num)
        .collect();

    assert_eq!(sequential, batched);
}

#[test]
fn wrapper_rewards_follow_documented_seed_formula() {
    // The pre-batching observation contract: observation `i` of a
    // system's lifetime retrains with `child_seed(cfg.seed, 1000 + i)`.
    // The seeded wrapper replays it exactly.
    let live = build_system(RankerKind::CoVisitation, 21);
    let replay = build_system(RankerKind::CoVisitation, 21);
    let batch = poisons(&live, 5);
    for (i, poison) in batch.iter().enumerate() {
        let obs = live.observe(poison);
        let expected_seed = recsys::rankers::common::child_seed(21, 1000 + i as u64);
        assert_eq!(obs.seed, expected_seed, "observation {i} seed drifted");
        assert_eq!(
            obs.rec_num,
            replay.inject_and_observe_seeded(poison, expected_seed),
            "observation {i} not reproducible from its seed"
        );
    }
}

#[test]
fn interleaved_batches_and_singles_share_one_counter() {
    // Mixing the batched and single-observation paths must walk the
    // same global seed schedule as an all-sequential run.
    let mixed = build_system(RankerKind::ItemPop, 33);
    let sequential = build_system(RankerKind::ItemPop, 33);
    let batch = poisons(&mixed, 7);

    let mut mixed_rewards: Vec<u32> = Vec::new();
    mixed_rewards.push(mixed.observe(&batch[0]).rec_num);
    mixed_rewards.extend(
        mixed
            .observe_batch(&batch[1..4], 3)
            .into_iter()
            .map(|o| o.rec_num),
    );
    mixed_rewards.push(mixed.observe(&batch[4]).rec_num);
    mixed_rewards.extend(
        mixed
            .observe_batch(&batch[5..], 2)
            .into_iter()
            .map(|o| o.rec_num),
    );

    let sequential_rewards: Vec<u32> = batch
        .iter()
        .map(|p| sequential.inject_and_observe(p))
        .collect();

    assert_eq!(mixed_rewards, sequential_rewards);
}

#[test]
fn gradients_are_kernel_thread_count_invariant() {
    // The update path's three products (matmul forward, matmul_t
    // logits, and their backward t_matmul/matmul pairs) at shapes big
    // enough to engage the parallel kernel dispatch: parameter
    // gradients must be bit-identical at every kernel thread count.
    use tensor::{GradStore, Graph, Matrix, ParamSet};

    fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    let grads_at = |threads: usize| -> Vec<Vec<u32>> {
        tensor::kernel::set_threads(threads);
        let mut params = ParamSet::new();
        let w = params.add("w", fill(96, 64, 3));
        let emb = params.add("emb", fill(200, 64, 5));
        let mut grads = GradStore::zeros_like(&params);
        let mut g = Graph::new(&params);
        let x = g.input(fill(48, 96, 9));
        let wv = g.param(w);
        let h = g.matmul(x, wv); // 48 x 64
        let table = g.param(emb);
        let logits = g.matmul_t(h, table); // 48 x 200
        let lp = g.log_softmax_rows(logits);
        let idx: Vec<u32> = (0..48).map(|r| (r * 37) % 200).collect();
        let picked = g.pick_per_row(lp, &idx);
        let loss = g.sum_all(picked);
        g.backward(loss, &mut grads);
        tensor::kernel::set_threads(1);
        [w, emb]
            .iter()
            .map(|&id| grads.get(id).data().iter().map(|v| v.to_bits()).collect())
            .collect()
    };

    let g1 = grads_at(1);
    assert_eq!(g1, grads_at(4), "kernel threads=4 changed gradients");
    assert_eq!(g1, grads_at(8), "kernel threads=8 changed gradients");
}

#[test]
fn full_training_run_is_thread_count_invariant() {
    // End-to-end: a short PoisonRec run against a real (BPR) system
    // produces identical telemetry whether the scoring phase runs on
    // one thread or eight.
    let run = |threads: usize| {
        let system = build_system(RankerKind::Bpr, 13);
        let cfg = PoisonRecConfig::builder()
            .seed(13)
            .threads(threads)
            .action_space(ActionSpaceKind::BcbtPopular)
            .policy(PolicyConfig {
                dim: 8,
                num_attackers: 6,
                trajectory_len: 8,
                init_scale: 0.1,
            })
            .ppo(PpoConfig {
                samples_per_step: 8,
                batch: 8,
                epochs: 2,
                ..PpoConfig::default()
            })
            .build_for(&system)
            .expect("valid config");
        let mut trainer = PoisonRecTrainer::new(cfg, &system);
        trainer.train(&system, 2).to_vec()
    };
    let h1 = run(1);
    let h8 = run(8);
    for (a, b) in h1.iter().zip(&h8) {
        assert_eq!(a.mean_reward, b.mean_reward);
        assert_eq!(a.max_reward, b.max_reward);
        assert_eq!(a.ppo_signal, b.ppo_signal);
        assert_eq!(a.target_click_ratio, b.target_click_ratio);
    }
}
