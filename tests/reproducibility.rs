//! Determinism guarantees: every stochastic component is seeded, so
//! identical seeds must reproduce identical experiments bit-for-bit,
//! and different seeds must actually differ.

use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};

fn build(seed: u64) -> BlackBoxSystem {
    let data = PaperDataset::Phone.generate_scaled(0.03, seed);
    let ranker = RankerKind::ItemPop.build(&LogView::clean(&data), 16);
    BlackBoxSystem::build(
        data,
        ranker,
        SystemConfig {
            eval_users: 64,
            seed,
            ..SystemConfig::default()
        },
    )
}

fn short_training_rewards(system_seed: u64, agent_seed: u64) -> Vec<f32> {
    let system = build(system_seed);
    let cfg = PoisonRecConfig {
        policy: PolicyConfig {
            dim: 8,
            num_attackers: 4,
            trajectory_len: 6,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            samples_per_step: 4,
            batch: 4,
            epochs: 2,
            ..PpoConfig::default()
        },
        action_space: ActionSpaceKind::BcbtPopular,
        seed: agent_seed,
        threads: 2,
    };
    let mut trainer = PoisonRecTrainer::new(cfg, &system);
    trainer
        .train(&system, 4)
        .iter()
        .map(|s| s.mean_reward)
        .collect()
}

#[test]
fn identical_seeds_reproduce_training_exactly() {
    let a = short_training_rewards(5, 9);
    let b = short_training_rewards(5, 9);
    assert_eq!(a, b, "same seeds must give identical training traces");
}

#[test]
fn different_agent_seeds_diverge() {
    // Rewards can coincide (both zero on a hard cell); the sampled
    // trajectories themselves must differ.
    let sample = |agent_seed: u64| {
        let system = build(5);
        let cfg = PoisonRecConfig {
            policy: PolicyConfig {
                dim: 8,
                num_attackers: 4,
                trajectory_len: 6,
                init_scale: 0.1,
            },
            ppo: PpoConfig {
                samples_per_step: 4,
                batch: 4,
                epochs: 2,
                ..PpoConfig::default()
            },
            action_space: ActionSpaceKind::BcbtPopular,
            seed: agent_seed,
            threads: 1,
        };
        let mut trainer = PoisonRecTrainer::new(cfg, &system);
        trainer.sample_attack().trajectories
    };
    assert_ne!(
        sample(9),
        sample(10),
        "different agent seeds should explore differently"
    );
}

#[test]
fn different_dataset_seeds_build_different_worlds() {
    let a = PaperDataset::Clothing.generate_scaled(0.02, 1);
    let b = PaperDataset::Clothing.generate_scaled(0.02, 2);
    assert_eq!(a.num_users(), b.num_users());
    let differs = (0..a.num_users().min(50)).any(|u| a.sequence(u) != b.sequence(u));
    assert!(differs);
}

#[test]
fn observation_noise_is_seeded_not_hidden_state() {
    let system = build(7);
    let target = system.public_info().target_items[0];
    let poison = vec![vec![target; 10]; 4];
    let a = system.inject_and_observe_seeded(&poison, 100);
    let b = system.inject_and_observe_seeded(&poison, 100);
    let c = system.inject_and_observe_seeded(&poison, 101);
    assert_eq!(a, b);
    // Different retrain seeds *may* coincide for ItemPop (exact counts);
    // the API contract is only that seeding fully determines the result.
    let _ = c;
}
