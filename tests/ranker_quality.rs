//! The testbeds must be *real* recommenders: every ranker has to beat
//! random ranking on held-out next-item prediction over a synthetic
//! twin. Random baseline for hit-rate@10 with 99 negatives is 0.10.

use datasets::PaperDataset;
use recsys::data::LogView;
use recsys::eval::hit_rate_at_k;
use recsys::rankers::RankerKind;

/// Hit-rate@10 against 99 sampled negatives on the validation split.
fn validation_hit_rate(ranker: RankerKind, seed: u64) -> f64 {
    let data = PaperDataset::Steam.generate_scaled(0.05, seed);
    let view = LogView::clean(&data);
    let mut boxed = ranker.build(&view, 8);
    boxed.fit(&view, seed);
    // Subsample the holdout to keep the suite fast.
    let holdout: Vec<_> = data.validation().pairs.iter().copied().take(150).collect();
    hit_rate_at_k(&*boxed, &data, &holdout, 10, 99, seed)
}

const RANDOM_BASELINE: f64 = 0.10;

macro_rules! quality_test {
    ($name:ident, $kind:expr, $min:expr) => {
        #[test]
        fn $name() {
            let hr = validation_hit_rate($kind, 11);
            assert!(
                hr > $min,
                "{} hit-rate {hr:.3} not above required {} (random = {RANDOM_BASELINE})",
                $kind.name(),
                $min
            );
        }
    };
}

// Popularity explains a lot of the twins (as it does of the real
// datasets), so even ItemPop clears random by a wide margin; the
// personalized models must too.
quality_test!(itempop_beats_random, RankerKind::ItemPop, 0.15);
quality_test!(covisitation_beats_random, RankerKind::CoVisitation, 0.15);
quality_test!(pmf_beats_random, RankerKind::Pmf, 0.15);
quality_test!(bpr_beats_random, RankerKind::Bpr, 0.15);
quality_test!(neumf_beats_random, RankerKind::NeuMf, 0.15);
quality_test!(autorec_beats_random, RankerKind::AutoRec, 0.15);
quality_test!(gru4rec_beats_random, RankerKind::Gru4Rec, 0.15);
quality_test!(ngcf_beats_random, RankerKind::Ngcf, 0.15);
