//! The attack-zoo conformance suite (DESIGN.md §5h): every family in
//! [`baselines::AttackFamily::ALL`] — PoisonRec, AppGrad, ConsLOP,
//! Influence, and the four heuristics — runs through the same pinned
//! checks, so registering a new attack means passing this gate, not
//! writing bespoke tests:
//!
//! * **thread invariance** — a cell run with 1 scoring thread is
//!   bit-identical (history, poison, final RecNum, usage) to the same
//!   cell run with 8;
//! * **wire transparency** — a cell attacked through
//!   [`recsys::RemoteSystem`] over a real 127.0.0.1 socket is
//!   bit-identical to the in-process run, at 1 and at 4 serving
//!   shards;
//! * **interrupt + resume** — a cell checkpointed every step, cut off
//!   mid-run, and resumed on a *fresh* same-config system finishes
//!   bit-identical to the uninterrupted run (the sealed checkpoint
//!   carries the attack state, budget usage, and the system's
//!   observation ordinal);
//! * **budget visibility** — what each family spends is counted at the
//!   guard boundary and never exceeds the declared budget.
//!
//! Every leg builds its own fresh system: the observation seed stream
//! is ordinal-keyed, so two runs are comparable only from matching
//! spend states.

use baselines::{AppGradConfig, AttackFamily, ConsLopConfig, InfluenceConfig, ZooTuning};
use poisonrec::{
    run_attack, ActionSpaceKind, PoisonRecConfig, PolicyConfig, PpoConfig, ZooConfig, ZooRun,
};
use recsys::attack::AttackBudget;
use recsys::data::Dataset;
use recsys::rankers::ItemPop;
use recsys::remote::RemoteSystem;
use recsys::system::{BlackBoxSystem, ObservableSystem, SystemConfig};
use serve::{RecApp, Server, ServerConfig};

/// The attacker's prior knowledge for log-requiring families — the
/// same interaction log the victim system is built from.
fn tiny_log() -> Dataset {
    let histories = (0..40u32)
        .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
        .collect();
    Dataset::from_histories("tiny", histories, 60, 8)
}

fn tiny_system() -> BlackBoxSystem {
    BlackBoxSystem::build(
        tiny_log(),
        Box::new(ItemPop::new()),
        SystemConfig {
            eval_users: 24,
            reserve_attackers: 8,
            ..SystemConfig::default()
        },
    )
}

/// Small enough that all eight families finish in milliseconds, large
/// enough that every step machine takes several steps.
fn tuning() -> ZooTuning {
    ZooTuning {
        seed: 11,
        poisonrec: PoisonRecConfig {
            policy: PolicyConfig {
                dim: 8,
                init_scale: 0.1,
                ..PolicyConfig::default()
            },
            ppo: PpoConfig {
                lr: 0.01,
                samples_per_step: 4,
                batch: 4,
                epochs: 2,
                ..PpoConfig::default()
            },
            action_space: ActionSpaceKind::BcbtPopular,
            seed: 5,
            threads: 1,
        },
        poisonrec_steps: 2,
        appgrad: AppGradConfig {
            iterations: 2,
            ..AppGradConfig::default()
        },
        conslop: ConsLopConfig::default(),
        influence: InfluenceConfig {
            rounds: 2,
            dim: 8,
            epochs: 2,
            filler_pool: 8,
        },
    }
}

fn budget(family: AttackFamily, tuning: &ZooTuning) -> AttackBudget {
    AttackBudget {
        fake_users: 4,
        clicks_per_user: 6,
        observations: family.planned_observations(tuning) + 1,
    }
}

/// Runs `family` to completion against `system` under `cfg`.
fn run_cell(
    family: AttackFamily,
    system: &dyn ObservableSystem,
    tuning: &ZooTuning,
    cfg: &ZooConfig,
) -> ZooRun {
    let log = tiny_log();
    let mut attack = family
        .build(tuning, Some(&log))
        .unwrap_or_else(|err| panic!("{family} must build with a log: {err}"));
    run_attack(attack.as_mut(), system, cfg, &mut |_| {})
        .unwrap_or_else(|err| panic!("{family} must run to completion: {err}"))
}

fn assert_identical(family: AttackFamily, a: &ZooRun, b: &ZooRun, what: &str) {
    assert_eq!(a.history, b.history, "{family}: {what} history diverged");
    assert_eq!(a.poison, b.poison, "{family}: {what} poison diverged");
    assert_eq!(
        a.final_rec_num, b.final_rec_num,
        "{family}: {what} final RecNum diverged"
    );
    assert_eq!(a.usage, b.usage, "{family}: {what} budget usage diverged");
}

/// Scoring-thread count must be invisible: 1 thread vs 8 threads,
/// fresh same-config systems, bit-identical outcomes.
#[test]
fn every_family_is_thread_invariant() {
    let tuning = tuning();
    for family in AttackFamily::ALL {
        let base = ZooConfig::new(budget(family, &tuning));
        let one = run_cell(family, &tiny_system(), &tuning, &base);
        let eight = run_cell(
            family,
            &tiny_system(),
            &tuning,
            &ZooConfig { threads: 8, ..base },
        );
        assert_identical(family, &one, &eight, "threads 1 vs 8");

        // Budget visibility: the guard counted a spend no larger than
        // the declaration, for every family.
        let declared = budget(family, &tuning);
        assert!(one.usage.observations <= declared.observations, "{family}");
        assert!(
            one.usage.peak_fake_users <= u64::from(declared.fake_users),
            "{family}"
        );
        assert!(
            one.usage.peak_clicks_per_user <= declared.clicks_per_user as u64,
            "{family}"
        );
    }
}

/// The wire must be invisible: every family attacked through
/// `RemoteSystem` over a real socket matches the in-process run, at
/// every shard count — sharded serving state must not perturb the
/// observation seed stream.
#[test]
fn every_family_is_wire_transparent() {
    let tuning = tuning();
    for shards in [1usize, 4] {
        for family in AttackFamily::ALL {
            let cfg = ZooConfig::new(budget(family, &tuning));
            let local = run_cell(family, &tiny_system(), &tuning, &cfg);

            let server_cfg = ServerConfig::builder()
                .threads(2)
                .shards(shards)
                .build()
                .expect("valid server config");
            let server = Server::start(RecApp::new(tiny_system(), None), server_cfg).expect("bind");
            let remote = RemoteSystem::connect(server.local_addr().to_string())
                .expect("connect to served system");
            assert_eq!(remote.shards(), shards, "served shard count undisclosed");
            let wire = run_cell(family, &remote, &tuning, &cfg);
            drop(remote);
            let stats = server.shutdown();
            assert_eq!(stats.dropped(), 0, "{family}: shutdown dropped requests");

            assert_identical(family, &local, &wire, &format!("wire at {shards} shard(s)"));
        }
    }
}

/// Kill-and-resume must be invisible: a run checkpointed every step
/// and cut off mid-run, then resumed on a fresh same-config system,
/// finishes bit-identical to an uninterrupted run.
#[test]
fn every_family_resumes_bit_identically_after_interruption() {
    let tuning = tuning();
    let dir = std::env::temp_dir().join(format!("zoo-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");

    for family in AttackFamily::ALL {
        let cell_budget = budget(family, &tuning);
        let path = dir.join(format!("{}.ckpt", family.name()));
        let _ = std::fs::remove_file(&path);

        // Leg A: run to roughly the midpoint, checkpointing every
        // step, then stop. The step cap stands in for a crash; partial
        // attacks may legitimately refuse to emit poison at the cap,
        // so the result is discarded — only the checkpoint matters.
        let log = tiny_log();
        let mut attack = family.build(&tuning, Some(&log)).expect("buildable");
        let cut = (attack.planned_steps() / 2).max(1);
        let interrupted = ZooConfig {
            steps: Some(cut),
            checkpoint_every: 1,
            checkpoint_path: Some(path.clone()),
            evaluate_final: false,
            ..ZooConfig::new(cell_budget)
        };
        let _ = run_attack(attack.as_mut(), &tiny_system(), &interrupted, &mut |_| {});
        assert!(path.exists(), "{family}: no checkpoint was written");

        // Leg B: fresh attack, fresh system, resume from the sealed
        // checkpoint and run to completion.
        let resumed_cfg = ZooConfig {
            checkpoint_every: 1,
            checkpoint_path: Some(path.clone()),
            resume: true,
            ..ZooConfig::new(cell_budget)
        };
        let mut resumed_events = 0usize;
        let mut fresh = family.build(&tuning, Some(&log)).expect("buildable");
        let resumed = run_attack(fresh.as_mut(), &tiny_system(), &resumed_cfg, &mut |event| {
            if matches!(event, poisonrec::ZooEvent::Resumed { .. }) {
                resumed_events += 1;
            }
        })
        .unwrap_or_else(|err| panic!("{family}: resume failed: {err}"));
        assert_eq!(resumed_events, 1, "{family}: resume event not emitted");

        // Leg C: the uninterrupted reference.
        let reference = run_cell(
            family,
            &tiny_system(),
            &tuning,
            &ZooConfig::new(cell_budget),
        );
        assert_identical(family, &reference, &resumed, "kill+resume");

        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
}

/// A checkpoint seals the cell's fingerprint: resuming it under a
/// different budget (a different cell) is a typed state error, not a
/// silent mismatched continuation.
#[test]
fn resuming_a_checkpoint_into_a_different_cell_is_refused() {
    let tuning = tuning();
    let family = AttackFamily::PoisonRec;
    let path =
        std::env::temp_dir().join(format!("zoo-conformance-xcell-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cell_budget = budget(family, &tuning);
    let interrupted = ZooConfig {
        steps: Some(1),
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        evaluate_final: false,
        ..ZooConfig::new(cell_budget)
    };
    let log = tiny_log();
    let mut attack = family.build(&tuning, Some(&log)).expect("buildable");
    let _ = run_attack(attack.as_mut(), &tiny_system(), &interrupted, &mut |_| {});
    assert!(path.exists());

    let other_cell = ZooConfig {
        checkpoint_path: Some(path.clone()),
        resume: true,
        ..ZooConfig::new(AttackBudget {
            fake_users: 2,
            ..cell_budget
        })
    };
    let mut fresh = family.build(&tuning, Some(&log)).expect("buildable");
    let err = run_attack(fresh.as_mut(), &tiny_system(), &other_cell, &mut |_| {})
        .expect_err("a foreign checkpoint must be refused");
    assert!(
        matches!(err, recsys::attack::AttackError::State(_)),
        "expected a typed state error, got {err}"
    );
    let _ = std::fs::remove_file(&path);
}
