//! The defense conformance suite (DESIGN.md §5j): every attack family
//! in [`baselines::AttackFamily::ALL`] runs against every layered
//! [`DefenseKind`], and the defense must be **deterministically
//! invisible to the infrastructure** — the same checks the undefended
//! zoo pins in `tests/attack_conformance.rs`, now with a stateful
//! judge in the admission path:
//!
//! * **thread invariance** — a defended cell run with 1 scoring thread
//!   is bit-identical (history, poison, final RecNum, usage, *and the
//!   verdict ledger*) to the same cell with 8: judging happens
//!   sequentially in slot order before any dispatch, so worker count
//!   cannot reorder verdicts;
//! * **wire transparency** — a cell attacked through
//!   [`recsys::RemoteSystem`] against a served [`DefenseStack`]
//!   (judged inside the `POST /feedback` admission section) matches
//!   the in-process [`DefendedSystem`] run at 1 and 4 shards,
//!   including the ledger;
//! * **interrupt + resume** — a defended cell checkpointed every step
//!   and cut off mid-run resumes on a fresh same-config system
//!   bit-identically: the sealed checkpoint carries the defense state
//!   (adaptive ladder level, reputation, CUSUM, verdict counts) next
//!   to the attack state and the observation ordinal;
//! * resuming a **defended checkpoint into an undefended system** is a
//!   typed config error, not a silent drop of the defense state.

use baselines::{AppGradConfig, AttackFamily, ConsLopConfig, InfluenceConfig, ZooTuning};
use poisonrec::{
    run_attack, ActionSpaceKind, PoisonRecConfig, PolicyConfig, PpoConfig, ZooConfig, ZooRun,
};
use recsys::attack::AttackBudget;
use recsys::data::Dataset;
use recsys::defense::{DefendedSystem, DefenseKind, DefenseStack, VerdictCounts};
use recsys::rankers::ItemPop;
use recsys::remote::RemoteSystem;
use recsys::system::{BlackBoxSystem, ObservableSystem, SystemConfig};
use serve::{RecApp, Server, ServerConfig};

/// The layered kinds (everything except `None` — the undefended case
/// is `attack_conformance.rs`' territory).
const DEFENDED: [DefenseKind; 4] = [
    DefenseKind::Lof,
    DefenseKind::Reputation,
    DefenseKind::Adaptive,
    DefenseKind::Full,
];

const FPR: f64 = 0.05;

fn tiny_log() -> Dataset {
    let histories = (0..40u32)
        .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
        .collect();
    Dataset::from_histories("tiny", histories, 60, 8)
}

fn tiny_system() -> BlackBoxSystem {
    BlackBoxSystem::build(
        tiny_log(),
        Box::new(ItemPop::new()),
        SystemConfig {
            eval_users: 24,
            reserve_attackers: 8,
            ..SystemConfig::default()
        },
    )
}

/// An in-process hardened victim: the tiny system behind a stack
/// calibrated on its own organic log.
fn defended_system(kind: DefenseKind) -> DefendedSystem {
    let system = tiny_system();
    let stack = DefenseStack::build(kind, system.base(), FPR).expect("a layered kind");
    DefendedSystem::new(system, stack)
}

fn tuning() -> ZooTuning {
    ZooTuning {
        seed: 11,
        poisonrec: PoisonRecConfig {
            policy: PolicyConfig {
                dim: 8,
                init_scale: 0.1,
                ..PolicyConfig::default()
            },
            ppo: PpoConfig {
                lr: 0.01,
                samples_per_step: 4,
                batch: 4,
                epochs: 2,
                ..PpoConfig::default()
            },
            action_space: ActionSpaceKind::BcbtPopular,
            seed: 5,
            threads: 1,
        },
        poisonrec_steps: 2,
        appgrad: AppGradConfig {
            iterations: 2,
            ..AppGradConfig::default()
        },
        conslop: ConsLopConfig::default(),
        influence: InfluenceConfig {
            rounds: 2,
            dim: 8,
            epochs: 2,
            filler_pool: 8,
        },
    }
}

fn budget(family: AttackFamily, tuning: &ZooTuning) -> AttackBudget {
    AttackBudget {
        fake_users: 4,
        clicks_per_user: 6,
        observations: family.planned_observations(tuning) + 1,
    }
}

fn run_cell(
    family: AttackFamily,
    system: &dyn ObservableSystem,
    tuning: &ZooTuning,
    cfg: &ZooConfig,
) -> ZooRun {
    let log = tiny_log();
    let mut attack = family
        .build(tuning, Some(&log))
        .unwrap_or_else(|err| panic!("{family} must build with a log: {err}"));
    run_attack(attack.as_mut(), system, cfg, &mut |_| {})
        .unwrap_or_else(|err| panic!("{family} must run to completion: {err}"))
}

fn assert_identical(family: AttackFamily, kind: DefenseKind, a: &ZooRun, b: &ZooRun, what: &str) {
    let tag = format!("{family} × {}", kind.label());
    assert_eq!(a.history, b.history, "{tag}: {what} history diverged");
    assert_eq!(a.poison, b.poison, "{tag}: {what} poison diverged");
    assert_eq!(
        a.final_rec_num, b.final_rec_num,
        "{tag}: {what} final RecNum diverged"
    );
    assert_eq!(a.usage, b.usage, "{tag}: {what} budget usage diverged");
}

/// Worker-thread count must be invisible even with a stateful judge in
/// the path: verdicts are assigned in slot order before dispatch.
#[test]
fn every_family_is_thread_invariant_under_every_defense() {
    let tuning = tuning();
    for kind in DEFENDED {
        for family in AttackFamily::ALL {
            let base = ZooConfig::new(budget(family, &tuning));
            let one_sys = defended_system(kind);
            let one = run_cell(family, &one_sys, &tuning, &base);
            let eight_sys = defended_system(kind);
            let eight = run_cell(
                family,
                &eight_sys,
                &tuning,
                &ZooConfig { threads: 8, ..base },
            );
            assert_identical(family, kind, &one, &eight, "threads 1 vs 8");
            assert_eq!(
                one_sys.counts(),
                eight_sys.counts(),
                "{family} × {}: verdict ledger diverged across thread counts",
                kind.label()
            );
        }
    }
}

/// The wire must be invisible: a defended serve judges at `/feedback`
/// admission in arrival order, the local [`DefendedSystem`] in slot
/// order pre-dispatch — the same order, so histories AND the verdict
/// ledger must match at every shard count.
#[test]
fn every_family_is_wire_transparent_under_every_defense() {
    let tuning = tuning();
    for shards in [1usize, 4] {
        for kind in DEFENDED {
            for family in AttackFamily::ALL {
                let cfg = ZooConfig::new(budget(family, &tuning));
                let local_sys = defended_system(kind);
                let local = run_cell(family, &local_sys, &tuning, &cfg);

                let served = tiny_system();
                let stack = DefenseStack::build(kind, served.base(), FPR).expect("layered kind");
                let server_cfg = ServerConfig::builder()
                    .threads(2)
                    .shards(shards)
                    .build()
                    .expect("valid server config");
                let server =
                    Server::start(RecApp::new(served, Some(stack)), server_cfg).expect("bind");
                let remote = RemoteSystem::connect(server.local_addr().to_string())
                    .expect("connect to served system");
                let wire = run_cell(family, &remote, &tuning, &cfg);
                let wire_counts = server.app().defense_counts();
                drop(remote);
                let stats = server.shutdown();
                assert_eq!(stats.dropped(), 0, "{family}: shutdown dropped requests");

                assert_identical(
                    family,
                    kind,
                    &local,
                    &wire,
                    &format!("wire at {shards} shard(s)"),
                );
                assert_eq!(
                    local_sys.counts(),
                    wire_counts,
                    "{family} × {}: verdict ledger diverged over the wire at {shards} shard(s)",
                    kind.label()
                );
            }
        }
    }
}

/// Kill-and-resume with a stateful defense: the sealed checkpoint
/// carries the stack's state, so the resumed run's verdicts (and hence
/// everything downstream) match the uninterrupted reference — on the
/// `Full` stack, whose ladder/reputation/CUSUM state is maximal.
#[test]
fn every_family_resumes_bit_identically_with_defense_state() {
    let tuning = tuning();
    let kind = DefenseKind::Full;
    let dir = std::env::temp_dir().join(format!("defense-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("checkpoint dir");

    for family in AttackFamily::ALL {
        let cell_budget = budget(family, &tuning);
        let path = dir.join(format!("{}.ckpt", family.name()));
        let _ = std::fs::remove_file(&path);

        // Leg A: checkpoint every step, cut at the midpoint.
        let log = tiny_log();
        let mut attack = family.build(&tuning, Some(&log)).expect("buildable");
        let cut = (attack.planned_steps() / 2).max(1);
        let interrupted_cfg = ZooConfig {
            steps: Some(cut),
            checkpoint_every: 1,
            checkpoint_path: Some(path.clone()),
            evaluate_final: false,
            ..ZooConfig::new(cell_budget)
        };
        let interrupted_sys = defended_system(kind);
        let _ = run_attack(
            attack.as_mut(),
            &interrupted_sys,
            &interrupted_cfg,
            &mut |_| {},
        );
        assert!(path.exists(), "{family}: no checkpoint was written");

        // Leg B: fresh attack, fresh defended system, resume. The
        // fresh stack starts pristine; restore must overwrite it with
        // the checkpointed ladder/reputation/CUSUM state.
        let resumed_cfg = ZooConfig {
            checkpoint_every: 1,
            checkpoint_path: Some(path.clone()),
            resume: true,
            ..ZooConfig::new(cell_budget)
        };
        let mut fresh = family.build(&tuning, Some(&log)).expect("buildable");
        let resumed_sys = defended_system(kind);
        let resumed = run_attack(fresh.as_mut(), &resumed_sys, &resumed_cfg, &mut |_| {})
            .unwrap_or_else(|err| panic!("{family}: resume failed: {err}"));

        // Leg C: the uninterrupted reference.
        let reference_sys = defended_system(kind);
        let reference = run_cell(
            family,
            &reference_sys,
            &tuning,
            &ZooConfig::new(cell_budget),
        );
        assert_identical(family, kind, &reference, &resumed, "kill+resume");
        // The ledger proves the defense state rode the checkpoint:
        // leg A's prefix verdicts + leg B's suffix verdicts must land
        // exactly where the uninterrupted run's did.
        assert_eq!(
            reference_sys.counts(),
            resumed_sys.counts(),
            "{family}: resumed verdict ledger diverged — defense state did not resume"
        );
        assert_eq!(
            reference_sys.level(),
            resumed_sys.level(),
            "{family}: adaptive ladder level did not resume"
        );

        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir(&dir);
}

/// A checkpoint taken against a defended system must refuse to resume
/// into an undefended one: silently dropping the judge's state would
/// fork the run.
#[test]
fn a_defended_checkpoint_refuses_an_undefended_system() {
    let tuning = tuning();
    let family = AttackFamily::PoisonRec;
    let path = std::env::temp_dir().join(format!(
        "defense-conformance-undefended-{}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let cell_budget = budget(family, &tuning);
    let interrupted = ZooConfig {
        steps: Some(1),
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        evaluate_final: false,
        ..ZooConfig::new(cell_budget)
    };
    let log = tiny_log();
    let mut attack = family.build(&tuning, Some(&log)).expect("buildable");
    let _ = run_attack(
        attack.as_mut(),
        &defended_system(DefenseKind::Full),
        &interrupted,
        &mut |_| {},
    );
    assert!(path.exists());

    let resume_cfg = ZooConfig {
        checkpoint_path: Some(path.clone()),
        resume: true,
        ..ZooConfig::new(cell_budget)
    };
    let mut fresh = family.build(&tuning, Some(&log)).expect("buildable");
    let err = run_attack(fresh.as_mut(), &tiny_system(), &resume_cfg, &mut |_| {})
        .expect_err("an undefended system must refuse a defended checkpoint");
    assert!(
        matches!(err, recsys::attack::AttackError::Config(_)),
        "expected a typed config error, got {err}"
    );
    let _ = std::fs::remove_file(&path);
}

/// The stack's byte-state roundtrip is the checkpoint contract:
/// restore onto a fresh stack, judge the same stream, get the same
/// verdicts.
#[test]
fn defense_state_roundtrips_through_bytes() {
    let log = tiny_log();
    for kind in DEFENDED {
        let mut warm = DefenseStack::build(kind, &log, FPR).expect("layered kind");
        // Warm it up with a hostile stream (target-hammering bursts).
        for burst in 0..10u32 {
            let sequence: Vec<u32> = (0..6).map(|i| 55 + (burst + i) % 5).collect();
            warm.judge(&log, &sequence);
        }
        let bytes = warm.state_bytes();
        let mut restored = DefenseStack::build(kind, &log, FPR).expect("layered kind");
        restored.restore_state(&bytes).expect("roundtrip");
        assert_eq!(restored.counts(), warm.counts(), "{}", kind.label());
        assert_eq!(restored.level(), warm.level(), "{}", kind.label());
        // Judge one more identical stream on both: verdicts must agree.
        for burst in 0..5u32 {
            let sequence: Vec<u32> = (0..6).map(|i| 50 + (burst + i) % 7).collect();
            assert_eq!(
                warm.judge(&log, &sequence),
                restored.judge(&log, &sequence),
                "{}: post-restore verdicts diverged",
                kind.label()
            );
        }
    }
}

/// Legacy single-detector filters ride the same stack type: the
/// `From<OnlineFilter>` conversion must preserve the admit/flag
/// decision exactly (`serve --defense popularity|repetition`).
#[test]
fn verdict_counts_sum_to_offered_for_every_kind() {
    let log = tiny_log();
    for kind in DEFENDED {
        let mut stack = DefenseStack::build(kind, &log, FPR).expect("layered kind");
        let mut offered = 0u64;
        for user in 0..log.num_users() {
            stack.judge(&log, log.sequence(user));
            offered += 1;
        }
        for burst in 0..8u32 {
            let sequence: Vec<u32> = (0..6).map(|i| 55 + (burst + i) % 5).collect();
            stack.judge(&log, &sequence);
            offered += 1;
        }
        let counts = stack.counts();
        assert_eq!(counts.offered(), offered, "{}", kind.label());
        assert_eq!(
            counts.admitted + counts.rejected(),
            offered,
            "{}: ledger does not balance",
            kind.label()
        );
        assert_eq!(counts, stack.counts(), "counts() must be pure");
        let _: VerdictCounts = counts;
    }
}
