//! Golden-trace regression test: a pinned-seed training run streams
//! its telemetry JSONL, which is diffed event-by-event,
//! field-by-field against a committed fixture. Any change to the
//! sampling stream, reward pipeline, PPO math, or telemetry schema
//! shows up here as a precise first-divergence diff.
//!
//! Wall-clock fields (`*_secs`) are excluded from the comparison —
//! everything else in a `step` event is deterministic for a pinned
//! seed on a given build.
//!
//! To regenerate the fixture after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! then commit `tests/golden/trace.jsonl` with the change that
//! explains the new trajectory.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use poisonrec::{
    ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig, StepLogger,
};
use recsys::data::Dataset;
use recsys::rankers::ItemPop;
use recsys::system::{BlackBoxSystem, SystemConfig};
use telemetry::{Json, JsonlSink};

/// Every field of a telemetry event that must be reproducible. The
/// `*_secs` phase timings are deliberately absent.
const DETERMINISTIC_FIELDS: &[&str] = &[
    "type",
    "experiment",
    "seed",
    "steps",
    "episodes",
    "dataset",
    "ranker",
    "design",
    "threads",
    "step",
    "mean_reward",
    "max_reward",
    "target_click_ratio",
    "ppo_signal",
    "observations",
];

const GOLDEN_SEED: u64 = 41;
const GOLDEN_STEPS: usize = 5;
const GOLDEN_EPISODES: usize = 6;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace.jsonl")
}

fn tiny_system() -> BlackBoxSystem {
    let histories = (0..40u32)
        .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
        .collect();
    let data = Dataset::from_histories("tiny", histories, 60, 8);
    BlackBoxSystem::build(
        data,
        Box::new(ItemPop::new()),
        SystemConfig {
            eval_users: 24,
            reserve_attackers: 8,
            seed: GOLDEN_SEED,
            ..SystemConfig::default()
        },
    )
}

/// Runs the pinned-seed cell, streaming its trace to `path`.
fn run_trace(path: &Path) {
    let sink = Arc::new(JsonlSink::create(path).expect("create trace file"));
    let manifest = Json::obj()
        .field("type", "manifest")
        .field("experiment", "golden_trace")
        .field("seed", GOLDEN_SEED)
        .field("steps", GOLDEN_STEPS)
        .field("episodes", GOLDEN_EPISODES);
    sink.emit(&manifest).expect("manifest write");

    let system = tiny_system();
    let cfg = PoisonRecConfig {
        policy: PolicyConfig {
            dim: 8,
            num_attackers: 4,
            trajectory_len: 6,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            lr: 0.01,
            samples_per_step: GOLDEN_EPISODES,
            batch: GOLDEN_EPISODES,
            epochs: 2,
            ..PpoConfig::default()
        },
        action_space: ActionSpaceKind::BcbtPopular,
        seed: GOLDEN_SEED,
        threads: 1,
    };
    let mut trainer = PoisonRecTrainer::new(cfg, &system);
    trainer.attach_logger(
        StepLogger::new(Arc::clone(&sink))
            .label("dataset", "tiny")
            .label("ranker", "itempop")
            .label("design", ActionSpaceKind::BcbtPopular.name())
            .label("threads", 1u32),
    );
    trainer.train(&system, GOLDEN_STEPS);
}

/// Projects one JSONL line onto its deterministic fields, rendered in
/// the canonical field order so comparisons are string equality.
fn deterministic_view(line: &str) -> String {
    let value = telemetry::json::parse(line)
        .unwrap_or_else(|err| panic!("trace line does not parse: {err}\n  {line}"));
    let mut filtered = Json::obj();
    for &key in DETERMINISTIC_FIELDS {
        if let Some(v) = value.get(key) {
            filtered = filtered.field(key, v.clone());
        }
    }
    filtered.render()
}

fn trace_views(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|err| panic!("cannot read {}: {err}", path.display()))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(deterministic_view)
        .collect()
}

#[test]
fn pinned_seed_trace_matches_golden_fixture() {
    let fresh = std::env::temp_dir().join(format!("golden-trace-{}.jsonl", std::process::id()));
    run_trace(&fresh);
    let golden = golden_path();

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().expect("parent")).expect("golden dir");
        std::fs::copy(&fresh, &golden).expect("update fixture");
        std::fs::remove_file(&fresh).ok();
        println!("regenerated {}", golden.display());
        return;
    }

    assert!(
        golden.exists(),
        "missing fixture {}; generate it with: UPDATE_GOLDEN=1 cargo test --test golden_trace",
        golden.display()
    );
    let expected = trace_views(&golden);
    let actual = trace_views(&fresh);
    assert_eq!(
        expected.len(),
        actual.len(),
        "event count changed: fixture has {}, run produced {} \
         (if intentional: UPDATE_GOLDEN=1 cargo test --test golden_trace)",
        expected.len(),
        actual.len()
    );
    for (i, (want, got)) in expected.iter().zip(&actual).enumerate() {
        assert_eq!(
            want, got,
            "trace diverged at event {i}:\n  fixture: {want}\n  run:     {got}\n\
             (if intentional: UPDATE_GOLDEN=1 cargo test --test golden_trace)"
        );
    }
    std::fs::remove_file(&fresh).ok();
}

#[test]
fn golden_run_is_reproducible_within_a_build() {
    // Sanity for the fixture's premise: two fresh runs in this very
    // process produce identical deterministic views. If this fails,
    // the fixture comparison above is testing noise, not regressions.
    let a = std::env::temp_dir().join(format!("golden-a-{}.jsonl", std::process::id()));
    let b = std::env::temp_dir().join(format!("golden-b-{}.jsonl", std::process::id()));
    run_trace(&a);
    run_trace(&b);
    assert_eq!(trace_views(&a), trace_views(&b));
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}
