//! The hierarchical tracer end to end (DESIGN.md §5d): a short real
//! training run with tracing *enabled* must (a) leave the training
//! results bit-identical across thread counts — the tracer never
//! touches the RNG path — (b) record the same number of spans whether
//! the observation engine runs on 1 thread or 8, and (c) export a
//! Chrome trace document that passes the workspace's own validator
//! (balanced begin/end per span, monotone timestamps per track, LIFO
//! nesting).

use std::sync::Mutex;

use poisonrec::{
    ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig, StepStats,
};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};
use telemetry::trace;
use telemetry::TraceCollector;

const EPISODES: usize = 8;
const STEPS: usize = 3;

/// The tracer is process-global state; tests that arm it must not
/// overlap. (Lock poisoning from an earlier failed test is harmless —
/// every test resets the tracer first.)
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn build_system(seed: u64, ranker: RankerKind) -> BlackBoxSystem {
    let data = datasets::PaperDataset::Phone.generate_scaled(0.03, seed);
    let boxed = ranker.build(&LogView::clean(&data), 16);
    BlackBoxSystem::build(
        data,
        boxed,
        SystemConfig {
            eval_users: 48,
            reserve_attackers: 16,
            seed,
            ..SystemConfig::default()
        },
    )
}

/// Trains `STEPS` steps with tracing armed; returns the history plus
/// the collected trace snapshot.
fn train_traced(threads: usize, ranker: RankerKind) -> (Vec<StepStats>, telemetry::TraceSnapshot) {
    let system = build_system(13, ranker);
    let cfg = PoisonRecConfig::builder()
        .seed(13)
        .threads(threads)
        .action_space(ActionSpaceKind::BcbtPopular)
        .policy(PolicyConfig {
            dim: 8,
            num_attackers: 6,
            trajectory_len: 8,
            init_scale: 0.1,
        })
        .ppo(PpoConfig {
            samples_per_step: EPISODES,
            batch: EPISODES,
            epochs: 2,
            ..PpoConfig::default()
        })
        .build_for(&system)
        .expect("valid config");
    let mut trainer = PoisonRecTrainer::new(cfg, &system);

    trace::reset();
    tensor::profile::reset();
    trace::enable();
    let history = trainer.train(&system, STEPS).to_vec();
    trace::disable();
    (history, TraceCollector::collect())
}

#[test]
fn traced_runs_are_bit_identical_and_span_balanced_across_threads() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());

    let (h1, snap1) = train_traced(1, RankerKind::ItemPop);
    let (h8, snap8) = train_traced(8, RankerKind::ItemPop);

    // (a) Tracing on + 8 observation threads must not move a single
    // bit of the training results relative to 1 thread.
    assert_eq!(h1.len(), STEPS);
    assert_eq!(h8.len(), STEPS);
    for (a, b) in h1.iter().zip(&h8) {
        assert_eq!(
            a.mean_reward, b.mean_reward,
            "step {}: thread count changed mean reward under tracing",
            a.step
        );
        assert_eq!(a.max_reward, b.max_reward);
        assert_eq!(a.target_click_ratio, b.target_click_ratio);
    }

    // (b) Same work → same spans, regardless of which thread ran each
    // job. Only the *placement* across tracks may differ.
    assert!(snap1.span_count() > 0, "traced run recorded no spans");
    assert_eq!(
        snap1.span_count(),
        snap8.span_count(),
        "span census differs between 1 and 8 threads"
    );
    assert_eq!(snap1.dropped, 0, "ring wrapped during a tiny run");
    assert_eq!(snap8.dropped, 0);
    assert_eq!(snap1.unmatched, 0, "unbalanced begin/end on 1 thread");
    assert_eq!(snap8.unmatched, 0, "unbalanced begin/end on 8 threads");

    // (c) Both exports must satisfy the trace schema the CI validator
    // enforces: balanced, monotone per track, LIFO-nested.
    for (threads, snap) in [(1usize, &snap1), (8, &snap8)] {
        let doc = snap.to_chrome_json(&[]);
        let stats = trace::validate_chrome(&doc)
            .unwrap_or_else(|err| panic!("threads={threads}: invalid chrome trace: {err}"));
        assert_eq!(stats.spans, snap.span_count() as u64);

        // Every trainer phase shows up as a root span, once per step.
        let (aggs, root_ns) = trace::aggregate_chrome(&doc).expect("aggregate");
        for phase in ["sample", "score", "update"] {
            let agg = aggs
                .iter()
                .find(|a| a.cat == "trainer" && a.name == phase)
                .unwrap_or_else(|| panic!("threads={threads}: no trainer/{phase} spans"));
            assert_eq!(agg.count as usize, STEPS, "trainer/{phase} span count");
        }
        // Self times partition the traced wall time exactly.
        let self_sum: u64 = aggs.iter().map(|a| a.self_ns).sum();
        assert_eq!(self_sum, root_ns, "threads={threads}: self-time partition");
    }
}

#[test]
fn op_profiler_sees_the_policy_update_and_disabling_stops_both() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());

    // BPR: per-episode retrains move the reward, so advantages are
    // non-zero and PPO's backward pass actually runs. (ItemPop at this
    // tiny scale yields constant rewards → zero advantages → PPO
    // legitimately skips backward.)
    let (_, snap) = train_traced(1, RankerKind::Bpr);
    assert!(snap.span_count() > 0);
    let profile = tensor::profile::snapshot();
    assert!(
        profile.total_ns() > 0,
        "PPO updates ran under tracing but the op profiler saw nothing"
    );
    let matmul = profile
        .rows
        .iter()
        .find(|r| r.kind == tensor::OpKind::MatMul)
        .expect("policy forward/backward uses MatMul");
    assert!(
        matmul.fwd_calls > 0 && matmul.bwd_calls > 0,
        "matmul row: {matmul:?}; all rows: {:?}",
        profile.rows
    );

    // With the flag off, another run must add nothing to either table.
    trace::reset();
    tensor::profile::reset();
    let system = build_system(13, RankerKind::ItemPop);
    let cfg = PoisonRecConfig::builder()
        .seed(13)
        .threads(1)
        .action_space(ActionSpaceKind::BcbtPopular)
        .policy(PolicyConfig {
            dim: 8,
            num_attackers: 6,
            trajectory_len: 8,
            init_scale: 0.1,
        })
        .ppo(PpoConfig {
            samples_per_step: EPISODES,
            batch: EPISODES,
            epochs: 2,
            ..PpoConfig::default()
        })
        .build_for(&system)
        .expect("valid config");
    let mut trainer = PoisonRecTrainer::new(cfg, &system);
    trainer.train(&system, 1);
    assert_eq!(TraceCollector::collect().span_count(), 0);
    assert_eq!(tensor::profile::snapshot().total_ns(), 0);
}
