//! Cross-crate integration: dataset twin → black-box system →
//! PoisonRec training → measurable item promotion, plus baseline
//! comparisons. This is the full paper pipeline at miniature scale.

use baselines::BaselineKind;
use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};

fn small_system(ranker: RankerKind, seed: u64) -> BlackBoxSystem {
    small_system_on(PaperDataset::Steam, ranker, seed)
}

fn small_system_on(dataset: PaperDataset, ranker: RankerKind, seed: u64) -> BlackBoxSystem {
    let data = dataset.generate_scaled(0.04, seed);
    let boxed = ranker.build(&LogView::clean(&data), 32);
    BlackBoxSystem::build(
        data,
        boxed,
        SystemConfig {
            eval_users: 96,
            seed,
            ..SystemConfig::default()
        },
    )
}

fn quick_cfg(seed: u64) -> PoisonRecConfig {
    PoisonRecConfig {
        policy: PolicyConfig {
            dim: 16,
            num_attackers: 10,
            trajectory_len: 16,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            samples_per_step: 8,
            batch: 8,
            ..PpoConfig::default()
        },
        action_space: ActionSpaceKind::BcbtPopular,
        seed,
        threads: 2,
    }
}

#[test]
fn clean_systems_never_expose_targets() {
    for ranker in [
        RankerKind::ItemPop,
        RankerKind::CoVisitation,
        RankerKind::Pmf,
    ] {
        let system = small_system(ranker, 3);
        assert_eq!(system.clean_rec_num(), 0, "{ranker} exposes cold targets");
    }
}

#[test]
fn poisonrec_promotes_targets_on_itempop() {
    // Phone is the sparsest twin: its popularity threshold is within
    // the test's small click budget (Steam's is not — see EXPERIMENTS.md).
    let system = small_system_on(PaperDataset::Phone, RankerKind::ItemPop, 5);
    let mut trainer = PoisonRecTrainer::new(quick_cfg(5), &system);
    trainer.train(&system, 15);
    let best = trainer.best_episode().expect("trained").reward;
    assert!(best > 0.0, "no promotion achieved");
    // The attack stays within the harness bound.
    assert!(best <= system.max_rec_num() as f32);
}

#[test]
fn poisonrec_promotes_targets_on_covisitation() {
    let system = small_system(RankerKind::CoVisitation, 7);
    let mut trainer = PoisonRecTrainer::new(quick_cfg(7), &system);
    trainer.train(&system, 12);
    assert!(trainer.best_episode().expect("trained").reward > 0.0);
}

#[test]
fn every_baseline_runs_against_every_cheap_ranker() {
    for ranker in [RankerKind::ItemPop, RankerKind::CoVisitation] {
        let system = small_system(ranker, 11);
        for kind in BaselineKind::ALL {
            // AppGrad queries the system; keep its budget tiny here.
            let mut method = match kind {
                BaselineKind::AppGrad => Box::new(baselines::AppGrad::new(
                    baselines::AppGradConfig {
                        iterations: 2,
                        ..Default::default()
                    },
                    11,
                )) as Box<dyn baselines::AttackMethod>,
                other => other.build(11),
            };
            let poison = method.generate(&system, 6, 8);
            assert_eq!(poison.len(), 6, "{kind} wrong account count on {ranker}");
            assert!(poison.iter().all(|t| t.len() == 8), "{kind} wrong length");
            let rec_num = system.inject_and_observe_seeded(&poison, 1);
            assert!(rec_num <= system.max_rec_num(), "{kind} out of range");
        }
    }
}

#[test]
fn conslop_beats_random_on_covisitation() {
    // ConsLOP is white-box for CoVisitation; it must clearly beat the
    // log-free Random heuristic there (paper §IV-D).
    let system = small_system(RankerKind::CoVisitation, 13);
    let score = |kind: BaselineKind| -> u32 {
        let mut method = kind.build(13);
        let poison = method.generate(&system, 10, 10);
        // Average a few retrain seeds to damp noise.
        (0..3)
            .map(|s| system.inject_and_observe_seeded(&poison, s))
            .sum::<u32>()
            / 3
    };
    let conslop = score(BaselineKind::ConsLop);
    let random = score(BaselineKind::Random);
    assert!(
        conslop > random,
        "ConsLOP ({conslop}) should beat Random ({random}) on CoVisitation"
    );
}

#[test]
fn trained_policy_beats_untrained_policy() {
    let system = small_system_on(PaperDataset::Phone, RankerKind::ItemPop, 17);
    let mut trainer = PoisonRecTrainer::new(quick_cfg(17), &system);
    let untrained: f32 = (0..4)
        .map(|_| {
            let ep = trainer.sample_attack();
            system.inject_and_observe_seeded(&ep.trajectories, 2) as f32
        })
        .sum::<f32>()
        / 4.0;
    trainer.train(&system, 15);
    let trained: f32 = (0..4)
        .map(|_| {
            let ep = trainer.sample_attack();
            system.inject_and_observe_seeded(&ep.trajectories, 2) as f32
        })
        .sum::<f32>()
        / 4.0;
    assert!(
        trained > untrained,
        "training did not help: untrained {untrained}, trained {trained}"
    );
}
