//! The telemetry layer end to end: a short real training run streamed
//! through a [`telemetry::JsonlSink`] must yield a log in which every
//! line parses, the manifest comes first, step events are monotone with
//! the documented observation arithmetic — and attaching the logger
//! must not perturb the training results for any thread count.

use std::path::PathBuf;
use std::sync::Arc;

use poisonrec::{
    ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig, StepLogger,
    StepStats,
};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};
use telemetry::{json, Json, JsonlSink};

const EPISODES: usize = 8;
const STEPS: usize = 3;

fn build_system(seed: u64) -> BlackBoxSystem {
    let data = datasets::PaperDataset::Phone.generate_scaled(0.03, seed);
    let boxed = RankerKind::ItemPop.build(&LogView::clean(&data), 16);
    BlackBoxSystem::build(
        data,
        boxed,
        SystemConfig {
            eval_users: 48,
            reserve_attackers: 16,
            seed,
            ..SystemConfig::default()
        },
    )
}

fn train_logged(system: &BlackBoxSystem, threads: usize, path: &PathBuf) -> Vec<StepStats> {
    let sink = JsonlSink::create(path).expect("create sink");
    sink.emit(
        &Json::obj()
            .field("type", "manifest")
            .field("experiment", "test")
            .field("episodes", EPISODES)
            .field("steps", STEPS)
            .field("threads", threads),
    )
    .expect("manifest write");
    let cfg = PoisonRecConfig::builder()
        .seed(13)
        .threads(threads)
        .action_space(ActionSpaceKind::BcbtPopular)
        .policy(PolicyConfig {
            dim: 8,
            num_attackers: 6,
            trajectory_len: 8,
            init_scale: 0.1,
        })
        .ppo(PpoConfig {
            samples_per_step: EPISODES,
            batch: EPISODES,
            epochs: 2,
            ..PpoConfig::default()
        })
        .build_for(system)
        .expect("valid config");
    let mut trainer = PoisonRecTrainer::new(cfg, system);
    trainer.attach_logger(
        StepLogger::new(Arc::new(sink))
            .label("ranker", RankerKind::ItemPop.name())
            .label("threads", threads),
    );
    trainer.train(system, STEPS).to_vec()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("poisonrec-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn parse_lines(path: &PathBuf) -> Vec<Json> {
    let text = std::fs::read_to_string(path).expect("read log");
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            json::parse(line).unwrap_or_else(|err| panic!("line {} unparseable: {err}", i + 1))
        })
        .collect()
}

#[test]
fn run_log_parses_with_monotone_steps_and_exact_observation_budget() {
    let path = scratch("run-basic.jsonl");
    let system = build_system(13);
    let history = train_logged(&system, 1, &path);
    assert_eq!(history.len(), STEPS);

    let lines = parse_lines(&path);
    assert_eq!(lines.len(), 1 + STEPS, "manifest + one event per step");
    assert_eq!(
        lines[0].get("type").and_then(Json::as_str),
        Some("manifest"),
        "first line must be the run manifest"
    );

    for (i, line) in lines[1..].iter().enumerate() {
        assert_eq!(line.get("type").and_then(Json::as_str), Some("step"));
        assert_eq!(line.get("ranker").and_then(Json::as_str), Some("ItemPop"));
        assert_eq!(
            line.get("step").and_then(Json::as_u64),
            Some(i as u64),
            "steps must be monotone and gap-free"
        );
        assert_eq!(
            line.get("observations").and_then(Json::as_u64),
            Some((EPISODES * (i + 1)) as u64),
            "cumulative observations must be episodes x (step + 1)"
        );
        for field in ["sample_secs", "score_secs", "update_secs"] {
            let secs = line
                .get(field)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("step {i} missing {field}"));
            assert!(secs.is_finite() && secs >= 0.0, "{field} = {secs}");
        }
        let mean = line.get("mean_reward").and_then(Json::as_f64).unwrap();
        assert_eq!(mean as f32, history[i].mean_reward);
    }
}

#[test]
fn logged_rewards_are_bit_identical_across_thread_counts() {
    // Acceptance check: telemetry must stay off the RNG path, so a
    // logged run on 1 thread and on 8 threads records the same rewards
    // bit for bit — in the returned history and in the JSONL itself.
    let path1 = scratch("run-t1.jsonl");
    let path8 = scratch("run-t8.jsonl");
    let h1 = train_logged(&build_system(13), 1, &path1);
    let h8 = train_logged(&build_system(13), 8, &path8);
    for (a, b) in h1.iter().zip(&h8) {
        assert_eq!(a.mean_reward.to_bits(), b.mean_reward.to_bits());
        assert_eq!(a.max_reward.to_bits(), b.max_reward.to_bits());
        assert_eq!(a.observations, b.observations);
    }

    let l1 = parse_lines(&path1);
    let l8 = parse_lines(&path8);
    assert_eq!(l1.len(), l8.len());
    for (a, b) in l1[1..].iter().zip(&l8[1..]) {
        for field in ["mean_reward", "max_reward"] {
            let (va, vb) = (
                a.get(field).and_then(Json::as_f64).expect(field),
                b.get(field).and_then(Json::as_f64).expect(field),
            );
            assert_eq!(va.to_bits(), vb.to_bits(), "{field} drifted with threads");
        }
    }
}
