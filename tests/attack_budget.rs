//! Property tests for budget accounting at the `ObservableSystem`
//! boundary (ISSUE 8): no attack — under *any* randomly drawn budget —
//! injects more fake users or feedback than its cell declared, and
//! every impossible cell (overspent observations, capability
//! mismatches, budgets the victim cannot host) comes back as a typed
//! [`AttackError`], never a panic.
//!
//! Two layers are pinned:
//!
//! * the guard itself ([`GuardedSystem`]): an over-budget injection is
//!   refused *whole* — nothing is spent, the usage tally and the
//!   system's observation ordinal are untouched, so a refusal can
//!   never perturb a later run's seed stream;
//! * the zoo driver ([`poisonrec::run_attack`]) over every registered
//!   [`AttackFamily`]: whatever the budget, the outcome is either a
//!   completed run whose guard-counted usage respects the declaration,
//!   or a typed refusal.

use baselines::{AppGradConfig, AttackFamily, ConsLopConfig, InfluenceConfig, ZooTuning};
use poisonrec::{run_attack, ActionSpaceKind, PoisonRecConfig, PolicyConfig, PpoConfig, ZooConfig};
use proptest::prelude::*;
use recsys::attack::{AttackBudget, AttackError, GuardedSystem};
use recsys::data::{Dataset, Trajectory};
use recsys::rankers::ItemPop;
use recsys::system::{BlackBoxSystem, SystemConfig};

fn tiny_log() -> Dataset {
    let histories = (0..40u32)
        .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
        .collect();
    Dataset::from_histories("tiny", histories, 60, 8)
}

const RESERVE: u32 = 8;

fn tiny_system() -> BlackBoxSystem {
    BlackBoxSystem::build(
        tiny_log(),
        Box::new(ItemPop::new()),
        SystemConfig {
            eval_users: 24,
            reserve_attackers: RESERVE,
            ..SystemConfig::default()
        },
    )
}

fn tiny_tuning() -> ZooTuning {
    ZooTuning {
        seed: 11,
        poisonrec: PoisonRecConfig {
            policy: PolicyConfig {
                dim: 8,
                init_scale: 0.1,
                ..PolicyConfig::default()
            },
            ppo: PpoConfig {
                lr: 0.01,
                samples_per_step: 2,
                batch: 2,
                epochs: 1,
                ..PpoConfig::default()
            },
            action_space: ActionSpaceKind::BcbtPopular,
            seed: 5,
            threads: 1,
        },
        poisonrec_steps: 1,
        appgrad: AppGradConfig {
            iterations: 1,
            ..AppGradConfig::default()
        },
        conslop: ConsLopConfig::default(),
        influence: InfluenceConfig {
            rounds: 1,
            dim: 8,
            epochs: 1,
            filler_pool: 4,
        },
    }
}

/// A poison of `users` trajectories, `clicks` items each, drawn from
/// the tiny catalog.
fn poison(users: u64, clicks: u64) -> Vec<Trajectory> {
    (0..users)
        .map(|u| (0..clicks).map(|c| ((u * 7 + c) % 60) as u32).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The guard enforces all three budget axes on injection: a batch
    /// is either fully admitted (and fully counted) or fully refused
    /// with a typed budget violation — and a refusal spends nothing,
    /// on the guard's tally *and* on the system's observation ordinal.
    #[test]
    fn guard_refuses_overspends_whole_and_spends_nothing(
        declared_users in 1u32..7,
        declared_clicks in 1usize..7,
        declared_obs in 0u64..4,
        inject_users in 1u64..9,
        inject_clicks in 1u64..9,
    ) {
        let system = tiny_system();
        let budget = AttackBudget {
            fake_users: declared_users,
            clicks_per_user: declared_clicks,
            observations: declared_obs,
        };
        let guard = GuardedSystem::new(&system, budget);
        let batch = poison(inject_users, inject_clicks);
        let in_budget = declared_obs >= 1
            && inject_users <= u64::from(declared_users)
            && inject_clicks <= declared_clicks as u64;

        match guard.try_observe(&batch) {
            Ok(_) => {
                prop_assert!(in_budget, "guard admitted an over-budget injection");
                let usage = guard.usage();
                prop_assert_eq!(usage.observations, 1);
                prop_assert_eq!(usage.peak_fake_users, inject_users);
                prop_assert_eq!(usage.peak_clicks_per_user, inject_clicks);
                prop_assert_eq!(usage.feedback_events, inject_users * inject_clicks);
                prop_assert_eq!(system.observations_spent(), 1);
            }
            Err(AttackError::Budget(violation)) => {
                prop_assert!(!in_budget, "guard refused an in-budget injection: {}", violation);
                // Refusal is check-first: nothing was spent anywhere.
                prop_assert_eq!(guard.usage(), Default::default());
                prop_assert_eq!(system.observations_spent(), 0);
                prop_assert!(violation.requested > violation.declared);
            }
            Err(other) => return Err(TestCaseError::Fail(format!(
                "expected Ok or a typed budget violation, got {other}"
            ))),
        }
    }

    /// Driving any registered family under any drawn budget either
    /// completes with guard-counted usage inside the declaration, or
    /// refuses with a typed error. Nothing panics; over-reserve
    /// budgets and starved observation budgets are both typed.
    #[test]
    fn every_family_respects_any_declared_budget(
        family_idx in 0usize..AttackFamily::ALL.len(),
        fake_users in 1u32..13,
        clicks_per_user in 1usize..9,
        observations in 0u64..9,
    ) {
        let family = AttackFamily::ALL[family_idx];
        let tuning = tiny_tuning();
        let budget = AttackBudget { fake_users, clicks_per_user, observations };
        let system = tiny_system();
        let log = tiny_log();
        let mut attack = family.build(&tuning, Some(&log)).expect("buildable with a log");

        match run_attack(attack.as_mut(), &system, &ZooConfig::new(budget), &mut |_| {}) {
            Ok(run) => {
                prop_assert!(run.usage.observations <= observations,
                    "{} spent {} observation(s) of {} declared",
                    family, run.usage.observations, observations);
                prop_assert!(run.usage.peak_fake_users <= u64::from(fake_users));
                prop_assert!(run.usage.peak_clicks_per_user <= clicks_per_user as u64);
                prop_assert!(run.poison.len() <= fake_users as usize);
                prop_assert!(run.poison.iter().all(|t| t.len() <= clicks_per_user));
                // The system's own ledger agrees with the guard's.
                prop_assert_eq!(system.observations_spent(), run.usage.observations);
            }
            Err(AttackError::Budget(violation)) => {
                prop_assert!(violation.requested > violation.declared);
                // The guard never let the overspend through.
                prop_assert!(system.observations_spent() <= observations);
            }
            Err(AttackError::Config(_)) => {
                // The driver's reserve gate: budgets the victim cannot
                // host are refused before anything runs.
                prop_assert!(fake_users > RESERVE);
                prop_assert_eq!(system.observations_spent(), 0);
            }
            Err(AttackError::Capability { .. } | AttackError::State(_)) => {
                return Err(TestCaseError::Fail(format!(
                    "{family} refused a plain cell with a non-budget error"
                )));
            }
        }
    }

    /// Capability mismatches are typed at construction: families that
    /// declare `model_required` refuse to build without the log —
    /// naming themselves — and never panic.
    #[test]
    fn capability_mismatches_are_typed_not_panics(
        family_idx in 0usize..AttackFamily::ALL.len(),
    ) {
        let family = AttackFamily::ALL[family_idx];
        match family.build(&tiny_tuning(), None) {
            Ok(attack) => {
                prop_assert!(!family.requires_log());
                prop_assert!(!attack.caps().model_required,
                    "{} built log-free but declares model_required", family);
            }
            Err(AttackError::Capability { attack, .. }) => {
                prop_assert!(family.requires_log());
                prop_assert_eq!(attack, family.name());
            }
            Err(other) => return Err(TestCaseError::Fail(format!(
                "{family}: expected a capability refusal, got {other}"
            ))),
        }
    }
}
