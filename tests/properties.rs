//! Property-based tests (proptest) over the core data structures and
//! invariants: the complete binary tree, action-space sampling,
//! reward normalization, top-k selection, alias sampling, the
//! log-view overlay, and the checkpoint wire codec (bit-exact
//! round-trips; malformed containers rejected with errors, not
//! panics).

use datasets::AliasTable;
use poisonrec::checkpoint::{seal, unseal, FORMAT_VERSION, MAGIC};
use poisonrec::{normalize_rewards, ActionSpace, ActionSpaceKind, ItemTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recsys::data::{Dataset, LogView};
use recsys::eval::top_k_items;
use tensor::optim::{Adam, Optimizer};
use tensor::wire::Codec;
use tensor::{GradStore, Matrix, ParamSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A complete binary tree over n leaves preserves leaf order, has
    /// exactly n-1 internal nodes, and depth ceil(log2 n).
    #[test]
    fn complete_tree_invariants(n in 1usize..500) {
        let leaves: Vec<u32> = (0..n as u32).collect();
        let tree = ItemTree::complete(&leaves);
        prop_assert_eq!(tree.num_leaves(), n);
        prop_assert_eq!(tree.num_internal(), n - 1);
        prop_assert_eq!(tree.leaves_in_order(), leaves);
        let expected_depth = if n == 1 { 0 } else { (n as f64).log2().ceil() as usize };
        prop_assert_eq!(tree.depth(), expected_depth);
    }

    /// Sampling any action space always yields an in-catalog item whose
    /// decision trail re-evaluates to the same log-probability.
    #[test]
    fn action_space_sampling_is_consistent(
        num_items in 2u32..200,
        kind_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let kind = ActionSpaceKind::ALL[kind_idx];
        let popularity: Vec<u32> = (0..num_items).map(|i| num_items - i).collect();
        let space = ActionSpace::build(kind, num_items, 4, &popularity, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let emb = Matrix::uniform(space.table_rows(), 8, 0.5, &mut rng);
        let d: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) * 0.1).collect();
        let (item, trail) = space.sample(&d, &emb, &mut rng);
        prop_assert!(item < num_items + 4);
        let sampled: f32 = trail.iter().map(|c| c.old_logp).sum();
        let recomputed = space.trail_logp(&d, &emb, &trail);
        prop_assert!((sampled - recomputed).abs() < 1e-3);
        prop_assert!(sampled <= 1e-6);
    }

    /// Eq. 8 normalization: zero mean, unit (population) std for any
    /// non-constant batch; all-zero for constant batches.
    #[test]
    fn reward_normalization_properties(rewards in prop::collection::vec(0.0f32..1e4, 2..64)) {
        let normed = normalize_rewards(&rewards);
        prop_assert_eq!(normed.len(), rewards.len());
        let constant = rewards.iter().all(|&r| (r - rewards[0]).abs() < 1e-9);
        if constant {
            prop_assert!(normed.iter().all(|&x| x == 0.0));
        } else {
            let mean: f32 = normed.iter().sum::<f32>() / normed.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
            // Order must be preserved.
            for (a, b) in rewards.iter().zip(rewards.iter().skip(1)) {
                let (na, nb) = (normed[rewards.iter().position(|x| x == a).unwrap()],
                                normed[rewards.iter().position(|x| x == b).unwrap()]);
                if a < b { prop_assert!(na <= nb); }
            }
        }
    }

    /// top-k returns k items, sorted by score, all from the candidates.
    #[test]
    fn top_k_properties(scores in prop::collection::vec(-1e3f32..1e3, 1..100), k in 1usize..20) {
        let candidates: Vec<u32> = (0..scores.len() as u32).collect();
        let top = top_k_items(&candidates, &scores, k);
        prop_assert_eq!(top.len(), k.min(candidates.len()));
        // Sorted by score descending.
        for w in top.windows(2) {
            prop_assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
        // Every returned item really is among the k best.
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[top.len() - 1];
        for &item in &top {
            prop_assert!(scores[item as usize] >= threshold);
        }
    }

    /// top-k with NaN scores mixed in: selection must agree exactly
    /// with sorting all candidates by `total_cmp` descending and
    /// truncating to k (the documented contract), and return distinct
    /// in-range indices. NaN sorts above +inf under `total_cmp`, so
    /// NaN-scored items are *preferred* — the point is that selection
    /// and full sort make the same deterministic choice.
    #[test]
    fn top_k_matches_sort_truncate_with_nans(
        raw in prop::collection::vec(-1e3f32..1e3, 1..100),
        nan_every in 1usize..6,
        k in 0usize..25,
    ) {
        let scores: Vec<f32> = raw
            .iter()
            .enumerate()
            .map(|(i, &s)| if i % nan_every == 0 { f32::NAN } else { s })
            .collect();
        let candidates: Vec<u32> = (0..scores.len() as u32).collect();
        let top = top_k_items(&candidates, &scores, k);
        prop_assert_eq!(top.len(), k.min(candidates.len()));

        // Distinct, in-range indices.
        let mut seen = vec![false; scores.len()];
        for &item in &top {
            prop_assert!((item as usize) < scores.len());
            prop_assert!(!seen[item as usize], "duplicate item {}", item);
            seen[item as usize] = true;
        }

        // Positional agreement with the reference: sort everything by
        // total_cmp descending, truncate to k, compare score *bits* so
        // NaN == NaN and -0.0 != +0.0.
        let mut reference = scores.clone();
        reference.sort_unstable_by(|a, b| b.total_cmp(a));
        for (pos, &item) in top.iter().enumerate() {
            prop_assert!(
                scores[item as usize].to_bits() == reference[pos].to_bits(),
                "position {}: selected {:?}, reference {:?}",
                pos,
                scores[item as usize],
                reference[pos]
            );
        }
    }

    /// Alias tables never emit zero-weight outcomes.
    #[test]
    fn alias_table_respects_support(
        weights in prop::collection::vec(0.0f64..10.0, 1..50),
        seed in 0u64..100,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let idx = table.sample(&mut rng);
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight outcome {}", idx);
        }
    }

    /// The log view's interaction count and popularity are consistent
    /// with base + poison for any poison shape.
    #[test]
    fn log_view_overlay_is_consistent(
        n_attackers in 0usize..6,
        t_len in 0usize..10,
    ) {
        let histories = (0..12u32).map(|u| vec![u % 5, (u + 1) % 5, (u + 2) % 5]).collect();
        let base = Dataset::from_histories("p", histories, 5, 2);
        let poison: Vec<Vec<u32>> =
            (0..n_attackers).map(|a| (0..t_len).map(|t| ((a + t) % 7) as u32).collect()).collect();
        let view = LogView::new(&base, &poison);
        prop_assert_eq!(view.num_users(), base.num_users() + n_attackers as u32);
        prop_assert_eq!(
            view.num_interactions(),
            base.num_interactions() + n_attackers * t_len
        );
        let pop = view.popularity();
        let base_pop = base.popularity();
        let poison_total: u32 = pop.iter().sum::<u32>() - base_pop.iter().sum::<u32>();
        prop_assert_eq!(poison_total as usize, n_attackers * t_len);
    }

    /// The checkpoint codec round-trips any ParamSet bit-exactly —
    /// including NaN payloads, infinities, signed zeros, and denormals
    /// smuggled in through raw bit patterns.
    #[test]
    fn param_set_codec_round_trips_bit_exactly(
        shapes in prop::collection::vec(0usize..25, 0..6),
        bits in prop::collection::vec(0u32..u32::MAX, 0..32),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let mut bit_iter = bits.iter().cycle();
        for (i, &dims) in shapes.iter().enumerate() {
            // One integer encodes a (rows, cols) pair in 0..5 x 0..5.
            let (rows, cols) = (dims / 5, dims % 5);
            let mut m = Matrix::uniform(rows, cols, 1.0, &mut rng);
            for v in m.data_mut() {
                *v = f32::from_bits(*bit_iter.next().unwrap_or(&0));
            }
            params.add(format!("p{i}"), m);
        }
        let bytes = params.to_bytes();
        let back = ParamSet::from_bytes(&bytes).expect("round-trips");
        prop_assert_eq!(back.len(), params.len());
        for (id, m) in params.iter() {
            prop_assert_eq!(back.name(id), params.name(id));
            prop_assert_eq!(back.get(id).shape(), m.shape());
            for (a, b) in m.data().iter().zip(back.get(id).data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Re-encoding the decoded value reproduces the bytes exactly.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Adam round-trips bit-exactly after real optimization steps (so
    /// moments are non-trivial), and its decoder rejects every
    /// truncation of the encoding with an error instead of a panic.
    #[test]
    fn adam_codec_round_trips_and_rejects_truncations(
        rows in 1usize..4,
        cols in 1usize..4,
        steps in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::uniform(rows, cols, 1.0, &mut rng));
        let mut opt = Adam::new(&params, 0.01);
        for s in 0..steps {
            let mut grads = GradStore::zeros_like(&params);
            for (i, g) in grads.get_mut(w).data_mut().iter_mut().enumerate() {
                *g = (i as f32 + 1.0) * 0.1 * (s as f32 - 1.5);
            }
            opt.step(&mut params, &grads);
        }
        let bytes = opt.to_bytes();
        let back = Adam::from_bytes(&bytes).expect("round-trips");
        prop_assert_eq!(back.steps(), steps as u64);
        prop_assert_eq!(back.to_bytes(), bytes.clone());
        for cut in 0..bytes.len() {
            prop_assert!(Adam::from_bytes(&bytes[..cut]).is_err(), "cut {} decoded", cut);
        }
    }

    /// Sealed checkpoint containers survive a round-trip and reject
    /// every single-byte flip (checksum), every truncation, wrong
    /// magic, and future format versions — always with a descriptive
    /// error, never a panic or a silent success.
    #[test]
    fn sealed_container_rejects_all_mutations(
        body in prop::collection::vec(0u8..255, 0..200),
        fingerprint in 0u64..u64::MAX,
        flip_pos in 0usize..1000,
        flip_bit in 0u32..8,
        cut in 0usize..1000,
    ) {
        let sealed = seal(fingerprint, &body);
        let (fp, back) = unseal(&sealed).expect("pristine container unseals");
        prop_assert_eq!(fp, fingerprint);
        prop_assert_eq!(back, &body[..]);

        // Any single bit flip anywhere must be caught.
        let mut mutated = sealed.clone();
        let pos = flip_pos % mutated.len();
        mutated[pos] ^= 1 << flip_bit;
        let err = unseal(&mutated).expect_err("bit flip accepted");
        prop_assert!(!err.to_string().is_empty());

        // Any strict truncation must be caught.
        let cut = cut % sealed.len();
        let err = unseal(&sealed[..cut]).expect_err("truncation accepted");
        prop_assert!(!err.to_string().is_empty());

        // Wrong magic: refused by name.
        let mut bad_magic = sealed.clone();
        bad_magic[..8].copy_from_slice(b"NOTCKPT\0");
        let err = unseal(&bad_magic).expect_err("bad magic accepted");
        prop_assert!(err.to_string().contains("magic"), "{}", err);

        // Future version: refused with an upgrade hint even when the
        // checksum is recomputed to match (a genuinely newer file).
        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        future.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        future.extend_from_slice(&sealed[12..]);
        let err = unseal(&future).expect_err("future version accepted");
        prop_assert!(err.to_string().contains("newer"), "{}", err);
    }
}
