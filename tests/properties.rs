//! Property-based tests (proptest) over the core data structures and
//! invariants: the complete binary tree, action-space sampling,
//! reward normalization, top-k selection, alias sampling, and the
//! log-view overlay.

use datasets::AliasTable;
use poisonrec::{normalize_rewards, ActionSpace, ActionSpaceKind, ItemTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recsys::data::{Dataset, LogView};
use recsys::eval::top_k_items;
use tensor::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A complete binary tree over n leaves preserves leaf order, has
    /// exactly n-1 internal nodes, and depth ceil(log2 n).
    #[test]
    fn complete_tree_invariants(n in 1usize..500) {
        let leaves: Vec<u32> = (0..n as u32).collect();
        let tree = ItemTree::complete(&leaves);
        prop_assert_eq!(tree.num_leaves(), n);
        prop_assert_eq!(tree.num_internal(), n - 1);
        prop_assert_eq!(tree.leaves_in_order(), leaves);
        let expected_depth = if n == 1 { 0 } else { (n as f64).log2().ceil() as usize };
        prop_assert_eq!(tree.depth(), expected_depth);
    }

    /// Sampling any action space always yields an in-catalog item whose
    /// decision trail re-evaluates to the same log-probability.
    #[test]
    fn action_space_sampling_is_consistent(
        num_items in 2u32..200,
        kind_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let kind = ActionSpaceKind::ALL[kind_idx];
        let popularity: Vec<u32> = (0..num_items).map(|i| num_items - i).collect();
        let space = ActionSpace::build(kind, num_items, 4, &popularity, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let emb = Matrix::uniform(space.table_rows(), 8, 0.5, &mut rng);
        let d: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) * 0.1).collect();
        let (item, trail) = space.sample(&d, &emb, &mut rng);
        prop_assert!(item < num_items + 4);
        let sampled: f32 = trail.iter().map(|c| c.old_logp).sum();
        let recomputed = space.trail_logp(&d, &emb, &trail);
        prop_assert!((sampled - recomputed).abs() < 1e-3);
        prop_assert!(sampled <= 1e-6);
    }

    /// Eq. 8 normalization: zero mean, unit (population) std for any
    /// non-constant batch; all-zero for constant batches.
    #[test]
    fn reward_normalization_properties(rewards in prop::collection::vec(0.0f32..1e4, 2..64)) {
        let normed = normalize_rewards(&rewards);
        prop_assert_eq!(normed.len(), rewards.len());
        let constant = rewards.iter().all(|&r| (r - rewards[0]).abs() < 1e-9);
        if constant {
            prop_assert!(normed.iter().all(|&x| x == 0.0));
        } else {
            let mean: f32 = normed.iter().sum::<f32>() / normed.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
            // Order must be preserved.
            for (a, b) in rewards.iter().zip(rewards.iter().skip(1)) {
                let (na, nb) = (normed[rewards.iter().position(|x| x == a).unwrap()],
                                normed[rewards.iter().position(|x| x == b).unwrap()]);
                if a < b { prop_assert!(na <= nb); }
            }
        }
    }

    /// top-k returns k items, sorted by score, all from the candidates.
    #[test]
    fn top_k_properties(scores in prop::collection::vec(-1e3f32..1e3, 1..100), k in 1usize..20) {
        let candidates: Vec<u32> = (0..scores.len() as u32).collect();
        let top = top_k_items(&candidates, &scores, k);
        prop_assert_eq!(top.len(), k.min(candidates.len()));
        // Sorted by score descending.
        for w in top.windows(2) {
            prop_assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
        // Every returned item really is among the k best.
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[top.len() - 1];
        for &item in &top {
            prop_assert!(scores[item as usize] >= threshold);
        }
    }

    /// top-k with NaN scores mixed in: selection must agree exactly
    /// with sorting all candidates by `total_cmp` descending and
    /// truncating to k (the documented contract), and return distinct
    /// in-range indices. NaN sorts above +inf under `total_cmp`, so
    /// NaN-scored items are *preferred* — the point is that selection
    /// and full sort make the same deterministic choice.
    #[test]
    fn top_k_matches_sort_truncate_with_nans(
        raw in prop::collection::vec(-1e3f32..1e3, 1..100),
        nan_every in 1usize..6,
        k in 0usize..25,
    ) {
        let scores: Vec<f32> = raw
            .iter()
            .enumerate()
            .map(|(i, &s)| if i % nan_every == 0 { f32::NAN } else { s })
            .collect();
        let candidates: Vec<u32> = (0..scores.len() as u32).collect();
        let top = top_k_items(&candidates, &scores, k);
        prop_assert_eq!(top.len(), k.min(candidates.len()));

        // Distinct, in-range indices.
        let mut seen = vec![false; scores.len()];
        for &item in &top {
            prop_assert!((item as usize) < scores.len());
            prop_assert!(!seen[item as usize], "duplicate item {}", item);
            seen[item as usize] = true;
        }

        // Positional agreement with the reference: sort everything by
        // total_cmp descending, truncate to k, compare score *bits* so
        // NaN == NaN and -0.0 != +0.0.
        let mut reference = scores.clone();
        reference.sort_unstable_by(|a, b| b.total_cmp(a));
        for (pos, &item) in top.iter().enumerate() {
            prop_assert!(
                scores[item as usize].to_bits() == reference[pos].to_bits(),
                "position {}: selected {:?}, reference {:?}",
                pos,
                scores[item as usize],
                reference[pos]
            );
        }
    }

    /// Alias tables never emit zero-weight outcomes.
    #[test]
    fn alias_table_respects_support(
        weights in prop::collection::vec(0.0f64..10.0, 1..50),
        seed in 0u64..100,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let idx = table.sample(&mut rng);
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight outcome {}", idx);
        }
    }

    /// The log view's interaction count and popularity are consistent
    /// with base + poison for any poison shape.
    #[test]
    fn log_view_overlay_is_consistent(
        n_attackers in 0usize..6,
        t_len in 0usize..10,
    ) {
        let histories = (0..12u32).map(|u| vec![u % 5, (u + 1) % 5, (u + 2) % 5]).collect();
        let base = Dataset::from_histories("p", histories, 5, 2);
        let poison: Vec<Vec<u32>> =
            (0..n_attackers).map(|a| (0..t_len).map(|t| ((a + t) % 7) as u32).collect()).collect();
        let view = LogView::new(&base, &poison);
        prop_assert_eq!(view.num_users(), base.num_users() + n_attackers as u32);
        prop_assert_eq!(
            view.num_interactions(),
            base.num_interactions() + n_attackers * t_len
        );
        let pop = view.popularity();
        let base_pop = base.popularity();
        let poison_total: u32 = pop.iter().sum::<u32>() - base_pop.iter().sum::<u32>();
        prop_assert_eq!(poison_total as usize, n_attackers * t_len);
    }
}
