//! # poisonrec-repro
//!
//! Workspace facade for the Rust reproduction of *PoisonRec: An
//! Adaptive Data Poisoning Framework for Attacking Black-box
//! Recommender Systems* (Song et al., ICDE 2020).
//!
//! Re-exports every crate so downstream users (and the cross-crate
//! integration tests under `tests/`) can depend on a single package:
//!
//! * [`tensor`] — dense-matrix autodiff, NN cells, optimizers.
//! * [`recsys`] — data model, the eight ranker testbeds, the black-box
//!   harness with the RecNum metric.
//! * [`datasets`] — synthetic statistical twins of the paper's four
//!   datasets.
//! * [`poisonrec`] — the attack framework (LSTM+DNN policy, BCBT, PPO).
//! * [`baselines`] — Random/Popular/Middle/PowerItem/ConsLOP/AppGrad.
//! * [`analysis`] — t-SNE and reporting utilities.
//! * [`serve`] — zero-dep HTTP/1.1 recommendation server; with
//!   [`recsys::remote::RemoteSystem`], the attack runs over a socket.
//! * [`runtime`] — worker pool, fault injection, snapshot publication.
//! * [`telemetry`] — metrics, JSONL sinks, tracing, perf snapshots.

pub use analysis;
pub use baselines;
pub use datasets;
pub use poisonrec;
pub use recsys;
pub use runtime;
pub use serve;
pub use telemetry;
pub use tensor;
