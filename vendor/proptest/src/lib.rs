//! Offline stand-in for the subset of `proptest` used by this
//! workspace's property tests.
//!
//! Implements the `proptest! { ... }` macro form the tests use —
//! `#![proptest_config]` header, `arg in strategy` bindings,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` — over a plain
//! seeded-random case loop. No shrinking: a failing case panics with
//! the sampled inputs so it can be reproduced by hand. Strategies
//! cover what the tests need: numeric ranges and
//! `prop::collection::vec`.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs don't apply; skip the case.
    Reject(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    type Value: Debug;

    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy + Debug,
{
    type Value = T;

    fn pick(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Vectors of `elem`-strategy values with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// `prop::...` paths as the prelude exposes them.
pub mod prop {
    pub use super::collection;
}

/// Macro plumbing: a generator seeded for one named test, reachable
/// through `$crate` so caller crates need no direct `rand` dependency.
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed so failures reproduce run-to-run.
pub fn seed_for(test_name: &str) -> u64 {
    test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng($crate::seed_for(stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < cfg.cases && attempts < cfg.cases * 16 {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)*
                    let outcome = (|| -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed after {} cases: {}\ninputs: {:#?}",
                                stringify!($name),
                                accepted,
                                msg,
                                ($(&$arg,)*)
                            );
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use super::prop;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(0u32..5, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
