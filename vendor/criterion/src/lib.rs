//! Offline stand-in for the subset of `criterion` used by the
//! workspace's microbenchmarks.
//!
//! Provides real (if unsophisticated) measurements: each benchmark is
//! warmed up, run for `sample_size` samples, and reported as
//! min/mean/max nanoseconds per iteration on stdout. None of
//! criterion's statistics, plots, or baselines — just enough to keep
//! `benches/` compiling and useful without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label: `group/function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.sample_size, |b| f(b));
    }
}

/// A named group of related measurements.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.sample_size, |b| f(b));
        self
    }

    pub fn finish(self) {}
}

fn run_one(id: BenchmarkId, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|&(elapsed, iters)| elapsed.as_nanos() as f64 / iters as f64)
        .collect();
    if per_iter.is_empty() {
        println!("  {:<40} (no samples)", id.label);
        return;
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {:<40} [{} {} {}]",
        id.label,
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Measures one closure. Each `iter` call contributes one sample;
/// iteration counts are auto-scaled so a sample lasts at least ~1 ms.
pub struct Bencher {
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs
        // at least ~1 ms so Instant overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            b.iter(|| {
                calls += x;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("BPR").label, "BPR");
    }
}
