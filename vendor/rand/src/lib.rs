//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually calls:
//!
//! * [`rngs::StdRng`] — a seedable, cloneable generator
//!   (xoshiro256++ seeded through SplitMix64, not ChaCha12; streams
//!   therefore differ from upstream `rand`, but every consumer in this
//!   repo only relies on *internal* determinism: same seed, same
//!   stream).
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the
//!   integer and float types the workspace samples.
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//! * [`thread_rng`] for doc examples.
//!
//! Anything outside this surface is intentionally absent; add methods
//! here the moment a caller needs them rather than reaching for the
//! real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their full "standard" domain
/// (`[0, 1)` for floats, the whole range for integers).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open / inclusive ranges.
pub trait SampleUniform: Sized {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) + inclusive as i128;
                assert!(span > 0, "cannot sample from empty range {low}..{high}");
                // Widening-multiply range reduction; bias is < 2^-64 per
                // draw, far below anything these experiments can see.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low <= high, "cannot sample from empty range {low}..{high}");
                let unit = <$t as StandardSample>::standard_sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool({p}) out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a `u64` seed (the only constructor this workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through SplitMix64.
    ///
    /// Not the ChaCha12 generator of upstream `rand`; streams differ
    /// from the real crate but are stable across platforms and runs,
    /// which is the property every test and experiment here relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for checkpointing. A
        /// generator rebuilt with [`StdRng::from_state`] continues the
        /// exact stream this one would have produced.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// # Panics
        /// Panics on the all-zero state, which is outside xoshiro256++'s
        /// period (it maps to itself forever).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero state is not a valid xoshiro256++ state"
            );
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh, OS-time-seeded generator. Exists for doc examples; seeded
/// code should use [`SeedableRng::seed_from_u64`].
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling / choosing (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(123);
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
            let s = rng.gen_range(-2.0..=2.0f32);
            assert!((-2.0..=2.0).contains(&s));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
