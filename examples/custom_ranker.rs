//! Extending the testbed: plug a *custom* recommender into the
//! black-box harness and attack it. Demonstrates the `Ranker` trait —
//! here a popularity-smoothed co-visitation hybrid that is not one of
//! the paper's eight algorithms.
//!
//! ```text
//! cargo run --release --example custom_ranker
//! ```

use datasets::PaperDataset;
use poisonrec::{PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::{ItemId, LogView, UserId};
use recsys::rankers::{CoVisitation, ItemPop, Ranker};
use recsys::system::{BlackBoxSystem, SystemConfig};

/// `score = covisit(u, i) + λ · log(1 + popularity(i))` — a common
/// production-style blend of personalization and popularity.
#[derive(Clone)]
struct HybridRanker {
    covisit: CoVisitation,
    pop: ItemPop,
    lambda: f32,
}

impl HybridRanker {
    fn new(lambda: f32) -> Self {
        Self {
            covisit: CoVisitation::new(),
            pop: ItemPop::new(),
            lambda,
        }
    }
}

impl Ranker for HybridRanker {
    fn name(&self) -> &'static str {
        "Hybrid"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        self.covisit.fit(view, seed);
        self.pop.fit(view, seed);
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        self.covisit.fine_tune(view, seed);
        self.pop.fine_tune(view, seed);
    }

    fn score(&self, user: UserId, history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let cv = self.covisit.score(user, history, candidates);
        let pp = self.pop.score(user, history, candidates);
        cv.iter()
            .zip(&pp)
            .map(|(&c, &p)| c + self.lambda * (1.0 + p).ln())
            .collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }
}

fn main() {
    let data = PaperDataset::Phone.generate_scaled(0.03, 11);
    let system = BlackBoxSystem::build(
        data,
        Box::new(HybridRanker::new(0.5)),
        SystemConfig {
            eval_users: 128,
            seed: 11,
            ..SystemConfig::default()
        },
    );
    println!(
        "custom ranker '{}' deployed; clean RecNum = {}",
        system.ranker_name(),
        system.clean_rec_num()
    );

    let cfg = PoisonRecConfig {
        policy: PolicyConfig {
            dim: 32,
            num_attackers: 10,
            trajectory_len: 10,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            samples_per_step: 8,
            batch: 8,
            ..PpoConfig::default()
        },
        ..PoisonRecConfig::default()
    };
    let mut trainer = PoisonRecTrainer::new(cfg, &system);
    for step in 0..12 {
        let stats = trainer.step(&system);
        println!("step {step:>2}: mean RecNum {:>6.1}", stats.mean_reward);
    }
    println!(
        "\nPoisonRec adapted to the unseen algorithm: best RecNum {}",
        trainer.best_episode().map(|e| e.reward).unwrap_or(0.0)
    );
}
