//! Quickstart: poison a black-box recommender in ~30 lines.
//!
//! Builds a small synthetic Steam-like dataset, deploys a BPR ranker
//! behind the black-box harness, trains PoisonRec for a handful of
//! steps, and reports how the target items' exposure (RecNum) grows.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datasets::PaperDataset;
use poisonrec::{PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};

fn main() {
    // 1. A 5%-scale statistical twin of the Steam dataset.
    let data = PaperDataset::Steam.generate_scaled(0.05, 42);
    println!(
        "dataset: {} users, {} items, {} interactions, {} target items",
        data.num_users(),
        data.num_items(),
        data.num_interactions(),
        data.num_targets()
    );

    // 2. Deploy a BPR ranker behind the black-box interface.
    let ranker = RankerKind::Bpr.build(&LogView::clean(&data), 32);
    let system = BlackBoxSystem::build(
        data,
        ranker,
        SystemConfig {
            eval_users: 128,
            seed: 42,
            ..SystemConfig::default()
        },
    );
    println!(
        "clean RecNum: {} (of max {})",
        system.clean_rec_num(),
        system.max_rec_num()
    );

    // 3. Train the attack agent (small budget for a quick demo).
    let cfg = PoisonRecConfig {
        policy: PolicyConfig {
            dim: 32,
            num_attackers: 10,
            trajectory_len: 10,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            samples_per_step: 8,
            batch: 8,
            ..PpoConfig::default()
        },
        ..PoisonRecConfig::default()
    };
    let mut trainer = PoisonRecTrainer::new(cfg, &system);
    for step in 0..10 {
        let stats = trainer.step(&system);
        println!(
            "step {step:>2}: mean RecNum {:>6.1}   best this step {:>5.0}   target-click ratio {:.2}",
            stats.mean_reward, stats.max_reward, stats.target_click_ratio
        );
    }

    // 4. The deployable attack: the best trajectory set found.
    let best = trainer.best_episode().expect("trained");
    println!(
        "\nbest attack: RecNum {} with {} fake accounts x {} clicks",
        best.reward,
        best.trajectories.len(),
        best.trajectories[0].len()
    );
}
