//! One cell of the paper's Table III, end to end: every attack method
//! (four heuristics, ConsLOP, AppGrad, PoisonRec) against a single
//! black-box recommender, printed as a ranked leaderboard.
//!
//! ```text
//! cargo run --release --example attack_comparison
//! ```

use baselines::BaselineKind;
use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig};
use recsys::data::LogView;
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};

fn main() {
    let (n, t) = (10, 10); // attack budget: 10 accounts x 10 clicks
    let data = PaperDataset::Steam.generate_scaled(0.05, 7);
    let ranker = RankerKind::CoVisitation.build(&LogView::clean(&data), 32);
    let system = BlackBoxSystem::build(
        data,
        ranker,
        SystemConfig {
            eval_users: 128,
            seed: 7,
            ..SystemConfig::default()
        },
    );
    println!(
        "target system: CoVisitation on a Steam twin (clean RecNum {})",
        system.clean_rec_num()
    );

    let mut board: Vec<(String, u32)> = Vec::new();

    for kind in BaselineKind::ALL {
        let mut method = kind.build(99);
        let poison = method.generate(&system, n, t);
        let rec_num = system.inject_and_observe_seeded(&poison, 1);
        board.push((kind.name().to_string(), rec_num));
    }

    // PoisonRec with a small training budget.
    let cfg = PoisonRecConfig {
        policy: PolicyConfig {
            dim: 32,
            num_attackers: n,
            trajectory_len: t,
            init_scale: 0.1,
        },
        ppo: PpoConfig {
            samples_per_step: 8,
            batch: 8,
            ..PpoConfig::default()
        },
        action_space: ActionSpaceKind::BcbtPopular,
        seed: 99,
        threads: runtime::default_parallelism(),
    };
    let mut trainer = PoisonRecTrainer::new(cfg, &system);
    trainer.train(&system, 20);
    let best = trainer.best_episode().expect("trained");
    let rec_num = system.inject_and_observe_seeded(&best.trajectories, 1);
    board.push(("PoisonRec".to_string(), rec_num));

    board.sort_by_key(|&(_, score)| std::cmp::Reverse(score));
    println!("\n{:<12} RecNum", "method");
    for (name, score) in &board {
        println!("{name:<12} {score}");
    }
}
