//! Anatomy of the Biased Complete Binary Tree (paper §III-E).
//!
//! Builds the four action-space designs over the same catalog and
//! shows, from an untrained policy, how each biases its samples:
//! Plain hits targets at the base rate `|I_t| / |I ∪ I_t|`, the biased
//! designs at ~50%, and BCBT pays only `O(log |I|)` decisions per
//! click.
//!
//! ```text
//! cargo run --release --example bcbt_anatomy
//! ```

use poisonrec::{ActionSpace, ActionSpaceKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Matrix;

fn main() {
    let num_items = 5_000u32;
    let num_targets = 8u32;
    // Popularity: descending in item id, like the dataset twins.
    let popularity: Vec<u32> = (0..num_items).map(|i| num_items - i).collect();

    println!(
        "catalog: |I| = {num_items}, |I_t| = {num_targets}, flat search space per click = {}",
        num_items + num_targets
    );
    println!(
        "{:<14} {:>10} {:>16} {:>18}",
        "design", "extra emb", "target-hit rate", "decisions / click"
    );

    for kind in ActionSpaceKind::ALL {
        let space = ActionSpace::build(kind, num_items, num_targets, &popularity, 7);
        let mut rng = StdRng::seed_from_u64(1);
        // Zero embeddings = untrained policy: every decision is uniform.
        let emb = Matrix::zeros(space.table_rows(), 16);
        let d = vec![0.0f32; 16];

        let draws = 4_000;
        let mut target_hits = 0usize;
        let mut decisions = 0usize;
        for _ in 0..draws {
            let (item, trail) = space.sample(&d, &emb, &mut rng);
            if item >= num_items {
                target_hits += 1;
            }
            decisions += trail.len();
        }
        println!(
            "{:<14} {:>10} {:>15.1}% {:>18.1}",
            kind.name(),
            space.extra_rows(),
            100.0 * target_hits as f64 / draws as f64,
            decisions as f64 / draws as f64
        );
    }

    println!(
        "\nThe priori-knowledge root split lifts the chance of sampling a target \
         from {:.2}% to ~50%,\nand the hierarchical structure replaces one \
         {}-way softmax with ~{} binary decisions.",
        100.0 * f64::from(num_targets) / f64::from(num_items + num_targets),
        num_items + num_targets,
        (f64::from(num_items)).log2().ceil() as u32 + 1
    );
}
