//! The paper's published numbers, embedded for automated
//! shape-comparison (EXPERIMENTS.md). Source: Table III of Song et al.,
//! ICDE 2020.

/// Method order of Table III rows.
pub const METHODS: [&str; 7] = [
    "Random",
    "Popular",
    "Middle",
    "PowerItem",
    "ConsLOP",
    "AppGrad",
    "PoisonRec",
];

/// Ranker order of Table III columns.
pub const RANKERS: [&str; 8] = [
    "ItemPop",
    "CoVisitation",
    "PMF",
    "BPR",
    "NeuMF",
    "AutoRec",
    "GRU4Rec",
    "NGCF",
];

/// Dataset order of Table III blocks.
pub const DATASETS: [&str; 4] = ["Steam", "MovieLens", "Phone", "Clothing"];

/// `TABLE3[dataset][method][ranker]` = RecNum reported by the paper.
pub const TABLE3: [[[u32; 8]; 7]; 4] = [
    // Steam
    [
        [7, 278, 653, 114, 1_362, 667, 783, 2_203],   // Random
        [6, 1_895, 541, 106, 599, 738, 1_331, 1_093], // Popular
        [2, 530, 609, 116, 449, 643, 1_347, 798],     // Middle
        [6, 1_794, 534, 107, 588, 661, 1_401, 852],   // PowerItem
        [8, 4_715, 633, 121, 648, 683, 2_401, 1_699], // ConsLOP
        [5_421, 135, 686, 122, 2_914, 1_256, 5_052, 8_094], // AppGrad
        [6_496, 10_917, 1_211, 163, 4_994, 1_643, 24_319, 25_013], // PoisonRec
    ],
    // MovieLens
    [
        [0, 492, 2_282, 2_012, 412, 11_117, 236, 6],
        [0, 1_420, 4_237, 1_927, 10, 10_471, 1_367, 13_015],
        [0, 120, 2_415, 2_055, 10, 10_896, 282, 12],
        [0, 1_136, 4_286, 1_972, 545, 10_691, 1_264, 11_230],
        [0, 2_162, 4_246, 1_624, 2, 11_578, 714, 11_493],
        [0, 118, 3_580, 2_044, 2_604, 12_124, 4_372, 24],
        [0, 1_552, 7_050, 2_442, 2_742, 12_472, 18_525, 21_577],
    ],
    // Phone
    [
        [2_020, 464, 10_432, 4_282, 4_794, 2_822, 2_826, 8_784],
        [2_409, 2_368, 9_939, 3_846, 1_290, 3_885, 2_454, 8_048],
        [4_946, 208, 9_050, 3_565, 5_981, 2_627, 3_699, 9_552],
        [2_358, 1_824, 10_880, 3_779, 1_978, 3_046, 944, 7_408],
        [2_074, 6_234, 10_787, 4_099, 1_648, 4_694, 2_858, 9_136],
        [61_792, 131, 11_238, 4_187, 26_800, 4_700, 4_072, 10_852],
        [82_032, 5_683, 12_195, 4_530, 28_646, 4_873, 8_513, 12_324],
    ],
    // Clothing
    [
        [54_820, 413, 1_848, 2_827, 4_656, 11_270, 7_786, 7_376],
        [53_265, 1_262, 1_704, 2_803, 2_424, 12_032, 11_827, 9_468],
        [61_156, 125, 1_699, 3_077, 4_733, 9_768, 12_005, 5_672],
        [57_508, 686, 1_810, 2_678, 2_525, 11_664, 7_234, 8_592],
        [52_921, 3_312, 1_814, 2_842, 2_294, 11_981, 15_490, 7_524],
        [180_432, 62, 3_216, 3_816, 8_808, 13_472, 13_424, 11_090],
        [218_275, 2_239, 3_363, 4_656, 12_592, 14_245, 22_013, 14_391],
    ],
];

/// The paper's Table III column for `(dataset, ranker)`, in
/// [`METHODS`] order; `None` for unknown names.
pub fn paper_cell(dataset: &str, ranker: &str) -> Option<Vec<u32>> {
    let d = DATASETS.iter().position(|&x| x == dataset)?;
    let r = RANKERS.iter().position(|&x| x == ranker)?;
    Some(
        METHODS
            .iter()
            .enumerate()
            .map(|(m, _)| TABLE3[d][m][r])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_lookup_matches_table() {
        // Steam / CoVisitation column: Random 278 … PoisonRec 10,917.
        let cell = paper_cell("Steam", "CoVisitation").expect("known cell");
        assert_eq!(cell, vec![278, 1_895, 530, 1_794, 4_715, 135, 10_917]);
        assert!(paper_cell("Steam", "Nope").is_none());
    }

    #[test]
    fn poisonrec_wins_most_paper_cells() {
        // Sanity on the embedded data itself: in the paper PoisonRec is
        // the best method in the large majority of the 32 cells.
        let mut wins = 0;
        let mut cells = 0;
        for d in DATASETS {
            for r in RANKERS {
                let cell = paper_cell(d, r).expect("cell");
                cells += 1;
                let best = *cell.iter().max().expect("non-empty");
                if best > 0 && cell[6] == best {
                    wins += 1;
                }
            }
        }
        assert_eq!(cells, 32);
        assert!(wins >= 26, "PoisonRec wins {wins}/32 in the embedded table");
    }

    #[test]
    fn movielens_itempop_row_is_zero() {
        for row in &TABLE3[1] {
            assert_eq!(row[0], 0);
        }
    }
}
