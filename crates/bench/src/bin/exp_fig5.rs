//! E3 — Figure 5: ratio of clicks on the target set `I_t` to total
//! clicks in the strategies PoisonRec (BCBT-Popular) learns on each
//! recommendation algorithm, on the Steam twin.
//!
//! Expected shape: ratio ≈ 1.0 on ItemPop and NeuMF (clicking targets
//! only is already optimal there), > 0.2 on the rest.
//! Regenerates `results/fig5.{csv,md}`.

use analysis::{write_text, Table};
use bench::{run_parallel, ExpArgs};
use datasets::PaperDataset;
use poisonrec::ActionSpaceKind;
use recsys::rankers::RankerKind;

fn main() {
    let args = ExpArgs::parse();
    let rankers = args.ranker_list();

    let mut jobs: Vec<Box<dyn FnOnce() -> (RankerKind, f64) + Send>> = Vec::new();
    for &ranker in &rankers {
        let args = args.clone();
        jobs.push(Box::new(move || {
            let system = args.build_system(PaperDataset::Steam, ranker);
            let trainer = args.train_poisonrec(&system, ActionSpaceKind::BcbtPopular, 5);
            // Ratio of the converged policy: average the final quarter
            // of training (early exploration would bias it to ~0.5).
            let hist = trainer.history();
            let tail = &hist[hist.len().saturating_sub(hist.len() / 4 + 1)..];
            let ratio =
                tail.iter().map(|s| s.target_click_ratio).sum::<f64>() / tail.len().max(1) as f64;
            (ranker, ratio)
        }));
    }
    let results = run_parallel(args.threads, jobs);

    let mut table = Table::new(["ranker", "target_click_ratio"]);
    for (ranker, ratio) in &results {
        println!("{:<14} {:.3}", ranker.name(), ratio);
        table.push([ranker.name().to_string(), format!("{ratio:.3}")]);
    }
    table
        .write_csv(args.out_dir.join("fig5.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("fig5.md"), &table.to_markdown()).expect("write md");
    println!("wrote {}", args.out_dir.join("fig5.{{csv,md}}").display());
}
