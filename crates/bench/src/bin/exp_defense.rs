//! Extension experiment — attack vs defense: how much RecNum survives
//! when the platform filters injected accounts with simple shilling
//! detectors (popularity-deviation, repetition) calibrated to a 5%
//! organic false-positive rate.
//!
//! Compares PoisonRec's learned strategy against the Popular heuristic
//! on Steam × CoVisitation and Steam × ItemPop. Writes
//! `results/defense.{csv,md}`.

use analysis::{write_text, Table};
use baselines::BaselineKind;
use bench::ExpArgs;
use datasets::PaperDataset;
use poisonrec::ActionSpaceKind;
use recsys::defense::{
    defended_rec_num, FakeUserDetector, PopularityDeviationDetector, RepetitionDetector,
};
use recsys::rankers::RankerKind;
use recsys::Trajectory;

const FPR: f64 = 0.05;

fn main() {
    let args = ExpArgs::parse();
    let mut table = Table::new([
        "ranker",
        "attack",
        "undefended",
        "popularity-filter",
        "pop detected",
        "repetition-filter",
        "rep detected",
    ]);

    for ranker in [RankerKind::CoVisitation, RankerKind::ItemPop] {
        let system = args.build_system(PaperDataset::Steam, ranker);
        let n = args.attackers;
        let t = args.trajectory;

        // The two attacks under study.
        let mut attacks: Vec<(String, Vec<Trajectory>)> = Vec::new();
        let mut popular = BaselineKind::Popular.build(args.seed);
        attacks.push(("Popular".to_string(), popular.generate(&system, n, t)));
        let trainer = args.train_poisonrec(&system, ActionSpaceKind::BcbtPopular, 21);
        attacks.push((
            "PoisonRec".to_string(),
            trainer
                .best_episode()
                .expect("trained")
                .trajectories
                .clone(),
        ));

        for (name, poison) in attacks {
            let undefended = system.inject_and_observe_seeded(&poison, 3);
            let pop_det = PopularityDeviationDetector::default();
            let (pop_recnum, pop_report) = defended_rec_num(&system, &pop_det, &poison, FPR, 3);
            let rep_det = RepetitionDetector;
            let (rep_recnum, rep_report) = defended_rec_num(&system, &rep_det, &poison, FPR, 3);
            println!(
                "{:<13} {:<10} undefended {:>5}  pop-filter {:>5} ({:>4.0}% caught)  \
                 rep-filter {:>5} ({:>4.0}% caught)",
                ranker.name(),
                name,
                undefended,
                pop_recnum,
                100.0 * pop_report.detection_rate(poison.len()),
                rep_recnum,
                100.0 * rep_report.detection_rate(poison.len()),
            );
            table.push([
                ranker.name().to_string(),
                name,
                undefended.to_string(),
                pop_recnum.to_string(),
                format!("{:.2}", pop_report.detection_rate(poison.len())),
                rep_recnum.to_string(),
                format!("{:.2}", rep_report.detection_rate(poison.len())),
            ]);
        }
    }

    table
        .write_csv(args.out_dir.join("defense.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("defense.md"), &table.to_markdown()).expect("write md");
    println!(
        "wrote {}",
        args.out_dir.join("defense.{{csv,md}}").display()
    );

    // Quick transparency note on what the detectors key on.
    let det = PopularityDeviationDetector::default();
    println!(
        "\n(popularity detector = fraction of clicks on coldest {:.0}% of items, \
         flag above organic {:.0}%-FPR quantile; repetition detector = 1 - distinct/clicks; \
         detector trait: {})",
        det.cold_percentile * 100.0,
        FPR * 100.0,
        det.name(),
    );
}
