//! E-defense — the attack × defense × ranker matrix: every selected
//! [`AttackFamily`] against every [`DefenseKind`] layer configuration,
//! in-process and **over the wire** (DESIGN.md §5j).
//!
//! Per cell the binary runs the attack through the one
//! [`poisonrec::run_attack`] loop against a victim hardened by a
//! calibrated [`DefenseStack`] — locally via [`DefendedSystem`], over
//! the wire via a [`serve::Server`] judging at `POST /feedback`
//! admission — and reports:
//!
//! * the defense's verdict ledger (admitted / flagged / rate-limited /
//!   throttled, summing to everything the attacker offered);
//! * detection **recall** (fraction of attacker trajectories rejected)
//!   and **precision** against an organic false-positive replay;
//! * **organic FPR**: the same calibrated stack replayed over the
//!   organic interaction log — the price paid by real users;
//! * RecNum-lift degradation vs the undefended (`none`) baseline cell.
//!
//! Transports mirror `exp_zoo`: `both` runs local and wire against
//! identically-built systems and asserts histories, poison, final
//! RecNum **and the verdict ledger** are bit-identical — the defense
//! judges the same trajectories in the same order on both paths.
//!
//! Environment knobs (shrunk by `scripts/ci.sh` for the smoke stage):
//! * `DEF_ATTACKS` — comma list of family names (default: all eight);
//! * `DEF_DEFENSES` — comma list of defense kinds
//!   (default `none,lof,reputation,adaptive,full`; `none` is always
//!   run first as the lift baseline);
//! * `DEF_BUDGETS` — comma list of `NxT` budgets (default `8x12`);
//! * `DEF_TRANSPORT` — `local` | `wire` | `both` (default `local`);
//! * `DEF_SHARDS` — served shard count for wire cells (default `2`);
//! * `DEF_FPR` — calibration false-positive-rate target (default
//!   `0.05`);
//! * `DEF_APPGRAD_ITERS` / `DEF_INFLUENCE_ROUNDS` — query-hungry
//!   family sizes (defaults `30` / `5`).
//!
//! With `--telemetry FILE` every finished cell lands as one
//! `defense_cell` summary (validated by `validate_jsonl --defense`).
//! `--bench-json` writes per-cell wall seconds in the `BENCH_*`
//! schema. Writes `results/defense.csv`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use baselines::{AppGradConfig, AttackFamily, ConsLopConfig, InfluenceConfig, ZooTuning};
use bench::ExpArgs;
use poisonrec::{run_attack, ActionSpaceKind, ZooConfig, ZooEvent, ZooRun};
use recsys::attack::{AttackBudget, AttackError};
use recsys::data::Dataset;
use recsys::defense::{DefendedSystem, DefenseKind, DefenseStack, VerdictCounts};
use recsys::remote::RemoteSystem;
use recsys::system::ObservableSystem;
use serve::{RecApp, Server, ServerConfig};
use telemetry::Json;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_attacks() -> Vec<AttackFamily> {
    match std::env::var("DEF_ATTACKS") {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                AttackFamily::parse(s.trim())
                    .unwrap_or_else(|| panic!("DEF_ATTACKS entry {s:?} is not a known family"))
            })
            .collect(),
        Err(_) => AttackFamily::ALL.to_vec(),
    }
}

/// Defense kinds to evaluate. `none` is forced to the front: it is the
/// undefended baseline every other kind's lift degradation is measured
/// against.
fn env_defenses() -> Vec<DefenseKind> {
    let mut kinds: Vec<DefenseKind> = match std::env::var("DEF_DEFENSES") {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                DefenseKind::parse(s.trim())
                    .unwrap_or_else(|| panic!("DEF_DEFENSES entry {s:?} is not a defense kind"))
            })
            .collect(),
        Err(_) => DefenseKind::ALL.to_vec(),
    };
    kinds.retain(|&k| k != DefenseKind::None);
    kinds.insert(0, DefenseKind::None);
    kinds
}

/// `"8x12,16x20"` → `[(8, 12), (16, 20)]`.
fn env_budgets() -> Vec<(u32, usize)> {
    let raw = std::env::var("DEF_BUDGETS").unwrap_or_else(|_| "8x12".to_string());
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            let (n, t) = s
                .trim()
                .split_once('x')
                .unwrap_or_else(|| panic!("DEF_BUDGETS entry {s:?} is not NxT"));
            (
                n.parse().unwrap_or_else(|_| panic!("bad N in {s:?}")),
                t.parse().unwrap_or_else(|_| panic!("bad T in {s:?}")),
            )
        })
        .collect()
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Transport {
    Local,
    Wire,
    Both,
}

impl Transport {
    fn parse() -> Self {
        match std::env::var("DEF_TRANSPORT").as_deref() {
            Ok("wire") => Transport::Wire,
            Ok("both") => Transport::Both,
            Ok("local") | Err(_) => Transport::Local,
            Ok(other) => panic!("DEF_TRANSPORT {other:?} is not local|wire|both"),
        }
    }
}

/// The organic price of a defense: replay every organic session of the
/// interaction log through a *fresh* stack calibrated identically to
/// the one the victim deployed, and count rejections. Computed once
/// per kind — the replay is deterministic and transport-independent.
fn organic_rejections(kind: DefenseKind, log: &Dataset, fpr: f64) -> (u64, u64) {
    let Some(mut stack) = DefenseStack::build(kind, log, fpr) else {
        return (log.num_users() as u64, 0);
    };
    let mut offered = 0u64;
    let mut rejected = 0u64;
    for user in 0..log.num_users() {
        let verdict = stack.judge(log, log.sequence(user));
        offered += 1;
        if verdict != recsys::defense::Verdict::Admit {
            rejected += 1;
        }
    }
    (offered, rejected)
}

struct Cell<'a> {
    args: &'a ExpArgs,
    dataset: datasets::PaperDataset,
    ranker: recsys::rankers::RankerKind,
    attack: AttackFamily,
    defense: DefenseKind,
    budget: AttackBudget,
    tuning: &'a ZooTuning,
    log: &'a Dataset,
    fpr: f64,
}

impl Cell<'_> {
    fn slug(&self, transport: &str) -> String {
        format!(
            "def-{}-{}-{}-n{}t{}-{transport}",
            self.attack.name().to_ascii_lowercase(),
            self.defense.label(),
            self.ranker.name().to_ascii_lowercase(),
            self.budget.fake_users,
            self.budget.clicks_per_user,
        )
    }

    fn zoo_config(&self, transport: &str) -> ZooConfig {
        let slug = self.slug(transport);
        let resume_path = self.args.resume_path(&slug);
        let checkpoint_path = resume_path.clone().or_else(|| {
            let path = self.args.checkpoint_path(&slug)?;
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("checkpoint dir");
            }
            Some(path)
        });
        ZooConfig {
            budget: self.budget,
            threads: self.args.threads.max(1),
            steps: None,
            checkpoint_every: self.args.checkpoint_every,
            checkpoint_path,
            resume: resume_path.is_some(),
            fault: self
                .args
                .fault_kill_step
                .map(|step| Arc::new(runtime::FaultPlan::new().kill_at_step(step))),
            evaluate_final: true,
        }
    }

    /// Drives the attack against `system` (undefended or hardened —
    /// the attack cannot tell: it sees only the observation API).
    fn run(
        &self,
        system: &dyn ObservableSystem,
        transport: &'static str,
    ) -> Result<ZooRun, AttackError> {
        let mut attack = self.attack.build(self.tuning, Some(self.log))?;
        let mut on_event = |_event: ZooEvent<'_>| {};
        run_attack(
            attack.as_mut(),
            system,
            &self.zoo_config(transport),
            &mut on_event,
        )
    }

    /// In-process leg: the system wrapped in [`DefendedSystem`] (or
    /// bare for `none`), judged before every shard dispatch.
    fn run_local(&self) -> (Result<ZooRun, AttackError>, VerdictCounts) {
        let system = self.args.build_system(self.dataset, self.ranker);
        match DefenseStack::build(self.defense, system.base(), self.fpr) {
            Some(stack) => {
                let defended = DefendedSystem::new(system, stack);
                let result = self.run(&defended, "local");
                (result, defended.counts())
            }
            None => {
                let result = self.run(&system, "local");
                (result, VerdictCounts::default())
            }
        }
    }

    /// Wire leg: the same stack judges inside the served admission
    /// section; the verdict ledger is read back off the server app.
    fn run_wire(&self, shards: usize) -> (Result<ZooRun, AttackError>, VerdictCounts) {
        let system = self.args.build_system(self.dataset, self.ranker);
        let stack = DefenseStack::build(self.defense, system.base(), self.fpr);
        let server_cfg = ServerConfig::builder()
            .threads(2)
            .shards(shards)
            .build()
            .expect("valid server config");
        let server =
            Server::start(RecApp::new(system, stack), server_cfg).expect("bind 127.0.0.1:0");
        let remote =
            RemoteSystem::connect(server.local_addr().to_string()).expect("connect to server");
        let result = self.run(&remote, "wire");
        let counts = server.app().defense_counts();
        drop(remote);
        server.shutdown();
        (result, counts)
    }
}

struct CellOutcome {
    attack: AttackFamily,
    ranker: recsys::rankers::RankerKind,
    defense: DefenseKind,
    n: u32,
    t: usize,
    transport: &'static str,
    result: Result<ZooRun, AttackError>,
    counts: VerdictCounts,
    recall: f64,
    precision: f64,
    organic_fpr: f64,
    undefended: Option<u32>,
    secs: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let dataset = args.dataset_list()[0];
    let attacks = env_attacks();
    let defenses = env_defenses();
    let budgets = env_budgets();
    let transport = Transport::parse();
    let shards = env_usize("DEF_SHARDS", 2);
    let fpr = env_f64("DEF_FPR", 0.05);

    let tuning = ZooTuning {
        seed: args.seed,
        poisonrec: args.poisonrec_config(ActionSpaceKind::BcbtPopular, 29),
        poisonrec_steps: args.steps,
        appgrad: AppGradConfig {
            iterations: env_usize("DEF_APPGRAD_ITERS", 30),
            ..AppGradConfig::default()
        },
        conslop: ConsLopConfig::default(),
        influence: InfluenceConfig {
            rounds: env_usize("DEF_INFLUENCE_ROUNDS", 5),
            ..InfluenceConfig::default()
        },
    };

    let sink = args.open_telemetry("defense");
    let log = dataset.generate_scaled(args.scale, args.seed);

    // Organic replay per defense kind: one fresh calibrated stack over
    // the whole organic log; shared by every cell of that kind.
    let organic: BTreeMap<&'static str, (u64, u64)> = defenses
        .iter()
        .map(|&kind| (kind.label(), organic_rejections(kind, &log, fpr)))
        .collect();

    println!(
        "defense matrix: {} attack(s) × {} defense(s) × {} ranker(s) × {} budget(s) on {} \
         (transport: {}, fpr target {fpr})",
        attacks.len(),
        defenses.len(),
        args.ranker_list().len(),
        budgets.len(),
        dataset.name(),
        match transport {
            Transport::Local => "local".to_string(),
            Transport::Wire => format!("wire, {shards} shard(s)"),
            Transport::Both => format!("both, {shards} shard(s)"),
        },
    );

    let mut outcomes: Vec<CellOutcome> = Vec::new();
    for &attack in &attacks {
        for ranker in args.ranker_list() {
            for &(n, t) in &budgets {
                // The `none` cell runs first: its final RecNum is the
                // undefended lift baseline for the row.
                let mut undefended: Option<u32> = None;
                for &defense in &defenses {
                    let budget = AttackBudget {
                        fake_users: n,
                        clicks_per_user: t,
                        observations: attack.planned_observations(&tuning) + 1,
                    };
                    let cell = Cell {
                        args: &args,
                        dataset,
                        ranker,
                        attack,
                        defense,
                        budget,
                        tuning: &tuning,
                        log: &log,
                        fpr,
                    };

                    let start = Instant::now();
                    let local = (transport != Transport::Wire).then(|| cell.run_local());
                    let wire = (transport != Transport::Local).then(|| cell.run_wire(shards));
                    let secs = start.elapsed().as_secs_f64();

                    if let (Some((local, lc)), Some((wire, wc))) = (&local, &wire) {
                        match (local, wire) {
                            (Ok(a), Ok(b)) => {
                                assert_eq!(
                                    a.history,
                                    b.history,
                                    "{attack} × {} × {} histories diverged over the wire",
                                    defense.label(),
                                    ranker.name()
                                );
                                assert_eq!(a.poison, b.poison, "{attack} poison diverged");
                                assert_eq!(
                                    a.final_rec_num, b.final_rec_num,
                                    "{attack} final RecNum diverged"
                                );
                                assert_eq!(
                                    lc,
                                    wc,
                                    "{attack} × {} verdict ledgers diverged over the wire",
                                    defense.label()
                                );
                            }
                            (Err(a), Err(b)) => assert_eq!(
                                a.to_string(),
                                b.to_string(),
                                "{attack} refusals diverged over the wire"
                            ),
                            _ => panic!("{attack}: one transport ran, the other refused"),
                        }
                    }

                    let legs: Vec<(&'static str, Result<ZooRun, AttackError>, VerdictCounts)> =
                        match (local, wire) {
                            (Some((lr, lc)), Some((wr, wc))) => {
                                vec![("local", lr, lc), ("wire", wr, wc)]
                            }
                            (Some((lr, lc)), None) => vec![("local", lr, lc)],
                            (None, Some((wr, wc))) => vec![("wire", wr, wc)],
                            (None, None) => unreachable!("one transport always runs"),
                        };

                    let (organic_offered, organic_rejected) = organic[defense.label()];
                    for (label, result, counts) in legs {
                        let offered = counts.offered();
                        let rejected = counts.rejected();
                        let recall = if offered > 0 {
                            rejected as f64 / offered as f64
                        } else {
                            0.0
                        };
                        // Precision over the mixed stream: every
                        // attack-cell rejection is a true positive,
                        // every organic-replay rejection a false one.
                        let precision = if rejected + organic_rejected > 0 {
                            rejected as f64 / (rejected + organic_rejected) as f64
                        } else {
                            1.0
                        };
                        let organic_fpr = if organic_offered > 0 {
                            organic_rejected as f64 / organic_offered as f64
                        } else {
                            0.0
                        };
                        if defense == DefenseKind::None {
                            if let Ok(run) = &result {
                                undefended = run.final_rec_num;
                            }
                        }
                        if let (Some(sink), Ok(run)) = (sink.as_ref(), &result) {
                            let mut json = Json::obj()
                                .field("type", "defense_cell")
                                .field("attack", attack.name())
                                .field("defense", defense.label())
                                .field("ranker", ranker.name())
                                .field("transport", label)
                                .field("n", u64::from(n))
                                .field("t", t as u64)
                                .field("offered", offered)
                                .field("admitted", counts.admitted)
                                .field("flagged", counts.flagged)
                                .field("rate_limited", counts.rate_limited)
                                .field("throttled", counts.throttled)
                                .field("recall", recall)
                                .field("precision", precision)
                                .field("organic_fpr", organic_fpr);
                            if let Some(rec) = run.final_rec_num {
                                json = json.field("final_rec_num", u64::from(rec));
                            }
                            if let Some(base) = undefended {
                                json = json.field("undefended_rec_num", u64::from(base));
                            }
                            sink.emit(&json).expect("telemetry write");
                        }
                        match &result {
                            Ok(run) => {
                                let rec = run.final_rec_num.unwrap_or(0);
                                let degraded = match undefended {
                                    Some(base) if base > 0 => {
                                        (f64::from(base) - f64::from(rec)) / f64::from(base)
                                    }
                                    _ => 0.0,
                                };
                                println!(
                                    "  {:<10} {:<10} {:<12} n={n:<3} t={t:<3} [{label}] \
                                     RecNum {rec:>3} (undef {}) lift-degr {:>5.1}%  \
                                     recall {:>5.1}%  org-FPR {:>4.1}%  ({secs:.2}s)",
                                    attack.name(),
                                    defense.label(),
                                    ranker.name(),
                                    undefended.map_or("-".into(), |r| r.to_string()),
                                    100.0 * degraded,
                                    100.0 * recall,
                                    100.0 * organic_fpr,
                                );
                            }
                            Err(err) => println!(
                                "  {:<10} {:<10} {:<12} n={n:<3} t={t:<3} [{label}] refused: {err}",
                                attack.name(),
                                defense.label(),
                                ranker.name(),
                            ),
                        }
                        outcomes.push(CellOutcome {
                            attack,
                            ranker,
                            defense,
                            n,
                            t,
                            transport: label,
                            result,
                            counts,
                            recall,
                            precision,
                            organic_fpr,
                            undefended,
                            secs,
                        });
                    }
                }
            }
        }
    }

    // ---- CSV artifact ---------------------------------------------------
    std::fs::create_dir_all(&args.out_dir).expect("output dir");
    let csv_path = args.out_dir.join("defense.csv");
    let mut csv = String::from(
        "attack,ranker,defense,n,t,transport,offered,admitted,flagged,rate_limited,\
         throttled,recall,precision,organic_fpr,final_rec_num,undefended_rec_num,\
         lift_degradation,status,secs\n",
    );
    for cell in &outcomes {
        let (rec, status) = match &cell.result {
            Ok(run) => (
                run.final_rec_num.map_or(String::new(), |r| r.to_string()),
                "ok".to_string(),
            ),
            Err(err) => (
                String::new(),
                format!("refused: {}", err.to_string().replace(',', ";")),
            ),
        };
        let degraded = match (cell.undefended, &cell.result) {
            (Some(base), Ok(run)) if base > 0 => format!(
                "{:.4}",
                (f64::from(base) - f64::from(run.final_rec_num.unwrap_or(0))) / f64::from(base)
            ),
            _ => String::new(),
        };
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{rec},{},{degraded},{status},{:.4}\n",
            cell.attack.name(),
            cell.ranker.name(),
            cell.defense.label(),
            cell.n,
            cell.t,
            cell.transport,
            cell.counts.offered(),
            cell.counts.admitted,
            cell.counts.flagged,
            cell.counts.rate_limited,
            cell.counts.throttled,
            cell.recall,
            cell.precision,
            cell.organic_fpr,
            cell.undefended.map_or(String::new(), |r| r.to_string()),
            cell.secs
        ));
    }
    std::fs::write(&csv_path, csv).expect("write defense.csv");
    println!("defense matrix -> {}", csv_path.display());

    // ---- Bench snapshot -------------------------------------------------
    let metrics: Vec<(String, f64)> = outcomes
        .iter()
        .map(|cell| {
            (
                format!(
                    "defense/{}/{}/{}/n{}t{}/secs",
                    cell.attack.name(),
                    cell.defense.label(),
                    cell.ranker.name(),
                    cell.n,
                    cell.t
                ),
                cell.secs,
            )
        })
        .collect();
    args.write_bench_json("defense", &metrics, &tensor::OpProfile::default());

    let refused = outcomes.iter().filter(|c| c.result.is_err()).count();
    println!(
        "defense done: {} cell(s), {refused} refusal(s), {} transport",
        outcomes.len(),
        match transport {
            Transport::Local => "local",
            Transport::Wire => "wire",
            Transport::Both => "both (bit-identity + ledger asserted)",
        }
    );
}
