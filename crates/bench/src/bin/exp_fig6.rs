//! E4 — Figure 6: t-SNE visualization of the learned item-id
//! embeddings with the items clicked by PoisonRec's learned strategy
//! circled, per recommendation algorithm, on the Steam twin.
//!
//! As in the paper, algorithms without their own item embeddings
//! (ItemPop, CoVisitation, AutoRec) reuse PMF's. Items are subsampled
//! for t-SNE speed; every clicked item and every target is always kept.
//! Regenerates `results/fig6_<ranker>.csv` with columns
//! `item,x,y,popularity,is_target,is_clicked`.

use std::collections::HashSet;

use analysis::{tsne_2d, Table, TsneConfig};
use bench::{run_parallel, ExpArgs};
use datasets::PaperDataset;
use poisonrec::ActionSpaceKind;
use recsys::data::ItemId;
use recsys::rankers::RankerKind;

/// Items fed to t-SNE (clicked + targets always included).
const TSNE_ITEMS: usize = 600;

fn main() {
    let args = ExpArgs::parse();
    let rankers = args.ranker_list();

    // PMF embeddings double for the embedding-less algorithms.
    let pmf_embeddings = {
        let system = args.build_system(PaperDataset::Steam, RankerKind::Pmf);
        let data = PaperDataset::Steam.generate_scaled(args.scale, args.seed);
        let view = recsys::data::LogView::clean(&data);
        let mut ranker = RankerKind::Pmf.build(&view, 32);
        ranker.fit(&view, args.seed);
        drop(system);
        ranker.item_embeddings().expect("PMF has item embeddings")
    };

    let mut jobs: Vec<Box<dyn FnOnce() -> (RankerKind, Table) + Send>> = Vec::new();
    for &ranker in &rankers {
        let args = args.clone();
        let pmf_embeddings = pmf_embeddings.clone();
        jobs.push(Box::new(move || {
            let system = args.build_system(PaperDataset::Steam, ranker);
            let info = system.public_info();
            let trainer = args.train_poisonrec(&system, ActionSpaceKind::BcbtPopular, 7);
            let clicked: HashSet<ItemId> = trainer
                .best_episode()
                .map(|ep| ep.trajectories.iter().flatten().copied().collect())
                .unwrap_or_default();

            // The fitted clean ranker's embeddings; PMF's as fallback.
            let data = PaperDataset::Steam.generate_scaled(args.scale, args.seed);
            let view = recsys::data::LogView::clean(&data);
            let mut fitted = ranker.build(&view, 32);
            fitted.fit(&view, args.seed);
            let emb = fitted.item_embeddings().unwrap_or(pmf_embeddings);

            // Subsample: targets + clicked + popularity-stratified rest.
            let catalog = info.num_items + info.target_items.len() as u32;
            let mut keep: Vec<ItemId> = (info.num_items..catalog).collect();
            keep.extend(clicked.iter().copied().filter(|&i| i < info.num_items));
            let stride = (info.num_items as usize / TSNE_ITEMS.max(1)).max(1);
            for i in (0..info.num_items).step_by(stride) {
                keep.push(i);
            }
            keep.sort_unstable();
            keep.dedup();

            let d = emb.cols();
            let mut flat = Vec::with_capacity(keep.len() * d);
            for &i in &keep {
                flat.extend_from_slice(emb.row_slice(i as usize));
            }
            let coords = tsne_2d(
                &flat,
                d,
                &TsneConfig {
                    iterations: 200,
                    seed: args.seed,
                    ..Default::default()
                },
            );

            let mut table = Table::new(["item", "x", "y", "popularity", "is_target", "is_clicked"]);
            for (&item, &(x, y)) in keep.iter().zip(&coords) {
                table.push([
                    item.to_string(),
                    format!("{x:.4}"),
                    format!("{y:.4}"),
                    info.popularity[item as usize].to_string(),
                    u8::from(item >= info.num_items).to_string(),
                    u8::from(clicked.contains(&item)).to_string(),
                ]);
            }
            (ranker, table)
        }));
    }

    for (ranker, table) in run_parallel(args.threads, jobs) {
        let path = args
            .out_dir
            .join(format!("fig6_{}.csv", ranker.name().to_lowercase()));
        table.write_csv(&path).expect("write csv");
        println!("wrote {} ({} items)", path.display(), table.num_rows());
    }
}
