//! E-zoo — the attack-zoo grid: every registered [`AttackFamily`]
//! against every selected ranker at every `N × T` budget, all driven
//! by the one [`poisonrec::run_attack`] loop (DESIGN.md §5h).
//!
//! Per cell the binary reports steps run, observations spent (counted
//! at the guard boundary), the final RecNum of the crafted poison, and
//! wall seconds; cells an attack cannot run (e.g. a log-requiring
//! family without the log) are recorded as typed refusals, never
//! panics. Checkpointing, resume, and scripted faults ride the shared
//! `ExpArgs` flags, so CI can kill a zoo run mid-cell and prove the
//! resumed grid is bit-identical.
//!
//! Transports: `local` runs attacks in-process; `wire` serves each
//! cell's system on 127.0.0.1 via [`serve::Server`] and attacks it
//! through [`recsys::RemoteSystem`] over a real socket; `both` runs
//! the two against identically-built systems and asserts the
//! histories, poison, and final RecNum are **bit-identical**.
//!
//! Environment knobs (the grid is env-tuned so `scripts/ci.sh` can
//! shrink it):
//! * `ZOO_ATTACKS` — comma list of family names (default: all eight);
//! * `ZOO_BUDGETS` — comma list of `NxT` budgets (default `8x12`);
//! * `ZOO_TRANSPORT` — `local` | `wire` | `both` (default `local`);
//! * `ZOO_SHARDS` — served shard count for wire cells (default `2`);
//! * `ZOO_APPGRAD_ITERS` / `ZOO_INFLUENCE_ROUNDS` — query-hungry
//!   family sizes (defaults `30` / `5`).
//!
//! With `--telemetry FILE` every step lands as a `zoo_step` event and
//! every finished cell as a `zoo_cell` summary (validated by
//! `validate_jsonl --zoo`). `--bench-json` writes per-cell wall
//! seconds in the `BENCH_*` schema.

use std::sync::Arc;
use std::time::Instant;

use baselines::{AppGradConfig, AttackFamily, ConsLopConfig, InfluenceConfig, ZooTuning};
use bench::ExpArgs;
use poisonrec::{run_attack, ActionSpaceKind, ZooConfig, ZooEvent, ZooRun};
use recsys::attack::{AttackBudget, AttackError};
use recsys::remote::RemoteSystem;
use recsys::system::ObservableSystem;
use serve::{RecApp, Server, ServerConfig};
use telemetry::{Json, JsonlSink};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_attacks() -> Vec<AttackFamily> {
    match std::env::var("ZOO_ATTACKS") {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                AttackFamily::parse(s.trim())
                    .unwrap_or_else(|| panic!("ZOO_ATTACKS entry {s:?} is not a known family"))
            })
            .collect(),
        Err(_) => AttackFamily::ALL.to_vec(),
    }
}

/// `"8x12,16x20"` → `[(8, 12), (16, 20)]`.
fn env_budgets() -> Vec<(u32, usize)> {
    let raw = std::env::var("ZOO_BUDGETS").unwrap_or_else(|_| "8x12".to_string());
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            let (n, t) = s
                .trim()
                .split_once('x')
                .unwrap_or_else(|| panic!("ZOO_BUDGETS entry {s:?} is not NxT"));
            (
                n.parse().unwrap_or_else(|_| panic!("bad N in {s:?}")),
                t.parse().unwrap_or_else(|_| panic!("bad T in {s:?}")),
            )
        })
        .collect()
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Transport {
    Local,
    Wire,
    Both,
}

impl Transport {
    fn parse() -> Self {
        match std::env::var("ZOO_TRANSPORT").as_deref() {
            Ok("wire") => Transport::Wire,
            Ok("both") => Transport::Both,
            Ok("local") | Err(_) => Transport::Local,
            Ok(other) => panic!("ZOO_TRANSPORT {other:?} is not local|wire|both"),
        }
    }
}

struct CellOutcome {
    attack: AttackFamily,
    ranker: recsys::rankers::RankerKind,
    n: u32,
    t: usize,
    transport: &'static str,
    result: Result<ZooRun, AttackError>,
    secs: f64,
}

struct Cell<'a> {
    args: &'a ExpArgs,
    ranker: recsys::rankers::RankerKind,
    attack: AttackFamily,
    budget: AttackBudget,
    tuning: &'a ZooTuning,
    sink: Option<&'a Arc<JsonlSink>>,
}

impl Cell<'_> {
    fn slug(&self, transport: &str) -> String {
        format!(
            "{}-{}-n{}t{}-{transport}",
            self.attack.name().to_ascii_lowercase(),
            self.ranker.name().to_ascii_lowercase(),
            self.budget.fake_users,
            self.budget.clicks_per_user,
        )
    }

    fn zoo_config(&self, transport: &str) -> ZooConfig {
        let slug = self.slug(transport);
        let resume_path = self.args.resume_path(&slug);
        let checkpoint_path = resume_path.clone().or_else(|| {
            let path = self.args.checkpoint_path(&slug)?;
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("checkpoint dir");
            }
            Some(path)
        });
        ZooConfig {
            budget: self.budget,
            threads: self.args.threads.max(1),
            steps: None,
            checkpoint_every: self.args.checkpoint_every,
            checkpoint_path,
            resume: resume_path.is_some(),
            fault: self
                .args
                .fault_kill_step
                .map(|step| Arc::new(runtime::FaultPlan::new().kill_at_step(step))),
            evaluate_final: true,
        }
    }

    /// Runs the cell against `system`, streaming telemetry; the log is
    /// the attacker's prior knowledge (always the locally generated
    /// dataset, even in wire mode — the wire discloses only
    /// `PublicInfo`).
    fn run(
        &self,
        system: &dyn ObservableSystem,
        log: &recsys::data::Dataset,
        transport: &'static str,
    ) -> Result<ZooRun, AttackError> {
        let mut attack = self.attack.build(self.tuning, Some(log))?;
        let labels = |json: Json| {
            json.field("attack", self.attack.name())
                .field("ranker", self.ranker.name())
                .field("n", u64::from(self.budget.fake_users))
                .field("t", self.budget.clicks_per_user as u64)
                .field("transport", transport)
        };
        let mut on_event = |event: ZooEvent<'_>| {
            let Some(sink) = self.sink else { return };
            let json = match event {
                ZooEvent::Step(stats) => {
                    let mut json = labels(Json::obj().field("type", "zoo_step"))
                        .field("step", stats.step as u64)
                        .field("observations", stats.observations);
                    if let Some(reward) = stats.reward {
                        json = json.field("reward", f64::from(reward));
                    }
                    if let Some(best) = stats.best_reward {
                        json = json.field("best_reward", f64::from(best));
                    }
                    json
                }
                ZooEvent::Checkpoint { step, bytes } => {
                    labels(Json::obj().field("type", "zoo_checkpoint"))
                        .field("step", step as u64)
                        .field("bytes", bytes)
                }
                ZooEvent::Resumed { step } => {
                    labels(Json::obj().field("type", "zoo_resumed")).field("step", step as u64)
                }
            };
            sink.emit(&json).expect("telemetry write");
        };
        let run = run_attack(
            attack.as_mut(),
            system,
            &self.zoo_config(transport),
            &mut on_event,
        )?;
        if let Some(sink) = self.sink {
            let mut json = labels(Json::obj().field("type", "zoo_cell"))
                .field("steps", run.history.len() as u64)
                .field("observations", run.usage.observations)
                .field("budget_observations", self.budget.observations)
                .field("peak_fake_users", run.usage.peak_fake_users)
                .field("peak_clicks_per_user", run.usage.peak_clicks_per_user);
            if let Some(rec_num) = run.final_rec_num {
                json = json.field("final_rec_num", u64::from(rec_num));
            }
            sink.emit(&json).expect("telemetry write");
        }
        Ok(run)
    }
}

fn main() {
    let args = ExpArgs::parse();
    let dataset = args.dataset_list()[0];
    let attacks = env_attacks();
    let budgets = env_budgets();
    let transport = Transport::parse();
    let shards = env_usize("ZOO_SHARDS", 2);

    let tuning = ZooTuning {
        seed: args.seed,
        poisonrec: args.poisonrec_config(ActionSpaceKind::BcbtPopular, 23),
        poisonrec_steps: args.steps,
        appgrad: AppGradConfig {
            iterations: env_usize("ZOO_APPGRAD_ITERS", 30),
            ..AppGradConfig::default()
        },
        conslop: ConsLopConfig::default(),
        influence: InfluenceConfig {
            rounds: env_usize("ZOO_INFLUENCE_ROUNDS", 5),
            ..InfluenceConfig::default()
        },
    };

    let sink = args.open_telemetry("zoo");
    let transport_desc = match transport {
        Transport::Local => "local".to_string(),
        Transport::Wire => format!("wire, {shards} shard(s)"),
        Transport::Both => format!("both, {shards} shard(s)"),
    };
    println!(
        "zoo grid: {} attack(s) × {} ranker(s) × {} budget(s) on {} (transport: {transport_desc})",
        attacks.len(),
        args.ranker_list().len(),
        budgets.len(),
        dataset.name(),
    );

    let mut outcomes: Vec<CellOutcome> = Vec::new();
    for &attack in &attacks {
        for ranker in args.ranker_list() {
            for &(n, t) in &budgets {
                let budget = AttackBudget {
                    fake_users: n,
                    clicks_per_user: t,
                    observations: attack.planned_observations(&tuning) + 1,
                };
                let cell = Cell {
                    args: &args,
                    ranker,
                    attack,
                    budget,
                    tuning: &tuning,
                    sink: sink.as_ref(),
                };
                let log = dataset.generate_scaled(args.scale, args.seed);

                let start = Instant::now();
                let local = (transport != Transport::Wire).then(|| {
                    let system = cell.args.build_system(dataset, ranker);
                    cell.run(&system, &log, "local")
                });
                let wire = (transport != Transport::Local).then(|| {
                    let system = cell.args.build_system(dataset, ranker);
                    let server_cfg = ServerConfig::builder()
                        .threads(2)
                        .shards(shards)
                        .build()
                        .expect("valid server config");
                    let server = Server::start(RecApp::new(system, None), server_cfg)
                        .expect("bind 127.0.0.1:0");
                    let remote = RemoteSystem::connect(server.local_addr().to_string())
                        .expect("connect to served system");
                    let result = cell.run(&remote, &log, "wire");
                    drop(remote);
                    server.shutdown();
                    result
                });
                let secs = start.elapsed().as_secs_f64();

                if let (Some(local), Some(wire)) = (&local, &wire) {
                    match (local, wire) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(
                                a.history,
                                b.history,
                                "{attack} × {} histories diverged over the wire",
                                ranker.name()
                            );
                            assert_eq!(a.poison, b.poison, "{attack} poison diverged");
                            assert_eq!(
                                a.final_rec_num, b.final_rec_num,
                                "{attack} final RecNum diverged"
                            );
                        }
                        (Err(a), Err(b)) => assert_eq!(
                            a.to_string(),
                            b.to_string(),
                            "{attack} refusals diverged over the wire"
                        ),
                        _ => panic!("{attack}: one transport ran, the other refused"),
                    }
                }

                let (label, result): (&'static str, _) = match (local, wire) {
                    (_, Some(result)) if transport != Transport::Local => ("wire", result),
                    (Some(result), _) => ("local", result),
                    _ => unreachable!("at least one transport always runs"),
                };
                match &result {
                    Ok(run) => println!(
                        "  {:<10} {:<12} n={n:<3} t={t:<3} [{label}] steps {:>3}  obs {:>4}  RecNum {}  ({secs:.2}s)",
                        attack.name(),
                        ranker.name(),
                        run.history.len(),
                        run.usage.observations,
                        run.final_rec_num.map_or("-".into(), |r| r.to_string()),
                    ),
                    Err(err) => println!(
                        "  {:<10} {:<12} n={n:<3} t={t:<3} [{label}] refused: {err}",
                        attack.name(),
                        ranker.name(),
                    ),
                }
                outcomes.push(CellOutcome {
                    attack,
                    ranker,
                    n,
                    t,
                    transport: label,
                    result,
                    secs,
                });
            }
        }
    }

    // ---- CSV artifact ---------------------------------------------------
    std::fs::create_dir_all(&args.out_dir).expect("output dir");
    let csv_path = args.out_dir.join("zoo.csv");
    let mut csv =
        String::from("attack,ranker,n,t,transport,steps,observations,final_rec_num,status,secs\n");
    for cell in &outcomes {
        let (steps, obs, rec, status) = match &cell.result {
            Ok(run) => (
                run.history.len().to_string(),
                run.usage.observations.to_string(),
                run.final_rec_num.map_or(String::new(), |r| r.to_string()),
                "ok".to_string(),
            ),
            Err(err) => (
                String::new(),
                String::new(),
                String::new(),
                format!("refused: {}", err.to_string().replace(',', ";")),
            ),
        };
        csv.push_str(&format!(
            "{},{},{},{},{},{steps},{obs},{rec},{status},{:.4}\n",
            cell.attack.name(),
            cell.ranker.name(),
            cell.n,
            cell.t,
            cell.transport,
            cell.secs
        ));
    }
    std::fs::write(&csv_path, csv).expect("write zoo.csv");
    println!("zoo grid -> {}", csv_path.display());

    // ---- Bench snapshot -------------------------------------------------
    let metrics: Vec<(String, f64)> = outcomes
        .iter()
        .map(|cell| {
            (
                format!(
                    "zoo/{}/{}/n{}t{}/secs",
                    cell.attack.name(),
                    cell.ranker.name(),
                    cell.n,
                    cell.t
                ),
                cell.secs,
            )
        })
        .collect();
    args.write_bench_json("zoo", &metrics, &tensor::OpProfile::default());

    let refused = outcomes.iter().filter(|c| c.result.is_err()).count();
    println!(
        "zoo done: {} cell(s), {refused} refusal(s), {} transport",
        outcomes.len(),
        match transport {
            Transport::Local => "local",
            Transport::Wire => "wire",
            Transport::Both => "both (bit-identity asserted)",
        }
    );
}
