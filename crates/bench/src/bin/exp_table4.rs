//! E6 — Table IV: among the four heuristic attacks (Random, Popular,
//! Middle, PowerItem), how often each achieves the best RecNum, per
//! dataset and overall. The ItemPop/MovieLens cell is excluded exactly
//! as in the paper (all methods score 0 there).
//!
//! Consumes `results/table3.csv` (run `exp_table3` first) and
//! regenerates `results/table4.{csv,md}`.
//!
//! Expected shape: no heuristic dominates; Popular and Middle win most
//! often.

use std::collections::HashMap;

use analysis::{write_text, Table};
use bench::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    let path = args.out_dir.join("table3.csv");
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} (run exp_table3 first): {e}", path.display()));

    let mut lines = raw.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let heuristics = ["Random", "Popular", "Middle", "PowerItem"];
    let col = |name: &str| -> usize {
        header
            .iter()
            .position(|&h| h == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let (ds_col, rk_col) = (col("dataset"), col("ranker"));
    let h_cols: Vec<usize> = heuristics.iter().map(|h| col(h)).collect();

    // wins[dataset][heuristic] = count
    let mut wins: HashMap<String, HashMap<&str, u32>> = HashMap::new();
    let mut datasets_in_order: Vec<String> = Vec::new();
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < header.len() {
            continue;
        }
        let dataset = fields[ds_col].to_string();
        let ranker = fields[rk_col];
        // Paper: ItemPop on MovieLens excluded (all zero).
        if dataset == "MovieLens" && ranker == "ItemPop" {
            continue;
        }
        if !datasets_in_order.contains(&dataset) {
            datasets_in_order.push(dataset.clone());
        }
        let values: Vec<u32> = h_cols
            .iter()
            .map(|&c| fields[c].parse().unwrap_or(0))
            .collect();
        let best = *values.iter().max().expect("non-empty");
        // Ties award every tied method, mirroring "achieves the best".
        for (h, &v) in heuristics.iter().zip(&values) {
            if v == best {
                *wins
                    .entry(dataset.clone())
                    .or_default()
                    .entry(h)
                    .or_insert(0) += 1;
            }
        }
    }

    let mut header_row = vec!["Method".to_string()];
    header_row.extend(datasets_in_order.iter().cloned());
    header_row.push("All".to_string());
    let mut table = Table::new(header_row);
    for h in heuristics {
        let mut row = vec![h.to_string()];
        let mut total = 0;
        for d in &datasets_in_order {
            let w = wins.get(d).and_then(|m| m.get(h)).copied().unwrap_or(0);
            total += w;
            row.push(w.to_string());
        }
        row.push(total.to_string());
        table.push(row);
    }

    println!("{}", table.to_markdown());
    table
        .write_csv(args.out_dir.join("table4.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("table4.md"), &table.to_markdown()).expect("write md");
    println!("wrote {}", args.out_dir.join("table4.{{csv,md}}").display());
}
