//! E5 — Table III: RecNum of all seven attack methods (Random,
//! Popular, Middle, PowerItem, ConsLOP, AppGrad, PoisonRec) against
//! all eight rankers on all four dataset twins.
//!
//! Expected shape (paper): PoisonRec best or near-best in most cells;
//! ConsLOP the strongest non-RL method on CoVisitation; AppGrad
//! competitive on ItemPop/NeuMF but weak on order-sensitive rankers;
//! everything ~0 for ItemPop on MovieLens. Absolute values differ from
//! the paper (sampled-user RecNum on twin data); orderings are the
//! reproduction target. Regenerates `results/table3.{csv,md}`.

use analysis::{write_text, Table};
use baselines::BaselineKind;
use bench::{run_parallel, ExpArgs};
use datasets::PaperDataset;
use poisonrec::ActionSpaceKind;
use recsys::rankers::RankerKind;

struct Cell {
    dataset: PaperDataset,
    ranker: RankerKind,
    /// `(method name, RecNum)` in Table III row order.
    results: Vec<(String, u32)>,
}

fn main() {
    let args = ExpArgs::parse();
    let datasets = args.dataset_list();
    let rankers = args.ranker_list();

    let mut jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for &dataset in &datasets {
        for &ranker in &rankers {
            let args = args.clone();
            jobs.push(Box::new(move || run_cell(&args, dataset, ranker)));
        }
    }
    let cells = run_parallel(args.threads, jobs);

    let methods: Vec<String> = cells
        .first()
        .map(|c| c.results.iter().map(|(m, _)| m.clone()).collect())
        .unwrap_or_default();
    let mut header = vec!["dataset".to_string(), "ranker".to_string()];
    header.extend(methods.iter().cloned());
    let mut table = Table::new(header);
    for cell in &cells {
        let mut row = vec![
            cell.dataset.name().to_string(),
            cell.ranker.name().to_string(),
        ];
        row.extend(cell.results.iter().map(|(_, v)| v.to_string()));
        table.push(row);
    }

    println!("{}", table.to_markdown());
    table
        .write_csv(args.out_dir.join("table3.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("table3.md"), &table.to_markdown()).expect("write md");
    println!("wrote {}", args.out_dir.join("table3.{{csv,md}}").display());
}

fn run_cell(args: &ExpArgs, dataset: PaperDataset, ranker: RankerKind) -> Cell {
    let system = args.build_system(dataset, ranker);
    let n = args.attackers;
    let t = args.trajectory;
    let mut results = Vec::with_capacity(7);

    for kind in BaselineKind::ALL {
        let mut method = kind.build(args.seed ^ 0xBA5E);
        let poison = method.generate(&system, n, t);
        // Average over a few retrain seeds — single-shot attacks are
        // retraining-noise sensitive.
        let mut total = 0u32;
        const REPS: u64 = 3;
        for rep in 0..REPS {
            total += system.inject_and_observe_seeded(&poison, args.seed ^ (7000 + rep));
        }
        results.push((kind.name().to_string(), total / REPS as u32));
    }

    // PoisonRec: train, then evaluate the best strategy found.
    let trainer = args.train_poisonrec(&system, ActionSpaceKind::BcbtPopular, 9);
    let best = trainer.best_episode().expect("trained at least one step");
    let mut total = 0u32;
    const REPS: u64 = 3;
    for rep in 0..REPS {
        total += system.inject_and_observe_seeded(&best.trajectories, args.seed ^ (8000 + rep));
    }
    results.push(("PoisonRec".to_string(), total / REPS as u32));

    eprintln!(
        "[{} / {}] {}",
        dataset.name(),
        ranker.name(),
        results
            .iter()
            .map(|(m, v)| format!("{m}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    Cell {
        dataset,
        ranker,
        results,
    }
}
