//! E2 — Figure 4: attack performance (RecNum) vs training step for the
//! four action-space designs (Plain, BPlain, BCBT-Popular, BCBT-Random)
//! across the eight rankers, on the Steam twin.
//!
//! Expected shape: BCBT-Popular ≥ BPlain ≥ Plain almost everywhere;
//! BCBT-Random below BCBT-Popular; BPlain ≈ BCBT-Popular on ItemPop and
//! NeuMF. Regenerates `results/fig4_steam.csv` (one row per
//! design × ranker × step) and a per-ranker summary markdown.
//!
//! With `--telemetry run.jsonl`, also streams a run log: one manifest
//! line, then one `step` event per (ranker, design, step) with phase
//! durations and the cumulative observation count, then a closing
//! `metrics` snapshot (validated by `telemetry::validate_jsonl`).
//! With `--trace trace.json`, records a Chrome trace of the whole run
//! (trainer phases, pool jobs, system observe/retrain, op profile) —
//! open it in Perfetto or feed it to `trace_report`.

use analysis::{write_text, Table};
use bench::{run_parallel, ExpArgs};
use datasets::PaperDataset;
use poisonrec::ActionSpaceKind;
use recsys::rankers::RankerKind;

fn main() {
    let args = ExpArgs::parse();
    let rankers = args.ranker_list();
    let designs = ActionSpaceKind::ALL;
    let sink = args.open_telemetry("fig4");
    args.init_trace();

    // One job per (ranker, design): builds its own system (cells are
    // independent) and returns the training history. All cells share
    // the one telemetry sink; their step events carry ranker/design
    // labels so the interleaved log stays separable.
    let mut jobs: Vec<Box<dyn FnOnce() -> CellResult + Send>> = Vec::new();
    for &ranker in &rankers {
        for (d_idx, &design) in designs.iter().enumerate() {
            let args = args.clone();
            let sink = sink.clone();
            jobs.push(Box::new(move || {
                let system = args.build_system(PaperDataset::Steam, ranker);
                let trainer = args.train_poisonrec_logged(
                    &system,
                    design,
                    101 + d_idx as u64,
                    sink.as_ref(),
                    &[
                        ("dataset", PaperDataset::Steam.name()),
                        ("ranker", ranker.name()),
                        ("design", design.name()),
                    ],
                );
                CellResult {
                    ranker,
                    design,
                    history: trainer
                        .history()
                        .iter()
                        .map(|s| (s.step, s.mean_reward, s.max_reward))
                        .collect(),
                }
            }));
        }
    }
    let results = run_parallel(args.threads, jobs);
    if let Some(sink) = &sink {
        sink.emit_metrics_snapshot()
            .expect("telemetry metrics write");
    }
    args.finish_trace();

    let mut table = Table::new(["ranker", "design", "step", "mean_recnum", "max_recnum"]);
    for cell in &results {
        for &(step, mean, max) in &cell.history {
            table.push([
                cell.ranker.name().to_string(),
                cell.design.name().to_string(),
                step.to_string(),
                format!("{mean:.1}"),
                format!("{max:.1}"),
            ]);
        }
    }
    table
        .write_csv(args.out_dir.join("fig4_steam.csv"))
        .expect("write csv");

    // Final-performance summary (mean RecNum of the last quarter of
    // training), printed like the figure's endpoint comparison.
    let mut summary = Table::new(["ranker", "Plain", "BPlain", "BCBT-Popular", "BCBT-Random"]);
    for &ranker in &rankers {
        let mut row = vec![ranker.name().to_string()];
        for &design in &designs {
            let cell = results
                .iter()
                .find(|c| c.ranker == ranker && c.design == design)
                .expect("cell present");
            let tail = &cell.history[cell.history.len().saturating_sub(3)..];
            let final_mean: f32 =
                tail.iter().map(|&(_, m, _)| m).sum::<f32>() / tail.len().max(1) as f32;
            row.push(format!("{final_mean:.1}"));
        }
        summary.push(row);
        println!(
            "{}",
            summary.to_markdown().lines().last().unwrap_or_default()
        );
    }
    write_text(args.out_dir.join("fig4_summary.md"), &summary.to_markdown()).expect("write md");
    println!(
        "wrote {} and fig4_summary.md",
        args.out_dir.join("fig4_steam.csv").display()
    );
}

struct CellResult {
    ranker: RankerKind,
    design: ActionSpaceKind,
    history: Vec<(usize, f32, f32)>,
}
