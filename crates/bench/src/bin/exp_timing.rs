//! E1 — §IV-B timing experiment: wall-clock time of one complete
//! PoisonRec training step under the Plain vs BCBT action spaces as the
//! item-set size grows (paper: 3,000 → 30,000 items; Plain 1.93 s →
//! 15.69 s, BCBT 1.41 s → 2.33 s, i.e. >6x at 30k).
//!
//! The recommender is replaced by a constant-time stand-in reward
//! (decision count) so the measurement isolates exactly what the paper
//! measures: trajectory sampling + PPO optimization cost.
//! Regenerates `results/timing.{csv,md}`.
//!
//! A second section times *real* full steps (BPR system retrains per
//! episode) with the scoring phase on 1 thread vs `--threads`, showing
//! the observation-engine speedup and that rewards stay identical.
//! Regenerates `results/timing_threads.{csv,md}`. With
//! `--telemetry run.jsonl` the real-step runs stream per-step events
//! (labelled with their thread count) plus a closing metrics snapshot.
//! With `--trace trace.json` the run records a Chrome trace (plus the
//! per-op autodiff profile); with `--bench-json BENCH.json` it writes a
//! perf snapshot (stand-in step times, real-step phase medians, per-op
//! ns/call) that `perf_diff` can gate future changes against.

use std::sync::Arc;
use std::time::Instant;

use analysis::{write_text, Table};
use bench::ExpArgs;
use datasets::PaperDataset;
use poisonrec::{
    ActionSpace, ActionSpaceKind, PolicyConfig, PolicyNetwork, PpoConfig, PpoUpdater, StepLogger,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use recsys::rankers::RankerKind;
use telemetry::JsonlSink;

fn step_time(kind: ActionSpaceKind, num_items: u32, args: &ExpArgs, episodes: usize) -> f64 {
    let popularity: Vec<u32> = (0..num_items).map(|i| num_items - i).collect();
    let space = ActionSpace::build(kind, num_items, 8, &popularity, args.seed);
    let policy_cfg = PolicyConfig {
        dim: args.dim,
        num_attackers: args.attackers,
        trajectory_len: args.trajectory,
        init_scale: 0.1,
    };
    let mut policy = PolicyNetwork::new(policy_cfg, &space, args.seed);
    let ppo_cfg = PpoConfig {
        samples_per_step: episodes,
        batch: episodes,
        ..PpoConfig::default()
    };
    let mut updater = PpoUpdater::new(ppo_cfg, &policy);
    let mut rng = StdRng::seed_from_u64(args.seed);

    // One warm-up episode to touch all the code paths.
    let _ = policy.sample_episode(&space, &mut rng);

    let start = Instant::now();
    // Sample M episodes with a stand-in reward, then K PPO epochs —
    // one full Algorithm 1 step minus the recommender.
    let mut episodes_v = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let mut ep = policy.sample_episode(&space, &mut rng);
        // Stand-in reward must *vary* across episodes, or normalization
        // zeroes every advantage and PPO would skip its real work.
        ep.reward = (ep
            .trajectories
            .iter()
            .flatten()
            .map(|&i| u64::from(i))
            .sum::<u64>()
            % 1009) as f32;
        episodes_v.push(ep);
    }
    for _ in 0..ppo_cfg.epochs {
        let rewards: Vec<f32> = episodes_v.iter().map(|e| e.reward).collect();
        let advs = poisonrec::normalize_rewards(&rewards);
        let refs: Vec<&poisonrec::Episode> = episodes_v.iter().collect();
        updater.update_batch(&mut policy, &refs, &advs);
    }
    start.elapsed().as_secs_f64()
}

/// Times `steps` real training steps (every episode retrains a BPR
/// system) with the scoring phase capped at `threads`; returns
/// (seconds, final mean reward).
fn real_steps_time(
    args: &ExpArgs,
    threads: usize,
    steps: usize,
    sink: Option<&Arc<JsonlSink>>,
) -> (f64, f32, Vec<poisonrec::StepStats>) {
    // Size the cell so the M per-episode system retrains dominate the
    // step (that is what the thread knob parallelizes); keep the
    // policy small so sampling + PPO stay in the noise.
    let system = {
        let scaled = ExpArgs {
            scale: args.scale.max(0.12),
            eval_users: args.eval_users.max(256),
            ..args.clone()
        };
        scaled.build_system(PaperDataset::Phone, RankerKind::Bpr)
    };
    let cfg = {
        let mut cfg = args.poisonrec_config(ActionSpaceKind::BcbtPopular, 0xE1);
        cfg.policy.dim = cfg.policy.dim.min(16);
        cfg.ppo.samples_per_step = args.episodes;
        cfg.ppo.batch = args.episodes;
        cfg.threads = threads;
        cfg
    };
    // Per-thread-count slug: each lane checkpoints (and resumes)
    // independently under --checkpoint-every / --resume.
    let slug = format!("timing-t{threads}");
    let mut trainer = args.build_or_resume_trainer(cfg, &system, &slug);
    if let Some(sink) = sink {
        trainer.attach_logger(
            StepLogger::new(Arc::clone(sink))
                .label("dataset", PaperDataset::Phone.name())
                .label("ranker", RankerKind::Bpr.name())
                .label("design", ActionSpaceKind::BcbtPopular.name())
                .label("threads", threads),
        );
    }
    let start = Instant::now();
    args.drive_trainer(&mut trainer, &system, &slug, steps);
    let elapsed = start.elapsed().as_secs_f64();
    let mean = trainer.history().last().map_or(0.0, |s| s.mean_reward);
    (elapsed, mean, trainer.history().to_vec())
}

/// Median of a sample (not necessarily sorted); 0 when empty.
fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    values[values.len() / 2]
}

fn main() {
    let args = ExpArgs::parse();
    let sink = args.open_telemetry("timing");
    args.init_trace();
    let sizes = [3_000u32, 10_000, 30_000];
    let episodes = args.episodes.min(8); // timing needs few episodes
    let mut bench_metrics: Vec<(String, f64)> = Vec::new();

    let mut table = Table::new(["items", "Plain (s)", "BCBT (s)", "speedup"]);
    println!("one full training step (sample {episodes} episodes + PPO), stand-in reward");
    for &n in &sizes {
        let plain = step_time(ActionSpaceKind::Plain, n, &args, episodes);
        let bcbt = step_time(ActionSpaceKind::BcbtPopular, n, &args, episodes);
        println!(
            "|I| = {n:>6}: Plain {plain:>7.3} s   BCBT {bcbt:>7.3} s   speedup {:.1}x",
            plain / bcbt
        );
        bench_metrics.push((format!("standin/plain_{n}_secs"), plain));
        bench_metrics.push((format!("standin/bcbt_{n}_secs"), bcbt));
        table.push([
            n.to_string(),
            format!("{plain:.3}"),
            format!("{bcbt:.3}"),
            format!("{:.2}", plain / bcbt),
        ]);
    }
    table
        .write_csv(args.out_dir.join("timing.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("timing.md"), &table.to_markdown()).expect("write md");
    println!("wrote {}", args.out_dir.join("timing.{{csv,md}}").display());

    // Real steps: observation-engine scaling (BPR retrain per episode).
    let steps = args.steps.clamp(1, 3);
    println!(
        "\nreal training steps on Phone/BPR ({} episodes/step, {steps} steps):",
        args.episodes
    );
    let mut threads_table = Table::new(["threads", "time (s)", "speedup", "mean RecNum"]);
    let (base_time, base_reward, base_stats) = real_steps_time(&args, 1, steps, sink.as_ref());
    // Per-phase medians over the single-thread lane's steps: the
    // perf-baseline rows `perf_diff` gates future PRs against.
    type Pick = fn(&poisonrec::StepStats) -> f64;
    let picks: [(&str, Pick); 4] = [
        ("sample", |s| s.sample_secs),
        ("score", |s| s.score_secs),
        ("update", |s| s.update_secs),
        ("total", |s| s.sample_secs + s.score_secs + s.update_secs),
    ];
    for (name, pick) in picks {
        bench_metrics.push((
            format!("step/{name}_secs_median"),
            median(base_stats.iter().map(pick).collect()),
        ));
    }
    let mut thread_counts = vec![1usize, 2, args.threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    for threads in thread_counts {
        let (time, reward) = if threads == 1 {
            (base_time, base_reward)
        } else {
            let (time, reward, _) = real_steps_time(&args, threads, steps, sink.as_ref());
            (time, reward)
        };
        assert_eq!(
            reward, base_reward,
            "thread count changed rewards — determinism broken"
        );
        println!(
            "threads = {threads:>2}: {time:>7.3} s   speedup {:.2}x   mean RecNum {reward:.2}",
            base_time / time
        );
        threads_table.push([
            threads.to_string(),
            format!("{time:.3}"),
            format!("{:.2}", base_time / time),
            format!("{reward:.2}"),
        ]);
    }
    threads_table
        .write_csv(args.out_dir.join("timing_threads.csv"))
        .expect("write csv");
    write_text(
        args.out_dir.join("timing_threads.md"),
        &threads_table.to_markdown(),
    )
    .expect("write md");
    println!(
        "wrote {}",
        args.out_dir.join("timing_threads.{{csv,md}}").display()
    );
    if let Some(sink) = &sink {
        sink.emit_metrics_snapshot()
            .expect("telemetry metrics write");
    }
    let profile = args.finish_trace();
    args.write_bench_json("timing", &bench_metrics, &profile);
}
