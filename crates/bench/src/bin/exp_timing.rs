//! E1 — §IV-B timing experiment: wall-clock time of one complete
//! PoisonRec training step under the Plain vs BCBT action spaces as the
//! item-set size grows (paper: 3,000 → 30,000 items; Plain 1.93 s →
//! 15.69 s, BCBT 1.41 s → 2.33 s, i.e. >6x at 30k).
//!
//! The recommender is replaced by a constant-time stand-in reward
//! (decision count) so the measurement isolates exactly what the paper
//! measures: trajectory sampling + PPO optimization cost.
//! Regenerates `results/timing.{csv,md}`.

use std::time::Instant;

use analysis::{write_text, Table};
use bench::ExpArgs;
use poisonrec::{ActionSpace, ActionSpaceKind, PolicyConfig, PolicyNetwork, PpoConfig, PpoUpdater};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn step_time(kind: ActionSpaceKind, num_items: u32, args: &ExpArgs, episodes: usize) -> f64 {
    let popularity: Vec<u32> = (0..num_items).map(|i| num_items - i).collect();
    let space = ActionSpace::build(kind, num_items, 8, &popularity, args.seed);
    let policy_cfg = PolicyConfig {
        dim: args.dim,
        num_attackers: args.attackers,
        trajectory_len: args.trajectory,
        init_scale: 0.1,
    };
    let mut policy = PolicyNetwork::new(policy_cfg, &space, args.seed);
    let ppo_cfg = PpoConfig {
        samples_per_step: episodes,
        batch: episodes,
        ..PpoConfig::default()
    };
    let mut updater = PpoUpdater::new(ppo_cfg, &policy);
    let mut rng = StdRng::seed_from_u64(args.seed);

    // One warm-up episode to touch all the code paths.
    let _ = policy.sample_episode(&space, &mut rng);

    let start = Instant::now();
    // Sample M episodes with a stand-in reward, then K PPO epochs —
    // one full Algorithm 1 step minus the recommender.
    let mut episodes_v = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        let mut ep = policy.sample_episode(&space, &mut rng);
        // Stand-in reward must *vary* across episodes, or normalization
        // zeroes every advantage and PPO would skip its real work.
        ep.reward = (ep
            .trajectories
            .iter()
            .flatten()
            .map(|&i| u64::from(i))
            .sum::<u64>()
            % 1009) as f32;
        episodes_v.push(ep);
    }
    for _ in 0..ppo_cfg.epochs {
        let rewards: Vec<f32> = episodes_v.iter().map(|e| e.reward).collect();
        let advs = poisonrec::normalize_rewards(&rewards);
        let refs: Vec<&poisonrec::Episode> = episodes_v.iter().collect();
        updater.update_batch(&mut policy, &refs, &advs);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let args = ExpArgs::parse();
    let sizes = [3_000u32, 10_000, 30_000];
    let episodes = args.episodes.min(8); // timing needs few episodes

    let mut table = Table::new(["items", "Plain (s)", "BCBT (s)", "speedup"]);
    println!("one full training step (sample {episodes} episodes + PPO), stand-in reward");
    for &n in &sizes {
        let plain = step_time(ActionSpaceKind::Plain, n, &args, episodes);
        let bcbt = step_time(ActionSpaceKind::BcbtPopular, n, &args, episodes);
        println!(
            "|I| = {n:>6}: Plain {plain:>7.3} s   BCBT {bcbt:>7.3} s   speedup {:.1}x",
            plain / bcbt
        );
        table.push([
            n.to_string(),
            format!("{plain:.3}"),
            format!("{bcbt:.3}"),
            format!("{:.2}", plain / bcbt),
        ]);
    }
    table
        .write_csv(args.out_dir.join("timing.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("timing.md"), &table.to_markdown()).expect("write md");
    println!("wrote {}", args.out_dir.join("timing.{{csv,md}}").display());
}
