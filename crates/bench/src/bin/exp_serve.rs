//! E-serve — the over-the-wire attack path and serving performance.
//!
//! Three phases against an in-process [`serve::Server`] bound to an
//! OS-assigned port on 127.0.0.1 (all traffic crosses a real socket):
//!
//! 1. **Attack replay** — one fig-4 cell (Steam × first ranker ×
//!    BCBT-Popular) trained twice with identical seeds: once against
//!    the in-process [`BlackBoxSystem`], once through
//!    [`recsys::RemoteSystem`] against the served copy. The two reward
//!    histories must be **bit-identical** — the server consumes the
//!    same observation seed stream and serves through the same
//!    snapshot read path.
//! 2. **Load grid** — client-threads × k sweep of `GET /recommend`,
//!    recording p50/p95/p99 seconds-per-request (lower-is-better, per
//!    the `poisonrec-bench-v1` convention). Any non-200 fails the run.
//! 3. **Retrain under load** — read latency p99 measured idle, then
//!    again while a feedback→retrain loop churns generations. The
//!    snapshot swap is wait-free for readers, so serving must not
//!    stall; both numbers land in the snapshot for the perf gate.
//!
//! Environment knobs (`ExpArgs` covers the attack cell; the grid is
//! env-tuned so `scripts/ci.sh` can shrink it):
//! `SERVE_THREADS_GRID` (default `1,2,4`), `SERVE_K_GRID` (default
//! `1,5,10`), `SERVE_REQUESTS` per cell (default `200`),
//! `SERVE_ACCESS_LOG` (default `<out>/serve_access.jsonl`).
//!
//! With `--bench-json FILE`, writes a `poisonrec-bench-v1` snapshot;
//! `--bench-base FILE` seeds it with a prior snapshot's metrics so the
//! chained `scripts/bench_snapshot.sh` produces one cumulative file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::ExpArgs;
use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecTrainer};
use recsys::remote::{HttpClient, RemoteSystem};
use serve::{RecApp, Server, ServerConfig};
use telemetry::json::Json;
use telemetry::perf::BenchSnapshot;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_grid(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} entry {s:?} is not a number"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Sorted-latency percentile (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct LoadCell {
    threads: usize,
    k: usize,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// Hammers `GET /recommend` from `threads` persistent connections,
/// `requests` total; returns sorted per-request latencies. Panics on
/// any non-200 — the load test's correctness half.
fn run_load(addr: &str, threads: usize, k: usize, requests: usize, num_users: u32) -> Vec<f64> {
    let non_200 = AtomicU64::new(0);
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let non_200 = &non_200;
                scope.spawn(move || {
                    let mut client = HttpClient::new(addr.to_string());
                    let per_thread = requests / threads + usize::from(requests % threads > t);
                    let mut out = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let user = ((t * 7919 + i) as u32) % num_users;
                        let start = Instant::now();
                        let (status, _) = client
                            .request("GET", &format!("/recommend/{user}?k={k}"), None)
                            .expect("load request failed");
                        out.push(start.elapsed().as_secs_f64());
                        if status != 200 {
                            non_200.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    assert_eq!(
        non_200.load(Ordering::Relaxed),
        0,
        "load test saw non-200 responses"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    latencies
}

fn main() {
    let args = ExpArgs::parse();
    let ranker = args.ranker_list()[0];
    let dataset = PaperDataset::Steam;
    let design = ActionSpaceKind::BcbtPopular;

    let threads_grid = env_grid("SERVE_THREADS_GRID", &[1, 2, 4]);
    let k_grid = env_grid("SERVE_K_GRID", &[1, 5, 10]);
    let requests = env_usize("SERVE_REQUESTS", 200);
    let access_log = std::env::var("SERVE_ACCESS_LOG")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| args.out_dir.join("serve_access.jsonl"));

    // ---- Phase 1: in-process reference run ------------------------------
    println!(
        "phase 1: attack replay — {} × {} × {}, {} step(s) × {} episode(s)",
        dataset.name(),
        ranker.name(),
        design.name(),
        args.steps,
        args.episodes
    );
    let reference = args.build_system(dataset, ranker);
    let local_trainer = args.train_poisonrec(&reference, design, 11);
    let local_history: Vec<(f32, f32)> = local_trainer
        .history()
        .iter()
        .map(|s| (s.mean_reward, s.max_reward))
        .collect();

    // ---- Serve an identical system and attack it over the wire ---------
    let served_system = args.build_system(dataset, ranker);
    let num_users = served_system.base().num_users();
    // Server pool sized for the widest load cell plus the attack/retrain
    // connection: keep-alive connections pin a worker each.
    let server_threads = threads_grid.iter().copied().max().unwrap_or(1) + 2;
    let server = Server::start(
        RecApp::new(served_system, None),
        ServerConfig {
            port: 0,
            threads: server_threads,
            access_log: Some(access_log.clone()),
            fault_plan: None,
            limits: serve::Limits::default(),
        },
    )
    .expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    println!(
        "serving on {addr} ({server_threads} worker(s)) — access log: {}",
        access_log.display()
    );

    let remote = RemoteSystem::connect(addr.clone()).expect("connect to served system");
    let cfg = args.poisonrec_config(design, 11);
    let mut remote_trainer = PoisonRecTrainer::new(cfg, &remote);
    remote_trainer.train(&remote, args.steps);
    let remote_history: Vec<(f32, f32)> = remote_trainer
        .history()
        .iter()
        .map(|s| (s.mean_reward, s.max_reward))
        .collect();

    assert_eq!(
        local_history, remote_history,
        "over-the-wire attack diverged from the in-process run"
    );
    println!(
        "phase 1 OK: {} step(s) bit-identical over the socket (final mean RecNum {:.1})",
        local_history.len(),
        local_history.last().map(|&(m, _)| m).unwrap_or(0.0)
    );

    // ---- Phase 2: load grid --------------------------------------------
    println!(
        "phase 2: load grid — threads {threads_grid:?} × k {k_grid:?} × {requests} request(s)"
    );
    let mut cells: Vec<LoadCell> = Vec::new();
    for &threads in &threads_grid {
        for &k in &k_grid {
            let sorted = run_load(&addr, threads, k, requests, num_users);
            let cell = LoadCell {
                threads,
                k,
                p50: percentile(&sorted, 0.50),
                p95: percentile(&sorted, 0.95),
                p99: percentile(&sorted, 0.99),
            };
            println!(
                "  t={} k={:>3}: p50 {:.6}s  p95 {:.6}s  p99 {:.6}s",
                cell.threads, cell.k, cell.p50, cell.p95, cell.p99
            );
            cells.push(cell);
        }
    }

    // ---- Phase 3: retrain under load -----------------------------------
    println!("phase 3: read p99 idle vs during retrain churn");
    let probe_threads = 2.min(threads_grid.iter().copied().max().unwrap_or(1));
    let idle = run_load(&addr, probe_threads, 10, requests, num_users);
    let idle_p99 = percentile(&idle, 0.99);

    let stop = std::sync::atomic::AtomicBool::new(false);
    let (under_p99, retrains) = std::thread::scope(|scope| {
        let stop_ref = &stop;
        let addr_ref = addr.as_str();
        let churn = scope.spawn(move || {
            let mut client = HttpClient::new(addr_ref.to_string());
            let feedback = Json::obj().field(
                "trajectories",
                Json::Arr(vec![Json::Arr(vec![
                    Json::from(1u32),
                    Json::from(2u32),
                    Json::from(3u32),
                ])]),
            );
            let mut retrains = 0u64;
            while !stop_ref.load(Ordering::Relaxed) {
                let (status, _) = client
                    .request("POST", "/feedback", Some(&feedback))
                    .expect("churn feedback");
                assert_eq!(status, 200, "churn feedback rejected");
                let (status, _) = client
                    .request("POST", "/retrain", None)
                    .expect("churn retrain");
                assert_eq!(status, 200, "churn retrain rejected");
                retrains += 1;
            }
            retrains
        });
        let under = run_load(&addr, probe_threads, 10, requests, num_users);
        stop.store(true, Ordering::Relaxed);
        let retrains = churn.join().expect("churn thread");
        (percentile(&under, 0.99), retrains)
    });
    println!("  idle p99 {idle_p99:.6}s — during {retrains} retrain(s) p99 {under_p99:.6}s");

    // ---- Shutdown ledger ------------------------------------------------
    let final_generation = server.generation();
    let stats = server.shutdown();
    println!(
        "shutdown: accepted {} / completed {} / dropped {} (generation {final_generation})",
        stats.accepted,
        stats.completed,
        stats.dropped()
    );
    assert_eq!(stats.dropped(), 0, "graceful shutdown dropped requests");

    // ---- Bench snapshot -------------------------------------------------
    if let Some(path) = &args.bench_json {
        let mut snapshot = match &args.bench_base {
            Some(base) => {
                let text = std::fs::read_to_string(base)
                    .unwrap_or_else(|err| panic!("cannot read {}: {err}", base.display()));
                let doc = telemetry::json::parse(&text)
                    .unwrap_or_else(|err| panic!("{}: {err}", base.display()));
                BenchSnapshot::from_json(&doc)
                    .unwrap_or_else(|err| panic!("{}: {err}", base.display()))
            }
            None => BenchSnapshot::new("serve"),
        };
        for cell in &cells {
            let prefix = format!("serve/t{}/k{}", cell.threads, cell.k);
            snapshot.push(format!("{prefix}/p50_secs"), cell.p50, "s");
            snapshot.push(format!("{prefix}/p95_secs"), cell.p95, "s");
            snapshot.push(format!("{prefix}/p99_secs"), cell.p99, "s");
        }
        snapshot.push("serve/retrain_idle_read_p99_secs", idle_p99, "s");
        snapshot.push("serve/retrain_churn_read_p99_secs", under_p99, "s");
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("bench output dir");
            }
        }
        std::fs::write(path, snapshot.to_json().render())
            .unwrap_or_else(|err| panic!("cannot write {}: {err}", path.display()));
        println!("bench snapshot -> {}", path.display());
    }
}
