//! E-serve — the over-the-wire attack path and serving performance.
//!
//! Phases against in-process [`serve::Server`]s bound to OS-assigned
//! ports on 127.0.0.1 (all traffic crosses a real socket):
//!
//! 1. **Attack replay** — one fig-4 cell (Steam × first ranker ×
//!    BCBT-Popular) trained twice with identical seeds: once against
//!    the in-process [`BlackBoxSystem`], once through
//!    [`recsys::RemoteSystem`] against a served copy at the *highest*
//!    shard count. The two reward histories must be **bit-identical**
//!    — sharding the serving state must not perturb the observation
//!    seed stream (`tests/serve_attack.rs` additionally pins shards 1
//!    and 4).
//! 2. **Load grid** — connections × shards sweep of `GET /recommend`
//!    (one server per shard count, one persistent keep-alive
//!    connection per client thread), recording p50/p95/p99
//!    seconds-per-request plus requests-per-connection. Dial counts
//!    are asserted well below request counts: a grid that silently
//!    reconnects per request understates keep-alive throughput.
//! 3. **Idle keep-alive fleet** — `SERVE_IDLE_CONNS` connections held
//!    open and idle (after `raise_nofile`) while a live client probes
//!    `/healthz`; the event loop serves them all on a fixed thread
//!    set, which the process thread count asserts.
//! 4. **Retrain under load** — read p99 idle vs during a
//!    feedback→retrain churn loop; snapshot publication is per-shard
//!    atomic and wait-free for readers, so serving must not stall.
//! 5. **Live-metrics plane overhead** — the same read load with the
//!    streaming plane disabled (`telemetry::stream::set_enabled`)
//!    versus enabled; plane-on latency must stay within
//!    `SERVE_PLANE_GATE`× of plane-off (default 3.0 — the per-request
//!    cost is a labeled counter bump plus two windowed records, so the
//!    real ratio is ~1.0 and the gate only catches regressions that
//!    put locks or allocation back on the hot path).
//!
//! Environment knobs (`ExpArgs` covers the attack cell; the grid is
//! env-tuned so `scripts/ci.sh` can shrink it):
//! `SERVE_SHARDS_GRID` (default `1,4`), `SERVE_CONNS_GRID` (default
//! `1,4,16`), `SERVE_REQUESTS` per cell (default `200`),
//! `SERVE_IDLE_CONNS` (default `10000`, `0` disables),
//! `SERVE_ACCESS_LOG` (default `<out>/serve_access.jsonl`).
//!
//! With `--bench-json FILE`, writes a `poisonrec-bench-v1` snapshot;
//! `--bench-base FILE` seeds it with a prior snapshot's metrics so the
//! chained `scripts/bench_snapshot.sh` produces one cumulative file.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::ExpArgs;
use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecTrainer};
use recsys::remote::{HttpClient, RemoteSystem};
use serve::{RecApp, Server, ServerConfig};
use telemetry::json::Json;
use telemetry::perf::BenchSnapshot;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_grid(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} entry {s:?} is not a number"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Sorted-latency percentile (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// The processes' current thread count (Linux); `None` elsewhere.
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

struct LoadStats {
    sorted: Vec<f64>,
    /// TCP dials across all clients — healthy keep-alive keeps this at
    /// one per connection.
    dials: u64,
    completed: u64,
}

/// Hammers `GET /recommend?k=10` from `conns` persistent keep-alive
/// connections (one client thread each), `requests` total; returns
/// sorted per-request latencies plus connection accounting. Panics on
/// any non-200 — the load test's correctness half.
fn run_load(addr: &str, conns: usize, requests: usize, num_users: u32) -> LoadStats {
    let non_200 = AtomicU64::new(0);
    let dials = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let mut sorted: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let non_200 = &non_200;
                let dials = &dials;
                let completed = &completed;
                scope.spawn(move || {
                    let mut client = HttpClient::new(addr.to_string());
                    // The dial happens lazily on the first request;
                    // warm the connection untimed so the latency
                    // distribution measures keep-alive reads, not
                    // connect handshakes.
                    let (status, _) = client
                        .request("GET", "/healthz", None)
                        .expect("warmup request failed");
                    assert_eq!(status, 200, "warmup request rejected");
                    let per_thread = requests / conns + usize::from(requests % conns > t);
                    let mut out = Vec::with_capacity(per_thread);
                    for i in 0..per_thread {
                        let user = ((t * 7919 + i) as u32) % num_users;
                        let start = Instant::now();
                        let (status, _) = client
                            .request("GET", &format!("/recommend/{user}?k=10"), None)
                            .expect("load request failed");
                        out.push(start.elapsed().as_secs_f64());
                        if status != 200 {
                            non_200.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    dials.fetch_add(client.dials(), Ordering::Relaxed);
                    completed.fetch_add(client.completed_requests(), Ordering::Relaxed);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    assert_eq!(
        non_200.load(Ordering::Relaxed),
        0,
        "load test saw non-200 responses"
    );
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    LoadStats {
        sorted,
        dials: dials.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
    }
}

struct GridCell {
    shards: usize,
    conns: usize,
    p50: f64,
    p95: f64,
    p99: f64,
    requests_per_conn: f64,
}

fn start_server(
    args: &ExpArgs,
    dataset: PaperDataset,
    ranker: recsys::rankers::RankerKind,
    shards: usize,
    max_conns: usize,
    access_log: Option<std::path::PathBuf>,
) -> Server {
    let system = args.build_system(dataset, ranker);
    let mut builder = ServerConfig::builder()
        .threads(4)
        .shards(shards)
        .max_conns(max_conns);
    if let Some(path) = access_log {
        builder = builder.access_log(path);
    }
    let cfg = builder.build().expect("valid server config");
    Server::start(RecApp::new(system, None), cfg).expect("bind 127.0.0.1:0")
}

fn main() {
    let args = ExpArgs::parse();
    let ranker = args.ranker_list()[0];
    let dataset = PaperDataset::Steam;
    let design = ActionSpaceKind::BcbtPopular;

    let shards_grid = env_grid("SERVE_SHARDS_GRID", &[1, 4]);
    let conns_grid = env_grid("SERVE_CONNS_GRID", &[1, 4, 16]);
    let requests = env_usize("SERVE_REQUESTS", 200);
    let idle_conns_target = env_usize("SERVE_IDLE_CONNS", 10_000);
    let access_log = std::env::var("SERVE_ACCESS_LOG")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| args.out_dir.join("serve_access.jsonl"));
    let max_shards = shards_grid.iter().copied().max().unwrap_or(1);
    let max_conns_needed = conns_grid.iter().copied().max().unwrap_or(1) + idle_conns_target + 64;

    // ---- Phase 1: in-process reference run ------------------------------
    println!(
        "phase 1: attack replay — {} × {} × {}, {} step(s) × {} episode(s), {} shard(s)",
        dataset.name(),
        ranker.name(),
        design.name(),
        args.steps,
        args.episodes,
        max_shards
    );
    let reference = args.build_system(dataset, ranker);
    let num_users = reference.base().num_users();
    let local_trainer = args.train_poisonrec(&reference, design, 11);
    let local_history: Vec<(f32, f32)> = local_trainer
        .history()
        .iter()
        .map(|s| (s.mean_reward, s.max_reward))
        .collect();

    let mut cells: Vec<GridCell> = Vec::new();
    let mut idle_summary: Option<(usize, f64, f64, u64)> = None;
    let mut churn_summary = None;
    let mut plane_summary: Option<[(f64, f64); 2]> = None;

    for (i, &shards) in shards_grid.iter().enumerate() {
        let last = i + 1 == shards_grid.len();
        let server = start_server(
            &args,
            dataset,
            ranker,
            shards,
            max_conns_needed,
            last.then(|| access_log.clone()),
        );
        let addr = server.local_addr().to_string();
        println!(
            "serving on {addr} — {} driver, {shards} shard(s)",
            server.driver().name()
        );

        // ---- Attack replay over the wire (highest shard count) ----------
        if shards == max_shards {
            let remote = RemoteSystem::connect(addr.clone()).expect("connect to served system");
            assert_eq!(remote.shards(), shards, "server must disclose its shards");
            let cfg = args.poisonrec_config(design, 11);
            let mut remote_trainer = PoisonRecTrainer::new(cfg, &remote);
            remote_trainer.train(&remote, args.steps);
            let remote_history: Vec<(f32, f32)> = remote_trainer
                .history()
                .iter()
                .map(|s| (s.mean_reward, s.max_reward))
                .collect();
            assert_eq!(
                local_history, remote_history,
                "over-the-wire attack diverged from the in-process run at {shards} shard(s)"
            );
            println!(
                "phase 1 OK: {} step(s) bit-identical over the socket (final mean RecNum {:.1})",
                local_history.len(),
                local_history.last().map(|&(m, _)| m).unwrap_or(0.0)
            );
        }

        // ---- Phase 2: load grid (persistent connections per cell) -------
        println!(
            "phase 2: load grid — shards {shards} × conns {conns_grid:?} × {requests} request(s)"
        );
        for &conns in &conns_grid {
            let stats = run_load(&addr, conns, requests, num_users);
            // The keep-alive contract this grid exists to measure:
            // reconnect-per-request would put dials ≈ requests.
            assert!(
                stats.dials < stats.completed.max(2),
                "load grid reconnected per request ({} dials / {} requests)",
                stats.dials,
                stats.completed
            );
            let cell = GridCell {
                shards,
                conns,
                p50: percentile(&stats.sorted, 0.50),
                p95: percentile(&stats.sorted, 0.95),
                p99: percentile(&stats.sorted, 0.99),
                requests_per_conn: stats.completed as f64 / stats.dials.max(1) as f64,
            };
            println!(
                "  s={} c={:>3}: p50 {:.6}s  p95 {:.6}s  p99 {:.6}s  ({:.0} req/conn)",
                cell.shards, cell.conns, cell.p50, cell.p95, cell.p99, cell.requests_per_conn
            );
            cells.push(cell);
        }

        // ---- Phases 3+4 on the last (widest) server ---------------------
        if last {
            if idle_conns_target > 0 {
                // Client + server fds live in this one process.
                let budget =
                    serve::raise_nofile((2 * idle_conns_target + 4096) as u64).unwrap_or(1024);
                let idle_target = idle_conns_target.min((budget.saturating_sub(2048) / 2) as usize);
                println!("phase 3: holding {idle_target} idle keep-alive connection(s) (fd budget {budget})");
                let mut fleet = Vec::with_capacity(idle_target);
                for _ in 0..idle_target {
                    fleet.push(TcpStream::connect(&addr).expect("idle connect"));
                }
                // Let the poller absorb the accept burst before probing.
                std::thread::sleep(std::time::Duration::from_millis(50));
                let probe = run_load(&addr, 2, requests.max(50), num_users);
                let threads_now = process_threads().unwrap_or(0);
                if threads_now > 0 {
                    assert!(
                        (threads_now as usize) < idle_target.max(64),
                        "thread count {threads_now} scales with connections"
                    );
                }
                println!(
                    "  live /recommend under {} idle conns: p50 {:.6}s p99 {:.6}s ({} process thread(s))",
                    fleet.len(),
                    percentile(&probe.sorted, 0.50),
                    percentile(&probe.sorted, 0.99),
                    threads_now
                );
                idle_summary = Some((
                    fleet.len(),
                    percentile(&probe.sorted, 0.50),
                    percentile(&probe.sorted, 0.99),
                    threads_now,
                ));
                drop(fleet);
                // Dropping the fleet floods the loop with FINs; wait
                // for the teardown storm to clear so phase 4 measures
                // an idle server, not connection teardown.
                let settle = std::time::Instant::now();
                while server.active_connections() > 0
                    && settle.elapsed() < std::time::Duration::from_secs(10)
                {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }

            println!("phase 4: read p99 idle vs during retrain churn");
            let probe_conns = 2;
            let idle = run_load(&addr, probe_conns, requests, num_users);
            let idle_p99 = percentile(&idle.sorted, 0.99);

            let stop = std::sync::atomic::AtomicBool::new(false);
            let (under_p99, retrains) = std::thread::scope(|scope| {
                let stop_ref = &stop;
                let addr_ref = addr.as_str();
                let churn = scope.spawn(move || {
                    let mut client = HttpClient::new(addr_ref.to_string());
                    let feedback = Json::obj().field(
                        "trajectories",
                        Json::Arr(vec![Json::Arr(vec![
                            Json::from(1u32),
                            Json::from(2u32),
                            Json::from(3u32),
                        ])]),
                    );
                    let mut retrains = 0u64;
                    while !stop_ref.load(Ordering::Relaxed) {
                        let (status, _) = client
                            .request("POST", "/feedback", Some(&feedback))
                            .expect("churn feedback");
                        assert_eq!(status, 200, "churn feedback rejected");
                        let (status, _) = client
                            .request("POST", "/retrain", None)
                            .expect("churn retrain");
                        assert_eq!(status, 200, "churn retrain rejected");
                        retrains += 1;
                    }
                    retrains
                });
                let under = run_load(&addr, probe_conns, requests, num_users);
                stop.store(true, Ordering::Relaxed);
                let retrains = churn.join().expect("churn thread");
                (percentile(&under.sorted, 0.99), retrains)
            });
            println!(
                "  idle p99 {idle_p99:.6}s — during {retrains} retrain(s) p99 {under_p99:.6}s"
            );
            churn_summary = Some((idle_p99, under_p99));

            // ---- Phase 5: live-metrics plane off vs on ------------------
            println!("phase 5: read latency with the live-metrics plane off vs on");
            let gate: f64 = std::env::var("SERVE_PLANE_GATE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(3.0);
            telemetry::stream::set_enabled(false);
            let off = run_load(&addr, probe_conns, requests, num_users);
            telemetry::stream::set_enabled(true);
            let on = run_load(&addr, probe_conns, requests, num_users);
            let off_pair = (percentile(&off.sorted, 0.50), percentile(&off.sorted, 0.99));
            let on_pair = (percentile(&on.sorted, 0.50), percentile(&on.sorted, 0.99));
            println!(
                "  plane off: p50 {:.6}s p99 {:.6}s — plane on: p50 {:.6}s p99 {:.6}s",
                off_pair.0, off_pair.1, on_pair.0, on_pair.1
            );
            assert!(
                on_pair.0 <= off_pair.0 * gate && on_pair.1 <= off_pair.1 * gate,
                "live-metrics plane costs more than {gate}x on the read path \
                 (off p50/p99 {:.6}/{:.6}s, on {:.6}/{:.6}s)",
                off_pair.0,
                off_pair.1,
                on_pair.0,
                on_pair.1
            );
            plane_summary = Some([off_pair, on_pair]);
        }

        // ---- Shutdown ledger --------------------------------------------
        let final_generation = server.generation();
        let stats = server.shutdown();
        println!(
            "shutdown (shards {shards}): accepted {} / completed {} / dropped {} (generation {final_generation})",
            stats.accepted,
            stats.completed,
            stats.dropped()
        );
        assert_eq!(stats.dropped(), 0, "graceful shutdown dropped requests");
    }

    // ---- Bench snapshot -------------------------------------------------
    if let Some(path) = &args.bench_json {
        let mut snapshot = match &args.bench_base {
            Some(base) => {
                let text = std::fs::read_to_string(base)
                    .unwrap_or_else(|err| panic!("cannot read {}: {err}", base.display()));
                let doc = telemetry::json::parse(&text)
                    .unwrap_or_else(|err| panic!("{}: {err}", base.display()));
                BenchSnapshot::from_json(&doc)
                    .unwrap_or_else(|err| panic!("{}: {err}", base.display()))
            }
            None => BenchSnapshot::new("serve"),
        };
        for cell in &cells {
            let prefix = format!("serve/s{}/c{}", cell.shards, cell.conns);
            snapshot.push(format!("{prefix}/p50_secs"), cell.p50, "s");
            snapshot.push(format!("{prefix}/p95_secs"), cell.p95, "s");
            snapshot.push(format!("{prefix}/p99_secs"), cell.p99, "s");
            snapshot.push(
                format!("{prefix}/requests_per_conn"),
                cell.requests_per_conn,
                "req/conn",
            );
        }
        if let Some((held, p50, p99, threads_now)) = idle_summary {
            snapshot.push("serve/idle_keepalive_conns", held as f64, "conn");
            snapshot.push("serve/idle_keepalive_read_p50_secs", p50, "s");
            snapshot.push("serve/idle_keepalive_read_p99_secs", p99, "s");
            snapshot.push("serve/idle_keepalive_threads", threads_now as f64, "thread");
        }
        if let Some((idle_p99, under_p99)) = churn_summary {
            snapshot.push("serve/retrain_idle_read_p99_secs", idle_p99, "s");
            snapshot.push("serve/retrain_churn_read_p99_secs", under_p99, "s");
        }
        if let Some([(off_p50, off_p99), (on_p50, on_p99)]) = plane_summary {
            snapshot.push("serve/plane_off_read_p50_secs", off_p50, "s");
            snapshot.push("serve/plane_off_read_p99_secs", off_p99, "s");
            snapshot.push("serve/plane_on_read_p50_secs", on_p50, "s");
            snapshot.push("serve/plane_on_read_p99_secs", on_p99, "s");
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("bench output dir");
            }
        }
        std::fs::write(path, snapshot.to_json().render())
            .unwrap_or_else(|err| panic!("cannot write {}: {err}", path.display()));
        println!("bench snapshot -> {}", path.display());
    }
}
