//! Ablation benches for the design choices DESIGN.md §6 calls out
//! (beyond the Fig. 4 action-space ablation):
//!
//! * reward normalization (Eq. 8) on vs off,
//! * PPO clipped surrogate vs plain REINFORCE,
//! * warm-start fine-tune depth (how many poison epochs the victim
//!   applies — an attack-difficulty knob of the harness).
//!
//! Runs on Steam × CoVisitation (a mid-difficulty cell) and writes
//! `results/ablation.{csv,md}`.

use analysis::{write_text, Table};
use bench::{run_parallel, ExpArgs};
use datasets::PaperDataset;
use poisonrec::{ActionSpaceKind, PoisonRecTrainer};
use recsys::rankers::RankerKind;

fn main() {
    let args = ExpArgs::parse();

    struct Variant {
        name: &'static str,
        normalize: bool,
        clip: bool,
    }
    let variants = [
        Variant {
            name: "full (clip + norm)",
            normalize: true,
            clip: true,
        },
        Variant {
            name: "no reward normalization",
            normalize: false,
            clip: true,
        },
        Variant {
            name: "no clip (REINFORCE)",
            normalize: true,
            clip: false,
        },
        Variant {
            name: "neither",
            normalize: false,
            clip: false,
        },
    ];

    type Job = Box<dyn FnOnce() -> (String, f32, f32) + Send>;
    let mut jobs: Vec<Job> = Vec::new();
    for v in &variants {
        let args = args.clone();
        let (name, normalize, clip) = (v.name, v.normalize, v.clip);
        jobs.push(Box::new(move || {
            let system = args.build_system(PaperDataset::Steam, RankerKind::CoVisitation);
            let mut cfg = args.poisonrec_config(ActionSpaceKind::BcbtPopular, 11);
            cfg.ppo.normalize_rewards = normalize;
            cfg.ppo.use_clip = clip;
            let mut trainer = PoisonRecTrainer::new(cfg, &system);
            trainer.train(&system, args.steps);
            let hist = trainer.history();
            let tail = &hist[hist.len().saturating_sub(3)..];
            let final_mean =
                tail.iter().map(|s| s.mean_reward).sum::<f32>() / tail.len().max(1) as f32;
            let best = trainer.best_episode().map(|e| e.reward).unwrap_or(0.0);
            (name.to_string(), final_mean, best)
        }));
    }
    let results = run_parallel(args.threads, jobs);

    let mut table = Table::new(["variant", "final_mean_recnum", "best_recnum"]);
    for (name, final_mean, best) in &results {
        println!("{name:<26} final mean {final_mean:>8.1}   best {best:>8.1}");
        table.push([
            name.clone(),
            format!("{final_mean:.1}"),
            format!("{best:.1}"),
        ]);
    }
    table
        .write_csv(args.out_dir.join("ablation.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("ablation.md"), &table.to_markdown()).expect("write md");
    println!(
        "wrote {}",
        args.out_dir.join("ablation.{{csv,md}}").display()
    );
}
