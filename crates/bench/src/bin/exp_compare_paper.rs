//! Shape comparison against the paper: for every Table III cell, the
//! Spearman and Kendall rank correlation between our seven methods'
//! RecNum ordering and the paper's, plus winner agreement. This is the
//! quantitative "does the reproduction reproduce?" check recorded in
//! EXPERIMENTS.md.
//!
//! Consumes `results/table3.csv` (run `exp_table3` first); writes
//! `results/paper_comparison.{csv,md}`.

use analysis::{kendall_tau, spearman, write_text, Table};
use bench::paper::{paper_cell, METHODS};
use bench::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    let path = args.out_dir.join("table3.csv");
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} (run exp_table3 first): {e}", path.display()));
    let mut lines = raw.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let col = |name: &str| -> usize {
        header
            .iter()
            .position(|&h| h == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let method_cols: Vec<usize> = METHODS.iter().map(|m| col(m)).collect();
    let (ds_col, rk_col) = (col("dataset"), col("ranker"));

    let mut table = Table::new([
        "dataset",
        "ranker",
        "spearman",
        "kendall",
        "our_winner",
        "paper_winner",
        "winners_agree",
    ]);
    let mut rho_sum = 0.0;
    let mut cells = 0usize;
    let mut winner_hits = 0usize;

    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < header.len() {
            continue;
        }
        let (dataset, ranker) = (fields[ds_col], fields[rk_col]);
        let Some(paper) = paper_cell(dataset, ranker) else {
            continue;
        };
        let ours: Vec<f64> = method_cols
            .iter()
            .map(|&c| fields[c].parse::<f64>().unwrap_or(0.0))
            .collect();
        let paper_f: Vec<f64> = paper.iter().map(|&v| f64::from(v)).collect();
        let rho = spearman(&ours, &paper_f);
        let tau = kendall_tau(&ours, &paper_f);
        let our_winner = METHODS[analysis::stats::argmax(&ours).expect("7 methods")];
        let paper_winner = METHODS[analysis::stats::argmax(&paper_f).expect("7 methods")];
        // Degenerate all-zero cells (ItemPop/MovieLens) have no winner.
        let degenerate = ours.iter().all(|&x| x == 0.0) || paper_f.iter().all(|&x| x == 0.0);
        let agree = !degenerate && our_winner == paper_winner;
        if !degenerate {
            rho_sum += rho;
            cells += 1;
            winner_hits += usize::from(agree);
        }
        table.push([
            dataset.to_string(),
            ranker.to_string(),
            format!("{rho:.3}"),
            format!("{tau:.3}"),
            our_winner.to_string(),
            paper_winner.to_string(),
            if degenerate {
                "n/a".to_string()
            } else {
                agree.to_string()
            },
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "mean Spearman over {cells} non-degenerate cells: {:.3}; winner agreement {}/{}",
        rho_sum / cells.max(1) as f64,
        winner_hits,
        cells
    );
    table
        .write_csv(args.out_dir.join("paper_comparison.csv"))
        .expect("write csv");
    write_text(
        args.out_dir.join("paper_comparison.md"),
        &table.to_markdown(),
    )
    .expect("write md");
}
