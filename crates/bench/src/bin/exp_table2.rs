//! E7 — Table II: dataset statistics of the synthetic twins vs the
//! paper. Regenerates `results/table2.{csv,md}`.
//!
//! Paper values: Steam 6,506/5,134/180,721 · MovieLens 5,999/3,706/
//! 943,317 · Phone 27,879/10,429/166,560 · Clothing 39,387/23,033/
//! 239,290. At `--scale 1.0` the twins must land within a few percent.

use analysis::{write_text, Table};
use bench::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    let paper: &[(&str, u64, u64, u64)] = &[
        ("Steam", 6_506, 5_134, 180_721),
        ("MovieLens", 5_999, 3_706, 943_317),
        ("Phone", 27_879, 10_429, 166_560),
        ("Clothing", 39_387, 23_033, 239_290),
    ];
    let mut table = Table::new([
        "dataset",
        "users(paper)",
        "users(twin)",
        "items(paper)",
        "items(twin)",
        "samples(paper)",
        "samples(twin)",
        "mean item freq",
    ]);
    for dataset in args.dataset_list() {
        let twin = dataset.generate_scaled(args.scale, args.seed);
        let row = paper
            .iter()
            .find(|(n, ..)| *n == dataset.name())
            .expect("known dataset");
        // Add back the two held-out events per user that the split removes.
        let samples = twin.num_interactions() as u64 + 2 * u64::from(twin.num_users());
        let scale_note = |v: u64| ((v as f64) * args.scale).round() as u64;
        table.push([
            dataset.name().to_string(),
            scale_note(row.1).to_string(),
            twin.num_users().to_string(),
            scale_note(row.2).to_string(),
            twin.num_items().to_string(),
            scale_note(row.3).to_string(),
            samples.to_string(),
            format!("{:.1}", samples as f64 / f64::from(twin.num_items())),
        ]);
        println!(
            "{:<10} users {:>6} items {:>6} samples {:>8}",
            dataset.name(),
            twin.num_users(),
            twin.num_items(),
            samples
        );
    }
    table
        .write_csv(args.out_dir.join("table2.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("table2.md"), &table.to_markdown()).expect("write md");
    println!("wrote {}", args.out_dir.join("table2.{{csv,md}}").display());
}
