//! Reward-noise study: the RL agent's reward is RecNum after a
//! stochastic warm retrain, so the same trajectory set yields different
//! rewards across observations. This bin quantifies that noise per
//! ranker (mean ± std over repeated observations of one fixed poison),
//! which explains why Eq. 8's batch normalization matters and how many
//! episodes per step are needed.
//!
//! Writes `results/variance.{csv,md}`. With `--telemetry run.jsonl`,
//! streams one `observation` event per (ranker, repetition) — the
//! observed RecNum plus its wall-clock cost — and a closing metrics
//! snapshot.

use analysis::{write_text, Table};
use baselines::BaselineKind;
use bench::ExpArgs;
use datasets::PaperDataset;
use telemetry::{Json, Stopwatch};

use tensor::util::{mean, std_dev};

const REPS: u64 = 8;

fn main() {
    let args = ExpArgs::parse();
    let sink = args.open_telemetry("variance");
    let mut table = Table::new(["ranker", "mean_recnum", "std", "coeff_of_variation"]);
    for ranker in args.ranker_list() {
        let system = args.build_system(PaperDataset::Steam, ranker);
        // A fixed mid-strength attack: the Popular heuristic.
        let mut attack = BaselineKind::Popular.build(args.seed);
        let poison = attack.generate(&system, args.attackers, args.trajectory);
        let samples: Vec<f32> = (0..REPS)
            .map(|rep| {
                let watch = Stopwatch::start();
                let rec_num = system.inject_and_observe_seeded(&poison, 500 + rep);
                if let Some(sink) = &sink {
                    let event = Json::obj()
                        .field("type", "observation")
                        .field("ranker", ranker.name())
                        .field("rep", rep)
                        .field("rec_num", u64::from(rec_num))
                        .field("observe_secs", watch.elapsed_secs());
                    sink.emit(&event).expect("telemetry observation write");
                }
                rec_num as f32
            })
            .collect();
        let (mu, sigma) = (mean(&samples), std_dev(&samples));
        let cv = if mu > 0.0 { sigma / mu } else { 0.0 };
        println!(
            "{:<14} mean {:>8.1}  std {:>7.2}  cv {:.2}",
            ranker.name(),
            mu,
            sigma,
            cv
        );
        table.push([
            ranker.name().to_string(),
            format!("{mu:.1}"),
            format!("{sigma:.2}"),
            format!("{cv:.3}"),
        ]);
    }
    table
        .write_csv(args.out_dir.join("variance.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("variance.md"), &table.to_markdown()).expect("write md");
    println!(
        "wrote {}",
        args.out_dir.join("variance.{{csv,md}}").display()
    );
    if let Some(sink) = &sink {
        sink.emit_metrics_snapshot()
            .expect("telemetry metrics write");
    }
}
