//! Reward-noise study: the RL agent's reward is RecNum after a
//! stochastic warm retrain, so the same trajectory set yields different
//! rewards across observations. This bin quantifies that noise per
//! ranker (mean ± std over repeated observations of one fixed poison),
//! which explains why Eq. 8's batch normalization matters and how many
//! episodes per step are needed.
//!
//! Writes `results/variance.{csv,md}`. With `--telemetry run.jsonl`,
//! streams one `observation` event per (ranker, repetition) — the
//! observed RecNum plus its wall-clock cost — and a closing metrics
//! snapshot.
//!
//! ## Checkpoint/resume
//!
//! This bin has no trainer, so its unit of progress is the completed
//! `(ranker, rep)` observation. With `--checkpoint-every N` the
//! accumulated observations are snapshotted (same sealed container
//! format as trainer checkpoints, fingerprinted against the run
//! config) after every N-th ranker; `--resume DIR` reloads them and
//! skips the work — resumed entries contribute their recorded RecNum
//! without re-observing, and their telemetry events are not re-emitted
//! (the first run's log already has them). `--fault-kill-step K`
//! simulates a crash after the K-th ranker.

use std::collections::HashMap;

use analysis::{write_text, Table};
use baselines::BaselineKind;
use bench::ExpArgs;
use datasets::PaperDataset;
use poisonrec::checkpoint::{atomic_write, fnv1a64, seal, unseal};
use runtime::FaultPlan;
use telemetry::{Json, Stopwatch};
use tensor::util::{mean, std_dev};
use tensor::wire::{Reader, Writer};

const REPS: u64 = 8;

/// Everything that decides an observation's value: dataset geometry,
/// system seeds, and the fixed attack. Two runs agreeing here produce
/// identical RecNum samples, so cached entries are interchangeable.
fn variance_fingerprint(args: &ExpArgs) -> u64 {
    let mut w = Writer::new();
    w.put_f64(args.scale);
    w.put_u64(args.seed);
    w.put_u64(args.eval_users as u64);
    w.put_u64(args.attackers as u64);
    w.put_u64(args.trajectory as u64);
    w.put_u64(REPS);
    for ranker in args.ranker_list() {
        w.put_str(ranker.name());
    }
    fnv1a64(&w.into_bytes())
}

type Progress = HashMap<(String, u64), u32>;

fn load_progress(args: &ExpArgs) -> Progress {
    let Some(path) = args.resume_path("variance") else {
        return Progress::new();
    };
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|err| panic!("cannot read checkpoint {}: {err}", path.display()));
    let (fingerprint, body) =
        unseal(&bytes).unwrap_or_else(|err| panic!("cannot resume from {}: {err}", path.display()));
    assert_eq!(
        fingerprint,
        variance_fingerprint(args),
        "checkpoint {} was written under a different configuration; refusing to resume",
        path.display()
    );
    let progress = decode_progress(body)
        .unwrap_or_else(|err| panic!("malformed checkpoint {}: {err}", path.display()));
    println!(
        "resumed {} completed observation(s) from {}",
        progress.len(),
        path.display()
    );
    progress
}

fn decode_progress(body: &[u8]) -> Result<Progress, tensor::wire::WireError> {
    let mut r = Reader::new(body);
    // Each entry is at least a name length (8) + rep (8) + RecNum (4).
    let n = r.get_len(20, "observation count")?;
    let mut progress = Progress::with_capacity(n);
    for _ in 0..n {
        let ranker = r.get_str("ranker name")?;
        let rep = r.get_u64("repetition")?;
        let rec_num = r.get_u32("rec_num")?;
        progress.insert((ranker, rep), rec_num);
    }
    r.expect_eof()?;
    Ok(progress)
}

fn save_progress(args: &ExpArgs, progress: &Progress) {
    let Some(path) = args.checkpoint_path("variance") else {
        return;
    };
    let mut w = Writer::new();
    w.put_u64(progress.len() as u64);
    // BTreeMap-order the entries so identical progress always produces
    // identical bytes.
    let mut entries: Vec<_> = progress.iter().collect();
    entries.sort();
    for ((ranker, rep), rec_num) in entries {
        w.put_str(ranker);
        w.put_u64(*rep);
        w.put_u32(*rec_num);
    }
    let sealed = seal(variance_fingerprint(args), &w.into_bytes());
    atomic_write(&path, &sealed)
        .unwrap_or_else(|err| panic!("cannot write checkpoint {}: {err}", path.display()));
}

fn main() {
    let args = ExpArgs::parse();
    let sink = args.open_telemetry("variance");
    let mut progress = load_progress(&args);
    let fault = args
        .fault_kill_step
        .map(|step| FaultPlan::new().kill_at_step(step));
    let mut table = Table::new(["ranker", "mean_recnum", "std", "coeff_of_variation"]);
    for (r_idx, ranker) in args.ranker_list().into_iter().enumerate() {
        // Skip the expensive system build when every rep is cached.
        let all_cached =
            (0..REPS).all(|rep| progress.contains_key(&(ranker.name().to_string(), rep)));
        let cell = if all_cached {
            None
        } else {
            let system = args.build_system(PaperDataset::Steam, ranker);
            // A fixed mid-strength attack: the Popular heuristic.
            let mut attack = BaselineKind::Popular.build(args.seed);
            let poison = attack.generate(&system, args.attackers, args.trajectory);
            Some((system, poison))
        };
        let samples: Vec<f32> = (0..REPS)
            .map(|rep| {
                let key = (ranker.name().to_string(), rep);
                if let Some(&rec_num) = progress.get(&key) {
                    return rec_num as f32;
                }
                let (system, poison) = cell.as_ref().expect("built when any rep is missing");
                let watch = Stopwatch::start();
                let rec_num = system.inject_and_observe_seeded(poison, 500 + rep);
                if let Some(sink) = &sink {
                    let event = Json::obj()
                        .field("type", "observation")
                        .field("ranker", ranker.name())
                        .field("rep", rep)
                        .field("rec_num", u64::from(rec_num))
                        .field("observe_secs", watch.elapsed_secs());
                    sink.emit(&event).expect("telemetry observation write");
                }
                progress.insert(key, rec_num);
                rec_num as f32
            })
            .collect();
        if args.checkpoint_every > 0 && (r_idx + 1).is_multiple_of(args.checkpoint_every) {
            save_progress(&args, &progress);
        }
        if let Some(plan) = &fault {
            plan.kill_if_due((r_idx + 1) as u64);
        }
        let (mu, sigma) = (mean(&samples), std_dev(&samples));
        let cv = if mu > 0.0 { sigma / mu } else { 0.0 };
        println!(
            "{:<14} mean {:>8.1}  std {:>7.2}  cv {:.2}",
            ranker.name(),
            mu,
            sigma,
            cv
        );
        table.push([
            ranker.name().to_string(),
            format!("{mu:.1}"),
            format!("{sigma:.2}"),
            format!("{cv:.3}"),
        ]);
    }
    table
        .write_csv(args.out_dir.join("variance.csv"))
        .expect("write csv");
    write_text(args.out_dir.join("variance.md"), &table.to_markdown()).expect("write md");
    println!(
        "wrote {}",
        args.out_dir.join("variance.{{csv,md}}").display()
    );
    if let Some(sink) = &sink {
        sink.emit_metrics_snapshot()
            .expect("telemetry metrics write");
    }
}
