//! # bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §3 for the experiment index). The heavy experiments
//! live in `src/bin/exp_*.rs`; criterion microbenchmarks in `benches/`.
//!
//! Every binary accepts the same flag set (see [`ExpArgs`]); defaults
//! are scaled for a laptop run, `--paper` restores paper-scale
//! hyperparameters (slow).

pub mod paper;

use std::path::PathBuf;
use std::sync::Arc;

use datasets::PaperDataset;
use poisonrec::{
    ActionSpaceKind, PoisonRecConfig, PoisonRecTrainer, PolicyConfig, PpoConfig, StepLogger,
};
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, ObservableSystem, SystemConfig};
use telemetry::{Json, JsonlSink};

/// Shared command-line arguments for all experiment binaries.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset scale factor in (0, 1].
    pub scale: f64,
    /// PoisonRec training steps.
    pub steps: usize,
    /// Episodes per training step (`M = B`).
    pub episodes: usize,
    /// Attackers `N`.
    pub attackers: usize,
    /// Trajectory length `T`.
    pub trajectory: usize,
    /// Policy embedding width `|e|`.
    pub dim: usize,
    /// Users polled per RecNum measurement.
    pub eval_users: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV/markdown artifacts.
    pub out_dir: PathBuf,
    /// Restrict to these rankers (empty = all eight).
    pub rankers: Vec<RankerKind>,
    /// Restrict to these datasets (empty = all four).
    pub datasets: Vec<PaperDataset>,
    /// Worker threads for cell-parallel experiments.
    pub threads: usize,
    /// When set, stream a JSONL run log (manifest + per-step events)
    /// to this path, next to the CSV artifacts.
    pub telemetry: Option<PathBuf>,
    /// Save a checkpoint after every N completed steps (0 = never).
    pub checkpoint_every: usize,
    /// Directory for per-cell checkpoint files
    /// (default: `<out>/checkpoints`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume every cell whose checkpoint exists in this directory.
    pub resume: Option<PathBuf>,
    /// Fault injection: simulate a crash (exit [`runtime::FAULT_EXIT_CODE`])
    /// at this step boundary, after any due checkpoint was written.
    pub fault_kill_step: Option<u64>,
    /// When set, enable hierarchical tracing + the per-op profiler for
    /// the run and write a Chrome Trace Event JSON file here (open in
    /// Perfetto; inspect with `trace_report`).
    pub trace: Option<PathBuf>,
    /// When set, write a `BENCH_*`-schema perf snapshot here (compare
    /// with `perf_diff`). Which metrics land in it is up to the binary.
    pub bench_json: Option<PathBuf>,
    /// When set, seed the `--bench-json` snapshot with the metrics of
    /// this prior snapshot (so chained binaries accumulate one file).
    pub bench_base: Option<PathBuf>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 0.08,
            steps: 40,
            episodes: 16,
            attackers: 20,
            trajectory: 20,
            dim: 32,
            eval_users: 128,
            seed: 17,
            out_dir: PathBuf::from("results"),
            rankers: Vec::new(),
            datasets: Vec::new(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            telemetry: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: None,
            fault_kill_step: None,
            trace: None,
            bench_json: None,
            bench_base: None,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`; exits with usage on error.
    pub fn parse() -> Self {
        let mut args = Self::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => args.scale = take("--scale").parse().expect("scale"),
                "--steps" => args.steps = take("--steps").parse().expect("steps"),
                "--episodes" => args.episodes = take("--episodes").parse().expect("episodes"),
                "--attackers" => args.attackers = take("--attackers").parse().expect("attackers"),
                "--trajectory" => {
                    args.trajectory = take("--trajectory").parse().expect("trajectory")
                }
                "--dim" => args.dim = take("--dim").parse().expect("dim"),
                "--eval-users" => {
                    args.eval_users = take("--eval-users").parse().expect("eval-users")
                }
                "--seed" => args.seed = take("--seed").parse().expect("seed"),
                "--out" => args.out_dir = PathBuf::from(take("--out")),
                "--threads" => args.threads = take("--threads").parse().expect("threads"),
                "--telemetry" => args.telemetry = Some(PathBuf::from(take("--telemetry"))),
                "--checkpoint-every" => {
                    args.checkpoint_every = take("--checkpoint-every")
                        .parse()
                        .expect("checkpoint-every")
                }
                "--checkpoint-dir" => {
                    args.checkpoint_dir = Some(PathBuf::from(take("--checkpoint-dir")))
                }
                "--resume" => args.resume = Some(PathBuf::from(take("--resume"))),
                "--fault-kill-step" => {
                    args.fault_kill_step =
                        Some(take("--fault-kill-step").parse().expect("fault-kill-step"))
                }
                "--trace" => args.trace = Some(PathBuf::from(take("--trace"))),
                "--bench-json" => args.bench_json = Some(PathBuf::from(take("--bench-json"))),
                "--bench-base" => args.bench_base = Some(PathBuf::from(take("--bench-base"))),
                "--rankers" => {
                    args.rankers = take("--rankers")
                        .split(',')
                        .map(|s| {
                            s.parse::<RankerKind>().unwrap_or_else(|err| {
                                eprintln!("{err}");
                                std::process::exit(2);
                            })
                        })
                        .collect();
                }
                "--datasets" => {
                    args.datasets = take("--datasets")
                        .split(',')
                        .map(|s| {
                            PaperDataset::parse(s).unwrap_or_else(|| {
                                eprintln!("unknown dataset {s}");
                                std::process::exit(2);
                            })
                        })
                        .collect();
                }
                // Paper-scale hyperparameters (slow: hours, not minutes).
                "--paper" => {
                    args.scale = 1.0;
                    args.steps = 60;
                    args.episodes = 32;
                    args.dim = 64;
                    args.eval_users = 1000;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale F --steps N --episodes M --attackers N --trajectory T \
                         --dim E --eval-users U --seed S --out DIR --threads K \
                         --telemetry FILE.jsonl --rankers A,B --datasets X,Y --paper \
                         --checkpoint-every N --checkpoint-dir DIR --resume DIR \
                         --fault-kill-step N --trace FILE.json --bench-json FILE.json \
                         --bench-base FILE.json"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Rankers to evaluate (all eight unless restricted).
    pub fn ranker_list(&self) -> Vec<RankerKind> {
        if self.rankers.is_empty() {
            RankerKind::ALL.to_vec()
        } else {
            self.rankers.clone()
        }
    }

    /// Datasets to evaluate (all four unless restricted).
    pub fn dataset_list(&self) -> Vec<PaperDataset> {
        if self.datasets.is_empty() {
            PaperDataset::ALL.to_vec()
        } else {
            self.datasets.clone()
        }
    }

    /// Builds a fitted black-box system for one experiment cell.
    pub fn build_system(&self, dataset: PaperDataset, ranker: RankerKind) -> BlackBoxSystem {
        let data = dataset.generate_scaled(self.scale, self.seed);
        let view = recsys::data::LogView::clean(&data);
        let reserve = (self.attackers as u32).max(32);
        let boxed = ranker.build(&view, reserve);
        BlackBoxSystem::build(
            data,
            boxed,
            SystemConfig {
                eval_users: self.eval_users,
                seed: self.seed,
                reserve_attackers: reserve,
                ..SystemConfig::default()
            },
        )
    }

    /// PoisonRec configuration for one run.
    pub fn poisonrec_config(&self, space: ActionSpaceKind, seed_offset: u64) -> PoisonRecConfig {
        PoisonRecConfig {
            policy: PolicyConfig {
                dim: self.dim,
                num_attackers: self.attackers,
                trajectory_len: self.trajectory,
                init_scale: 0.1,
            },
            ppo: PpoConfig {
                samples_per_step: self.episodes,
                batch: self.episodes,
                ..PpoConfig::default()
            },
            action_space: space,
            seed: self.seed ^ seed_offset,
            threads: self.threads,
        }
    }

    /// Trains PoisonRec against a system; returns the trainer (history,
    /// best episode, policy) for the caller to mine.
    pub fn train_poisonrec(
        &self,
        system: &dyn ObservableSystem,
        space: ActionSpaceKind,
        seed_offset: u64,
    ) -> PoisonRecTrainer {
        self.train_poisonrec_logged(system, space, seed_offset, None, &[])
    }

    /// [`ExpArgs::train_poisonrec`] with an optional telemetry sink:
    /// when `sink` is set, every training step is streamed as one
    /// JSONL event tagged with `labels` (so parallel cells sharing the
    /// sink stay distinguishable).
    ///
    /// This is also the checkpoint-aware entry point: the cell's slug
    /// (derived from `labels`) names a per-cell checkpoint file, so
    /// `--resume DIR` continues from `DIR/<slug>.ckpt` when it exists
    /// and `--checkpoint-every N` snapshots into the checkpoint
    /// directory as the run progresses.
    pub fn train_poisonrec_logged(
        &self,
        system: &dyn ObservableSystem,
        space: ActionSpaceKind,
        seed_offset: u64,
        sink: Option<&Arc<JsonlSink>>,
        labels: &[(&str, &str)],
    ) -> PoisonRecTrainer {
        let slug = Self::cell_slug(labels, seed_offset);
        let cfg = self.poisonrec_config(space, seed_offset);
        let mut trainer = self.build_or_resume_trainer(cfg, system, &slug);
        if let Some(sink) = sink {
            let mut logger = StepLogger::new(Arc::clone(sink));
            for &(key, value) in labels {
                logger = logger.label(key, value);
            }
            trainer.attach_logger(logger);
        }
        self.drive_trainer(&mut trainer, system, &slug, self.steps);
        trainer
    }

    /// The per-cell checkpoint file name: label values joined by `-`
    /// (e.g. `steam-bpr-bcbt_popular`), or the seed offset when a run
    /// carries no labels.
    pub fn cell_slug(labels: &[(&str, &str)], seed_offset: u64) -> String {
        if labels.is_empty() {
            return format!("cell-{seed_offset}");
        }
        labels
            .iter()
            .map(|&(_, value)| value)
            .collect::<Vec<_>>()
            .join("-")
    }

    /// Where cell `slug` writes checkpoints, or `None` when
    /// checkpointing is off (`--checkpoint-every 0`).
    pub fn checkpoint_path(&self, slug: &str) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        let dir = self
            .checkpoint_dir
            .clone()
            .unwrap_or_else(|| self.out_dir.join("checkpoints"));
        Some(dir.join(format!("{slug}.ckpt")))
    }

    /// Where cell `slug` resumes from: `--resume` names a directory of
    /// per-cell files. `None` when not resuming or when this cell has
    /// no checkpoint yet (it then starts fresh).
    pub fn resume_path(&self, slug: &str) -> Option<PathBuf> {
        let path = self.resume.as_ref()?.join(format!("{slug}.ckpt"));
        path.exists().then_some(path)
    }

    /// Builds a cell's trainer, resuming from its `--resume` checkpoint
    /// when one exists. Resume failures (corruption, config mismatch)
    /// abort loudly rather than silently restarting the run.
    pub fn build_or_resume_trainer(
        &self,
        cfg: PoisonRecConfig,
        system: &dyn ObservableSystem,
        slug: &str,
    ) -> PoisonRecTrainer {
        match self.resume_path(slug) {
            Some(path) => PoisonRecTrainer::resume(&path, cfg, system).unwrap_or_else(|err| {
                panic!("cannot resume {slug} from {}: {err}", path.display())
            }),
            None => PoisonRecTrainer::new(cfg, system),
        }
    }

    /// The binaries' shared drive loop: runs the trainer up to `steps`
    /// total completed steps (a resumed history counts), writing a
    /// checkpoint after every `--checkpoint-every`-th step and honoring
    /// a scripted `--fault-kill-step` crash *after* any due checkpoint
    /// — so CI can kill a run at a step boundary and prove the resumed
    /// continuation is bit-identical.
    pub fn drive_trainer(
        &self,
        trainer: &mut PoisonRecTrainer,
        system: &dyn ObservableSystem,
        slug: &str,
        steps: usize,
    ) {
        let ckpt = self.checkpoint_path(slug);
        let fault = self
            .fault_kill_step
            .map(|step| runtime::FaultPlan::new().kill_at_step(step));
        for _ in trainer.history().len()..steps {
            trainer.step(system);
            let completed = trainer.history().len();
            if let Some(path) = &ckpt {
                if completed.is_multiple_of(self.checkpoint_every) {
                    trainer.save_checkpoint(system, path).unwrap_or_else(|err| {
                        panic!("cannot write checkpoint {}: {err}", path.display())
                    });
                }
            }
            if let Some(plan) = &fault {
                plan.kill_if_due(completed as u64);
            }
        }
    }

    /// Opens the `--telemetry` run log, if requested, and writes its
    /// manifest line: the experiment name plus every configuration
    /// knob a reader needs to interpret the step events (notably
    /// `episodes`, which the JSONL validator checks the per-step
    /// observation count against).
    pub fn open_telemetry(&self, experiment: &str) -> Option<Arc<JsonlSink>> {
        let path = self.telemetry.as_ref()?;
        let sink = JsonlSink::create(path)
            .unwrap_or_else(|err| panic!("cannot create telemetry log {}: {err}", path.display()));
        let manifest = Json::obj()
            .field("type", "manifest")
            .field("experiment", experiment)
            .field("scale", self.scale)
            .field("steps", self.steps)
            .field("episodes", self.episodes)
            .field("attackers", self.attackers)
            .field("trajectory", self.trajectory)
            .field("dim", self.dim)
            .field("eval_users", self.eval_users)
            .field("seed", self.seed)
            .field("threads", self.threads)
            .field(
                "rankers",
                Json::Arr(
                    self.ranker_list()
                        .iter()
                        .map(|r| Json::from(r.name()))
                        .collect(),
                ),
            )
            .field(
                "datasets",
                Json::Arr(
                    self.dataset_list()
                        .iter()
                        .map(|d| Json::from(d.name()))
                        .collect(),
                ),
            );
        sink.emit(&manifest).expect("telemetry manifest write");
        Some(Arc::new(sink))
    }

    /// Arms tracing + the op profiler when `--trace` was given. Call
    /// once, before the traced work; pair with [`ExpArgs::finish_trace`].
    /// Tracing never touches any RNG, so arming it cannot change a
    /// single sampled reward (asserted by `tests/trace.rs`).
    pub fn init_trace(&self) {
        if self.trace.is_none() {
            return;
        }
        telemetry::trace::reset();
        tensor::profile::reset();
        telemetry::trace::enable();
    }

    /// Stops tracing, drains the ring buffers, and writes the Chrome
    /// Trace Event file named by `--trace` with the op profile embedded
    /// as the `"opProfile"` top-level field. Returns the op profile so
    /// binaries can also fold per-op rows into a `--bench-json`
    /// snapshot. No-op (empty profile) without `--trace`.
    pub fn finish_trace(&self) -> tensor::OpProfile {
        let Some(path) = &self.trace else {
            return tensor::OpProfile::default();
        };
        telemetry::trace::disable();
        let snapshot = telemetry::TraceCollector::collect();
        let profile = tensor::profile::snapshot();
        snapshot
            .write_chrome(path, &[("opProfile", profile.to_json())])
            .unwrap_or_else(|err| panic!("cannot write trace {}: {err}", path.display()));
        println!(
            "trace: {} span(s) on {} track(s) -> {}",
            snapshot.span_count(),
            snapshot.tracks.len(),
            path.display()
        );
        profile
    }

    /// Writes a `BENCH_*`-schema snapshot to `--bench-json` (no-op
    /// without the flag). `metrics` are `(name, seconds)` pairs from
    /// the binary; per-op average wall times from `profile` are
    /// appended as `op/<Kind>/{fwd,bwd}_ns_per_call` rows.
    pub fn write_bench_json(
        &self,
        label: &str,
        metrics: &[(String, f64)],
        profile: &tensor::OpProfile,
    ) {
        let Some(path) = &self.bench_json else {
            return;
        };
        let mut snapshot = telemetry::perf::BenchSnapshot::new(label);
        for (name, secs) in metrics {
            snapshot.push(name.clone(), *secs, "s");
        }
        for row in &profile.rows {
            if row.fwd_calls > 0 {
                snapshot.push(
                    format!("op/{}/fwd_ns_per_call", row.kind.name()),
                    row.fwd_ns as f64 / row.fwd_calls as f64,
                    "ns",
                );
            }
            if row.bwd_calls > 0 {
                snapshot.push(
                    format!("op/{}/bwd_ns_per_call", row.kind.name()),
                    row.bwd_ns as f64 / row.bwd_calls as f64,
                    "ns",
                );
            }
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("bench output dir");
            }
        }
        std::fs::write(path, snapshot.to_json().render())
            .unwrap_or_else(|err| panic!("cannot write bench snapshot {}: {err}", path.display()));
        println!("bench snapshot -> {}", path.display());
    }
}

/// Cell-level fan-out for the experiment binaries, now provided by the
/// shared [`runtime`] worker pool (one persistent pool per process;
/// trainer-level scoring batches nest inside it safely).
pub use runtime::run_parallel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lists_cover_paper_grid() {
        let args = ExpArgs::default();
        assert_eq!(args.ranker_list().len(), 8);
        assert_eq!(args.dataset_list().len(), 4);
    }

    #[test]
    fn parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = run_parallel(4, jobs);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn build_tiny_system_smoke() {
        let args = ExpArgs {
            scale: 0.02,
            eval_users: 16,
            ..ExpArgs::default()
        };
        let system = args.build_system(PaperDataset::Steam, RankerKind::ItemPop);
        assert_eq!(system.clean_rec_num(), 0, "targets must start unexposed");
    }
}
