//! Per-ranker cost of one black-box poison observation (a warm
//! fine-tune followed by a RecNum evaluation) — the inner-loop
//! operation Algorithm 1 pays `M` times per step. Small Steam twin.

use bench::ExpArgs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::PaperDataset;
use recsys::data::Trajectory;
use recsys::rankers::RankerKind;

fn bench_observation(c: &mut Criterion) {
    let mut group = c.benchmark_group("inject_and_observe");
    group.sample_size(10);
    let args = ExpArgs {
        scale: 0.05,
        eval_users: 64,
        ..ExpArgs::default()
    };
    for ranker in RankerKind::ALL {
        let system = args.build_system(PaperDataset::Steam, ranker);
        let targets = system.public_info().target_items;
        let poison: Vec<Trajectory> = (0..8usize)
            .map(|a| (0..10).map(|t| targets[(a + t) % targets.len()]).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(ranker.name()),
            &ranker,
            |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    criterion::black_box(system.inject_and_observe_seeded(&poison, seed))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_observation);
criterion_main!(benches);
