//! E1 (micro) — action-space sampling cost, Plain vs BCBT, across item
//! set sizes. The paper's complexity claim (§III-F): Plain is
//! `O(|I|·|e|)` per sampled item, BCBT is `O(log|I|·|e|)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poisonrec::{ActionSpace, ActionSpaceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Matrix;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("action_sampling");
    let dim = 32;
    for &n in &[3_000u32, 10_000, 30_000] {
        let popularity: Vec<u32> = (0..n).map(|i| n - i).collect();
        for kind in [ActionSpaceKind::Plain, ActionSpaceKind::BcbtPopular] {
            let space = ActionSpace::build(kind, n, 8, &popularity, 7);
            let mut rng = StdRng::seed_from_u64(1);
            let emb = Matrix::uniform(space.table_rows(), dim, 0.1, &mut rng);
            let d: Vec<f32> = (0..dim).map(|_| rng.gen_range(-0.1..0.1)).collect();
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| {
                    let (item, trail) = space.sample(&d, &emb, &mut rng);
                    criterion::black_box((item, trail.len()))
                })
            });
        }
    }
    group.finish();
}

fn bench_bcbt_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcbt_build");
    for &n in &[3_000u32, 30_000] {
        let popularity: Vec<u32> = (0..n).map(|i| n - i).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                criterion::black_box(ActionSpace::build(
                    ActionSpaceKind::BcbtPopular,
                    n,
                    8,
                    &popularity,
                    7,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sampling, bench_bcbt_build
}
criterion_main!(benches);
