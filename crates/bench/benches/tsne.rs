//! Microbenchmark for the exact t-SNE used by the Figure 6 driver.

use analysis::{tsne_2d, TsneConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_tsne(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsne");
    group.sample_size(10);
    let d = 16;
    for &n in &[100usize, 300] {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cfg = TsneConfig {
            iterations: 50,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| criterion::black_box(tsne_2d(&data, d, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tsne);
criterion_main!(benches);
