//! In-crate integration tests for the black-box harness: the contract
//! between fine-tuning, snapshotting, and the RecNum protocol.

use recsys::data::{Dataset, LogView, Trajectory};
use recsys::defense::{filter_poison, RepetitionDetector};
use recsys::rankers::RankerKind;
use recsys::system::{BlackBoxSystem, SystemConfig};

fn toy_dataset(seed_shift: u32) -> Dataset {
    let histories = (0..80u32)
        .map(|u| {
            (0..7)
                .map(|t| (u * 5 + t * 11 + seed_shift) % 120)
                .collect()
        })
        .collect();
    Dataset::from_histories("toy", histories, 120, 8)
}

fn cfg() -> SystemConfig {
    SystemConfig {
        eval_users: 40,
        reserve_attackers: 16,
        ..SystemConfig::default()
    }
}

#[test]
fn snapshot_isolation_between_observations() {
    // Two observations of *different* poisons must not contaminate each
    // other: observing A then B equals observing B alone.
    let system = BlackBoxSystem::build(
        toy_dataset(0),
        Box::new(recsys::rankers::ItemPop::new()),
        cfg(),
    );
    let t0 = system.public_info().target_items[0];
    let t1 = system.public_info().target_items[1];
    let poison_a: Vec<Trajectory> = vec![vec![t0; 12]; 4];
    let poison_b: Vec<Trajectory> = vec![vec![t1; 12]; 4];

    let b_alone = system.inject_and_observe_seeded(&poison_b, 9);
    let _ = system.inject_and_observe_seeded(&poison_a, 9);
    let b_after_a = system.inject_and_observe_seeded(&poison_b, 9);
    assert_eq!(b_alone, b_after_a, "clean snapshot leaked state");
}

#[test]
fn every_ranker_builds_fits_and_scores() {
    let data = toy_dataset(1);
    let view = LogView::clean(&data);
    for kind in RankerKind::ALL {
        let mut ranker = kind.build(&view, 8);
        ranker.fit(&view, 3);
        let scores = ranker.score(0, data.sequence(0), &[0, 1, 125]);
        assert_eq!(scores.len(), 3, "{kind}");
        assert!(scores.iter().all(|s| s.is_finite()), "{kind}");
        // fine_tune with empty poison must not crash.
        ranker.fine_tune(&view, 4);
        // Clone must be independent.
        let snapshot = ranker.boxed_clone();
        assert_eq!(snapshot.name(), ranker.name());
    }
}

#[test]
fn item_embeddings_present_where_expected() {
    let data = toy_dataset(2);
    let view = LogView::clean(&data);
    for kind in RankerKind::ALL {
        let mut ranker = kind.build(&view, 8);
        ranker.fit(&view, 3);
        let has = ranker.item_embeddings().is_some();
        let expected = !matches!(
            kind,
            RankerKind::ItemPop | RankerKind::CoVisitation | RankerKind::AutoRec
        );
        assert_eq!(has, expected, "{kind} embeddings presence");
        if let Some(emb) = ranker.item_embeddings() {
            assert_eq!(emb.rows(), data.catalog() as usize, "{kind} embedding rows");
            assert!(!emb.has_non_finite(), "{kind} embeddings non-finite");
        }
    }
}

#[test]
fn defended_observation_never_exceeds_undefended_budget() {
    let system = BlackBoxSystem::build(
        toy_dataset(3),
        Box::new(recsys::rankers::ItemPop::new()),
        cfg(),
    );
    let t0 = system.public_info().target_items[0];
    let poison: Vec<Trajectory> = (0..8).map(|_| vec![t0; 12]).collect();
    let report = filter_poison(&RepetitionDetector, system.base(), &poison, 0.02);
    // Pure-burst attackers should mostly be caught.
    assert!(
        report.surviving.len() < poison.len(),
        "no attacker flagged by an obvious burst"
    );
    let defended = system.inject_and_observe_seeded(&report.surviving, 5);
    let undefended = system.inject_and_observe_seeded(&poison, 5);
    assert!(defended <= undefended, "defense increased exposure");
}

#[test]
fn rec_num_is_monotone_in_attack_strength_for_itempop() {
    // More clicks on the same target cannot reduce its popularity rank.
    let system = BlackBoxSystem::build(
        toy_dataset(4),
        Box::new(recsys::rankers::ItemPop::new()),
        cfg(),
    );
    let t0 = system.public_info().target_items[0];
    let weak: Vec<Trajectory> = vec![vec![t0; 4]; 2];
    let strong: Vec<Trajectory> = vec![vec![t0; 16]; 8];
    let weak_score = system.inject_and_observe_seeded(&weak, 1);
    let strong_score = system.inject_and_observe_seeded(&strong, 1);
    assert!(strong_score >= weak_score, "{strong_score} < {weak_score}");
}

#[test]
fn protocol_rec_num_bounded_by_max() {
    let system = BlackBoxSystem::build(
        toy_dataset(5),
        Box::new(recsys::rankers::ItemPop::new()),
        cfg(),
    );
    let info = system.public_info();
    // Saturate: huge budget on all targets.
    let poison: Vec<Trajectory> = (0..16)
        .map(|a| (0..16).map(|t| info.target_items[(a + t) % 8]).collect())
        .collect();
    let rec_num = system.inject_and_observe_seeded(&poison, 1);
    assert!(rec_num <= system.max_rec_num());
}
