//! The attack-zoo contract: one [`Attack`] trait for every poisoning
//! family, with declared capabilities, hard budgets, and typed
//! refusals (DESIGN.md §5h).
//!
//! PoisonRec is one point in a space of black-box poisoning attacks.
//! The related work (influence-function promotion, approximate-
//! gradient ascent, co-visitation injection, popularity heuristics)
//! differs along two axes the zoo makes explicit:
//!
//! * **Capabilities** ([`AttackCaps`]) — what the attack *needs* from
//!   the victim: exact model gradients (`gradient_required`), the
//!   system's interaction log / model internals (`model_required`), or
//!   RecNum query access (`queries_system`). A mismatch between an
//!   attack's needs and what a system provides is a typed
//!   [`AttackError::Capability`], never a panic: the experiment
//!   driver refuses the cell up front.
//! * **Budgets** ([`AttackBudget`]) — how much the attack may spend:
//!   fake accounts, clicks per account, and black-box observations
//!   (the paper's query budget). Budgets are *enforced and counted at
//!   the [`ObservableSystem`] boundary* by [`GuardedSystem`], not on
//!   the honor system — an attack that tries to overspend gets a
//!   typed [`AttackError::Budget`] back (or, if it bypasses the
//!   fallible path, a panic at the hard boundary), and every event it
//!   does spend is tallied in [`BudgetUsage`].
//!
//! ## Observation-stream discipline
//!
//! Attacks run through a [`GuardedSystem`] borrow and must route every
//! observation through it. The guard forwards to the underlying
//! system's pre-seeded ordinal stream, so the repo's determinism
//! invariants survive for free: a zoo attack is bit-identical across
//! thread counts, in-process vs over the wire ([`crate::remote`]), and
//! kill+resume — the conformance suite (`tests/attack_conformance.rs`)
//! pins all three for **every** registered family.
//!
//! ## Checkpointing
//!
//! [`Attack::state_bytes`] / [`Attack::restore_state`] round-trip the
//! attack's complete mutable state (RNG position, learned matrices,
//! bests) through the little-endian [`tensor::wire`] codecs; the zoo
//! driver seals them into the versioned checkpoint container together
//! with the guard's usage ledger.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::data::Trajectory;
use crate::system::{ConfigError, ObservableSystem, Observation, PublicInfo, SystemConfig};

pub use tensor::wire::{Codec, Reader, WireError, Writer};

/// What a victim system can provide to an attack. The zoo's systems
/// are black boxes: no current [`ObservableSystem`] exposes gradients,
/// so `gradient_required` attacks are refused everywhere — the typed
/// error (not a panic) is itself part of the contract and is pinned by
/// the capability-mismatch property tests.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SystemCaps {
    /// The system hands out exact model gradients (white-box access).
    pub gradients: bool,
}

/// Capability metadata an attack declares up front (the ARLib idiom:
/// `recommenderGradientRequired` / `recommenderModelRequired`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AttackCaps {
    /// Needs exact gradients of the victim model (white-box).
    pub gradient_required: bool,
    /// Needs the system's interaction log (gray-box prior knowledge,
    /// supplied to the attack at construction time — never crawled
    /// through the black-box interface).
    pub model_required: bool,
    /// Spends black-box observations (RecNum queries) while running.
    pub queries_system: bool,
}

/// The attacker's spend limits, enforced by [`GuardedSystem`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AttackBudget {
    /// Fake accounts (`N`): no injected poison may contain more
    /// trajectories than this.
    pub fake_users: u32,
    /// Clicks per fake account (`T`): no injected trajectory may be
    /// longer than this.
    pub clicks_per_user: usize,
    /// Black-box observations (the query budget `Q`). Zero is legal:
    /// the log-free heuristics never query during crafting.
    pub observations: u64,
}

impl AttackBudget {
    /// A validating builder; degenerate `N`/`T` values are refused at
    /// construction rather than surfacing as empty poisons mid-grid.
    pub fn builder() -> AttackBudgetBuilder {
        AttackBudgetBuilder {
            budget: AttackBudget {
                fake_users: 8,
                clicks_per_user: 12,
                observations: 0,
            },
        }
    }
}

/// Builds an [`AttackBudget`], rejecting zero-sized account or click
/// budgets (an observation budget of zero is meaningful — see
/// [`AttackBudget::observations`]).
#[derive(Copy, Clone, Debug)]
pub struct AttackBudgetBuilder {
    budget: AttackBudget,
}

impl AttackBudgetBuilder {
    pub fn fake_users(mut self, fake_users: u32) -> Self {
        self.budget.fake_users = fake_users;
        self
    }

    pub fn clicks_per_user(mut self, clicks_per_user: usize) -> Self {
        self.budget.clicks_per_user = clicks_per_user;
        self
    }

    pub fn observations(mut self, observations: u64) -> Self {
        self.budget.observations = observations;
        self
    }

    pub fn build(self) -> Result<AttackBudget, ConfigError> {
        let budget = self.budget;
        if budget.fake_users == 0 {
            return Err(ConfigError {
                field: "fake_users",
                message: "an attack needs at least one fake account".into(),
            });
        }
        if budget.clicks_per_user == 0 {
            return Err(ConfigError {
                field: "clicks_per_user",
                message: "zero-click accounts cannot express any poison".into(),
            });
        }
        Ok(budget)
    }
}

/// Which budget axis an overspend hit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    FakeUsers,
    ClicksPerUser,
    Observations,
}

impl BudgetKind {
    fn noun(self) -> &'static str {
        match self {
            BudgetKind::FakeUsers => "fake users",
            BudgetKind::ClicksPerUser => "clicks per user",
            BudgetKind::Observations => "observations",
        }
    }
}

/// A refused overspend: the attack asked for `requested` of a
/// resource it declared only `declared` of.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BudgetViolation {
    pub kind: BudgetKind,
    pub requested: u64,
    pub declared: u64,
}

impl std::fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget violation: {} {} requested but only {} declared",
            self.requested,
            self.kind.noun(),
            self.declared
        )
    }
}

/// Typed refusals from the attack layer. Every recoverable failure an
/// [`Attack`] or the zoo driver can hit maps onto one of these — the
/// conformance and property suites assert attacks *return* them
/// instead of panicking.
#[derive(Clone, Debug, PartialEq)]
pub enum AttackError {
    /// The attack needs something this system (or this construction)
    /// does not provide.
    Capability { attack: String, needs: &'static str },
    /// An observation or injection would overspend the declared budget.
    Budget(BudgetViolation),
    /// A configuration value failed validation.
    Config(ConfigError),
    /// Invalid lifecycle or corrupted serialized state.
    State(String),
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::Capability { attack, needs } => {
                write!(f, "attack {attack} refused: requires {needs}")
            }
            AttackError::Budget(v) => v.fmt(f),
            AttackError::Config(e) => e.fmt(f),
            AttackError::State(msg) => write!(f, "invalid attack state: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<ConfigError> for AttackError {
    fn from(e: ConfigError) -> Self {
        AttackError::Config(e)
    }
}

impl From<WireError> for AttackError {
    fn from(e: WireError) -> Self {
        AttackError::State(e.to_string())
    }
}

/// The guard's tally of what an attack has actually spent. Counters
/// are atomic for the same reason the system's observation counter is:
/// observations may be scored concurrently.
#[derive(Debug, Default)]
pub struct BudgetUsage {
    observations: AtomicU64,
    feedback_events: AtomicU64,
    peak_fake_users: AtomicU64,
    peak_clicks_per_user: AtomicU64,
}

/// A plain-data copy of [`BudgetUsage`] for reports and checkpoints.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UsageSnapshot {
    /// Observations consumed through the guard.
    pub observations: u64,
    /// Total injected feedback events (clicks) across all observations.
    pub feedback_events: u64,
    /// Largest number of fake accounts in any single injection.
    pub peak_fake_users: u64,
    /// Longest injected trajectory.
    pub peak_clicks_per_user: u64,
}

impl BudgetUsage {
    pub fn snapshot(&self) -> UsageSnapshot {
        UsageSnapshot {
            observations: self.observations.load(Ordering::Relaxed),
            feedback_events: self.feedback_events.load(Ordering::Relaxed),
            peak_fake_users: self.peak_fake_users.load(Ordering::Relaxed),
            peak_clicks_per_user: self.peak_clicks_per_user.load(Ordering::Relaxed),
        }
    }

    fn restore(&self, snapshot: UsageSnapshot) {
        self.observations
            .store(snapshot.observations, Ordering::Relaxed);
        self.feedback_events
            .store(snapshot.feedback_events, Ordering::Relaxed);
        self.peak_fake_users
            .store(snapshot.peak_fake_users, Ordering::Relaxed);
        self.peak_clicks_per_user
            .store(snapshot.peak_clicks_per_user, Ordering::Relaxed);
    }

    fn record(&self, batch: &[&[Trajectory]]) {
        self.observations
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for poison in batch {
            self.peak_fake_users
                .fetch_max(poison.len() as u64, Ordering::Relaxed);
            for traj in poison.iter() {
                self.feedback_events
                    .fetch_add(traj.len() as u64, Ordering::Relaxed);
                self.peak_clicks_per_user
                    .fetch_max(traj.len() as u64, Ordering::Relaxed);
            }
        }
    }
}

/// The budget boundary every zoo attack runs behind: a borrowed
/// [`ObservableSystem`] plus the declared [`AttackBudget`] and the
/// live [`BudgetUsage`] ledger.
///
/// The fallible entry points ([`GuardedSystem::try_observe_batch`] /
/// [`GuardedSystem::try_observe`]) validate *before* touching the
/// inner system — a refused observation consumes nothing from the
/// seed stream — and tally afterwards. The guard also implements
/// [`ObservableSystem`] itself so existing trainers can run unchanged
/// behind it; on that path a violation is a panic (the hard boundary),
/// which is why well-behaved adapters pre-check through
/// [`GuardedSystem::observations_left`].
pub struct GuardedSystem<'a> {
    inner: &'a dyn ObservableSystem,
    budget: AttackBudget,
    usage: BudgetUsage,
}

impl<'a> GuardedSystem<'a> {
    pub fn new(inner: &'a dyn ObservableSystem, budget: AttackBudget) -> Self {
        Self {
            inner,
            budget,
            usage: BudgetUsage::default(),
        }
    }

    pub fn budget(&self) -> AttackBudget {
        self.budget
    }

    pub fn usage(&self) -> UsageSnapshot {
        self.usage.snapshot()
    }

    /// Observations still available under the declared budget.
    pub fn observations_left(&self) -> u64 {
        self.budget
            .observations
            .saturating_sub(self.usage.snapshot().observations)
    }

    /// Checkpoint resume: restores the usage ledger to a snapshot
    /// taken by a previous (killed) run over an identically built
    /// system.
    pub fn restore_usage(&self, snapshot: UsageSnapshot) {
        self.usage.restore(snapshot);
    }

    fn check(&self, batch: &[&[Trajectory]]) -> Result<(), BudgetViolation> {
        for poison in batch {
            if poison.len() as u64 > self.budget.fake_users as u64 {
                return Err(BudgetViolation {
                    kind: BudgetKind::FakeUsers,
                    requested: poison.len() as u64,
                    declared: self.budget.fake_users as u64,
                });
            }
            for traj in poison.iter() {
                if traj.len() > self.budget.clicks_per_user {
                    return Err(BudgetViolation {
                        kind: BudgetKind::ClicksPerUser,
                        requested: traj.len() as u64,
                        declared: self.budget.clicks_per_user as u64,
                    });
                }
            }
        }
        let spent = self.usage.snapshot().observations;
        let requested = spent + batch.len() as u64;
        if requested > self.budget.observations {
            return Err(BudgetViolation {
                kind: BudgetKind::Observations,
                requested,
                declared: self.budget.observations,
            });
        }
        Ok(())
    }

    /// Budget-checked [`ObservableSystem::observe_batch`]: refuses the
    /// whole batch (spending nothing) on any violation.
    pub fn try_observe_batch(
        &self,
        batch: &[&[Trajectory]],
        threads: usize,
    ) -> Result<Vec<Observation>, AttackError> {
        self.check(batch).map_err(AttackError::Budget)?;
        let observations = self.inner.observe_batch(batch, threads);
        self.usage.record(batch);
        Ok(observations)
    }

    /// Budget-checked single observation.
    pub fn try_observe(&self, poison: &[Trajectory]) -> Result<Observation, AttackError> {
        let mut obs = self.try_observe_batch(&[poison], 1)?;
        Ok(obs.remove(0))
    }
}

impl ObservableSystem for GuardedSystem<'_> {
    fn config(&self) -> &SystemConfig {
        self.inner.config()
    }

    fn public_info(&self) -> PublicInfo {
        self.inner.public_info()
    }

    fn ranker_name(&self) -> &str {
        self.inner.ranker_name()
    }

    fn observations_spent(&self) -> u64 {
        self.inner.observations_spent()
    }

    fn restore_observations_spent(&self, spent: u64) -> Result<(), ConfigError> {
        self.inner.restore_observations_spent(spent)
    }

    /// The hard boundary: same accounting as
    /// [`GuardedSystem::try_observe_batch`], but a violation panics.
    /// Attacks that drive pre-zoo trainers through the plain trait
    /// cannot silently bypass the budget — at worst they crash into it.
    fn observe_batch(&self, batch: &[&[Trajectory]], threads: usize) -> Vec<Observation> {
        match self.try_observe_batch(batch, threads) {
            Ok(observations) => observations,
            Err(e) => panic!("attack overspent its declared budget: {e}"),
        }
    }

    fn caps(&self) -> SystemCaps {
        self.inner.caps()
    }

    fn defense_state(&self) -> Vec<u8> {
        self.inner.defense_state()
    }

    fn restore_defense_state(&self, state: &[u8]) -> Result<(), ConfigError> {
        self.inner.restore_defense_state(state)
    }
}

/// Per-step report every attack returns from [`Attack::step`] — the
/// unit the conformance suite compares bit-for-bit across thread
/// counts, transports, and kill+resume.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AttackStepStats {
    /// 0-based step ordinal.
    pub step: usize,
    /// The step's headline reward (family-specific: mean episode
    /// RecNum for PoisonRec, probe RecNum for SPSA, the round's
    /// observation for influence). `None` for crafting-only steps.
    pub reward: Option<f32>,
    /// Best reward seen so far, if the family tracks one.
    pub best_reward: Option<f32>,
    /// Cumulative observations spent through the guard after this step.
    pub observations: u64,
}

impl Codec for AttackStepStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.step as u64);
        match self.reward {
            Some(r) => {
                w.put_u8(1);
                w.put_f32(r);
            }
            None => w.put_u8(0),
        }
        match self.best_reward {
            Some(r) => {
                w.put_u8(1);
                w.put_f32(r);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.observations);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let step = r.get_u64("step")? as usize;
        let reward = match r.get_u8("reward tag")? {
            0 => None,
            _ => Some(r.get_f32("reward")?),
        };
        let best_reward = match r.get_u8("best reward tag")? {
            0 => None,
            _ => Some(r.get_f32("best reward")?),
        };
        let observations = r.get_u64("observations")?;
        Ok(Self {
            step,
            reward,
            best_reward,
            observations,
        })
    }
}

/// One poisoning attack family, step-driven so a single zoo driver can
/// checkpoint, fault-inject, and meter every family identically.
///
/// ## Contract
///
/// * [`Attack::step`] advances the attack by one unit of work, routing
///   **all** observations through the supplied [`GuardedSystem`]. It
///   must be deterministic given the attack's state and the system's
///   observation stream — in particular independent of `threads`.
/// * [`Attack::poison`] returns the crafted `N × T` injection without
///   consuming observations or mutating state.
/// * [`Attack::state_bytes`] / [`Attack::restore_state`] round-trip
///   the complete mutable state: a restored attack's next `step` must
///   produce exactly the bytes the original's would have.
/// * Recoverable failures are typed [`AttackError`]s, never panics.
pub trait Attack: Send {
    /// Paper name of the family (stable: fingerprinted into zoo
    /// checkpoints).
    fn name(&self) -> &'static str;

    /// Declared capability requirements.
    fn caps(&self) -> AttackCaps;

    /// Steps this attack wants to run under its configuration.
    fn planned_steps(&self) -> usize;

    /// Steps completed so far.
    fn steps_done(&self) -> usize;

    /// One unit of work (craft, probe, or train), spending
    /// observations only through `system`.
    fn step(
        &mut self,
        system: &GuardedSystem<'_>,
        threads: usize,
    ) -> Result<AttackStepStats, AttackError>;

    /// The crafted poison to deploy. Errors until enough steps ran.
    fn poison(&self) -> Result<Vec<Trajectory>, AttackError>;

    /// Serializes the complete mutable state for checkpointing.
    fn state_bytes(&self) -> Vec<u8>;

    /// Restores state serialized by [`Attack::state_bytes`] on a
    /// freshly constructed instance (same configuration and seed).
    fn restore_state(
        &mut self,
        bytes: &[u8],
        system: &GuardedSystem<'_>,
    ) -> Result<(), AttackError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::rankers::ItemPop;
    use crate::system::{BlackBoxSystem, SystemConfig};

    fn toy_system() -> BlackBoxSystem {
        let histories = (0..30u32)
            .map(|u| (0..6).map(|t| (u + t * 3) % 40).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 40, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 16,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    fn budget(n: u32, t: usize, q: u64) -> AttackBudget {
        AttackBudget {
            fake_users: n,
            clicks_per_user: t,
            observations: q,
        }
    }

    #[test]
    fn budget_builder_rejects_degenerate_axes() {
        assert!(AttackBudget::builder().observations(0).build().is_ok());
        let err = AttackBudget::builder()
            .fake_users(0)
            .build()
            .expect_err("zero accounts");
        assert_eq!(err.field, "fake_users");
        let err = AttackBudget::builder()
            .clicks_per_user(0)
            .build()
            .expect_err("zero clicks");
        assert_eq!(err.field, "clicks_per_user");
    }

    #[test]
    fn guard_meters_and_refuses_each_axis() {
        let system = toy_system();
        let target = system.public_info().target_items[0];
        let guard = GuardedSystem::new(&system, budget(2, 4, 2));

        let ok: Vec<Trajectory> = vec![vec![target; 4]; 2];
        guard.try_observe(&ok).expect("within budget");
        assert_eq!(guard.usage().observations, 1);
        assert_eq!(guard.usage().feedback_events, 8);
        assert_eq!(guard.usage().peak_fake_users, 2);
        assert_eq!(guard.usage().peak_clicks_per_user, 4);

        let too_many_users: Vec<Trajectory> = vec![vec![target; 1]; 3];
        match guard.try_observe(&too_many_users) {
            Err(AttackError::Budget(v)) => assert_eq!(v.kind, BudgetKind::FakeUsers),
            other => panic!("expected fake-user violation, got {other:?}"),
        }

        let too_long: Vec<Trajectory> = vec![vec![target; 5]];
        match guard.try_observe(&too_long) {
            Err(AttackError::Budget(v)) => assert_eq!(v.kind, BudgetKind::ClicksPerUser),
            other => panic!("expected clicks violation, got {other:?}"),
        }

        // Refusals spent nothing.
        assert_eq!(guard.usage().observations, 1);
        assert_eq!(system.observations_spent(), 1);

        guard.try_observe(&ok).expect("second observation");
        match guard.try_observe(&ok) {
            Err(AttackError::Budget(v)) => {
                assert_eq!(v.kind, BudgetKind::Observations);
                assert_eq!(v.declared, 2);
            }
            other => panic!("expected observation violation, got {other:?}"),
        }
        assert_eq!(guard.observations_left(), 0);
    }

    #[test]
    fn guard_refusal_consumes_no_seed_ordinal() {
        // A refused batch must not perturb the seed stream: the next
        // accepted observation draws the same seed it would have drawn
        // had the refusal never happened.
        let reference = toy_system();
        let guarded = toy_system();
        let target = reference.public_info().target_items[0];
        let poison: Vec<Trajectory> = vec![vec![target; 3]];

        let guard = GuardedSystem::new(&guarded, budget(1, 3, 8));
        let oversized: Vec<Trajectory> = vec![vec![target; 99]];
        assert!(guard.try_observe(&oversized).is_err());
        let a = guard.try_observe(&poison).expect("accepted");
        let b = reference.observe(&poison);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "overspent")]
    fn hard_boundary_panics_on_bypass() {
        let system = toy_system();
        let guard = GuardedSystem::new(&system, budget(1, 2, 0));
        let erased: &dyn ObservableSystem = &guard;
        let poison: Vec<Trajectory> = vec![vec![0, 1]];
        let _ = erased.observe_batch(&[&poison], 1);
    }

    #[test]
    fn step_stats_round_trip_bit_exactly() {
        for stats in [
            AttackStepStats {
                step: 0,
                reward: None,
                best_reward: None,
                observations: 0,
            },
            AttackStepStats {
                step: 7,
                reward: Some(-0.0),
                best_reward: Some(f32::MAX),
                observations: 41,
            },
        ] {
            let back = AttackStepStats::from_bytes(&stats.to_bytes()).expect("decodes");
            assert_eq!(back.step, stats.step);
            assert_eq!(
                back.reward.map(f32::to_bits),
                stats.reward.map(f32::to_bits)
            );
            assert_eq!(
                back.best_reward.map(f32::to_bits),
                stats.best_reward.map(f32::to_bits)
            );
            assert_eq!(back.observations, stats.observations);
        }
    }

    #[test]
    fn black_box_systems_declare_no_gradients() {
        let system = toy_system();
        assert_eq!(ObservableSystem::caps(&system), SystemCaps::default());
        assert!(!ObservableSystem::caps(&system).gradients);
    }
}
