//! Interaction-log data model shared by the rankers, the black-box
//! harness, the dataset generators, and the attack framework.
//!
//! A [`Dataset`] stores one ordered implicit-feedback item sequence per
//! user (clicks, ordered by time), the catalog size, and the identity of
//! the *target items* — the 8 brand-new items (paper §III, Table I) the
//! attacker wants to promote. Target items carry no organic
//! interactions. A [`LogView`] overlays attacker trajectories on top of
//! a dataset without copying it.

/// Item identifier. Targets occupy the tail of the id space.
pub type ItemId = u32;
/// User identifier. Attackers occupy ids `>= Dataset::num_users()`.
pub type UserId = u32;

/// One attacker's ordered fake click sequence (length `T` in the paper).
pub type Trajectory = Vec<ItemId>;

/// Leave-one-out evaluation split: for each user with `k >= 3`
/// behaviors, `b_k` is test, `b_{k-1}` validation, the rest train
/// (paper §IV-A).
#[derive(Clone, Debug, Default)]
pub struct HoldOut {
    /// `(user, held-out item)` pairs.
    pub pairs: Vec<(UserId, ItemId)>,
}

/// An implicit-feedback recommendation dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    /// Train-split click sequences, one per user, time-ordered.
    sequences: Vec<Vec<ItemId>>,
    /// Number of *original* items (`|I|`); ids `0..num_items`.
    num_items: u32,
    /// Number of target items (`|I_t|`); ids `num_items..catalog`.
    num_targets: u32,
    validation: HoldOut,
    test: HoldOut,
}

impl Dataset {
    /// Builds a dataset from per-user full histories, applying the
    /// leave-one-out split. Users with fewer than `min_len` behaviors
    /// are dropped (the paper filters at 3).
    pub fn from_histories(
        name: impl Into<String>,
        histories: Vec<Vec<ItemId>>,
        num_items: u32,
        num_targets: u32,
    ) -> Self {
        let min_len = 3;
        let mut sequences = Vec::with_capacity(histories.len());
        let mut validation = HoldOut::default();
        let mut test = HoldOut::default();
        for history in histories {
            if history.len() < min_len {
                continue;
            }
            debug_assert!(
                history.iter().all(|&i| i < num_items),
                "history uses target ids"
            );
            let user = sequences.len() as UserId;
            let k = history.len();
            test.pairs.push((user, history[k - 1]));
            validation.pairs.push((user, history[k - 2]));
            sequences.push(history[..k - 2].to_vec());
        }
        Self {
            name: name.into(),
            sequences,
            num_items,
            num_targets,
            validation,
            test,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of organic users.
    pub fn num_users(&self) -> u32 {
        self.sequences.len() as u32
    }

    /// `|I|`: number of original items.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// `|I_t|`: number of target items.
    pub fn num_targets(&self) -> u32 {
        self.num_targets
    }

    /// Full catalog size `|I| + |I_t|`; embedding tables use this.
    pub fn catalog(&self) -> u32 {
        self.num_items + self.num_targets
    }

    /// The target item ids (the tail of the id space).
    pub fn target_items(&self) -> impl ExactSizeIterator<Item = ItemId> + Clone {
        self.num_items..self.catalog()
    }

    pub fn is_target(&self, item: ItemId) -> bool {
        item >= self.num_items && item < self.catalog()
    }

    /// Train-split click sequence of `user`.
    pub fn sequence(&self, user: UserId) -> &[ItemId] {
        &self.sequences[user as usize]
    }

    pub fn sequences(&self) -> &[Vec<ItemId>] {
        &self.sequences
    }

    /// Total number of train interactions.
    pub fn num_interactions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    pub fn validation(&self) -> &HoldOut {
        &self.validation
    }

    pub fn test(&self) -> &HoldOut {
        &self.test
    }

    /// Per-item click counts over the train split (length = catalog;
    /// targets are zero).
    pub fn popularity(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.catalog() as usize];
        for seq in &self.sequences {
            for &item in seq {
                counts[item as usize] += 1;
            }
        }
        counts
    }

    /// Original items sorted by descending popularity (ties by id).
    pub fn items_by_popularity(&self) -> Vec<ItemId> {
        let pop = self.popularity();
        let mut items: Vec<ItemId> = (0..self.num_items).collect();
        items.sort_by(|&a, &b| pop[b as usize].cmp(&pop[a as usize]).then(a.cmp(&b)));
        items
    }

    /// The top `k%` most popular original items (`I_p` in the paper).
    pub fn popular_set(&self, percent: f64) -> Vec<ItemId> {
        let ranked = self.items_by_popularity();
        let take = ((ranked.len() as f64) * percent / 100.0).ceil().max(1.0) as usize;
        ranked
            .into_iter()
            .take(take.min(self.num_items as usize))
            .collect()
    }
}

/// A dataset plus injected attacker trajectories, presented as one log.
///
/// Attackers are appended as synthetic users: user ids
/// `0..base.num_users()` are organic, ids `base.num_users()..num_users()`
/// index into `poison`.
#[derive(Copy, Clone)]
pub struct LogView<'a> {
    base: &'a Dataset,
    poison: &'a [Trajectory],
}

impl<'a> LogView<'a> {
    pub fn new(base: &'a Dataset, poison: &'a [Trajectory]) -> Self {
        debug_assert!(poison.iter().flatten().all(|&i| i < base.catalog()));
        Self { base, poison }
    }

    /// A view with no poison.
    pub fn clean(base: &'a Dataset) -> Self {
        Self { base, poison: &[] }
    }

    pub fn base(&self) -> &'a Dataset {
        self.base
    }

    pub fn poison(&self) -> &'a [Trajectory] {
        self.poison
    }

    /// Organic + attacker users.
    pub fn num_users(&self) -> u32 {
        self.base.num_users() + self.poison.len() as u32
    }

    pub fn catalog(&self) -> u32 {
        self.base.catalog()
    }

    /// The click sequence of any user (organic or attacker).
    pub fn sequence(&self, user: UserId) -> &'a [ItemId] {
        let organic = self.base.num_users();
        if user < organic {
            self.base.sequence(user)
        } else {
            &self.poison[(user - organic) as usize]
        }
    }

    /// Iterates all `(user, item)` interactions, organic then poison.
    pub fn interactions(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        let organic = self.base.num_users();
        self.base
            .sequences()
            .iter()
            .enumerate()
            .flat_map(|(u, seq)| seq.iter().map(move |&i| (u as UserId, i)))
            .chain(
                self.poison
                    .iter()
                    .enumerate()
                    .flat_map(move |(a, seq)| seq.iter().map(move |&i| (organic + a as UserId, i))),
            )
    }

    /// Total interaction count.
    pub fn num_interactions(&self) -> usize {
        self.base.num_interactions() + self.poison.iter().map(Vec::len).sum::<usize>()
    }

    /// Per-item counts including poison (length = catalog).
    pub fn popularity(&self) -> Vec<u32> {
        let mut counts = self.base.popularity();
        for traj in self.poison {
            for &item in traj {
                counts[item as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_histories(
            "toy",
            vec![
                vec![0, 1, 2, 3, 4], // train [0,1,2], val 3, test 4
                vec![1, 2, 3],       // train [1], val 2, test 3
                vec![0, 1],          // dropped (< 3)
            ],
            5,
            2,
        )
    }

    #[test]
    fn split_is_leave_one_out() {
        let d = toy();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.sequence(0), &[0, 1, 2]);
        assert_eq!(d.sequence(1), &[1]);
        assert_eq!(d.validation().pairs, vec![(0, 3), (1, 2)]);
        assert_eq!(d.test().pairs, vec![(0, 4), (1, 3)]);
    }

    #[test]
    fn target_ids_follow_catalog() {
        let d = toy();
        assert_eq!(d.catalog(), 7);
        let targets: Vec<_> = d.target_items().collect();
        assert_eq!(targets, vec![5, 6]);
        assert!(d.is_target(5));
        assert!(!d.is_target(4));
    }

    #[test]
    fn popularity_counts_train_only() {
        let d = toy();
        let pop = d.popularity();
        assert_eq!(pop[0], 1); // user0 train only
        assert_eq!(pop[1], 2); // user0 + user1
        assert_eq!(pop[3], 0); // val item not counted
        assert_eq!(pop[5], 0); // target
    }

    #[test]
    fn items_by_popularity_is_sorted() {
        let d = toy();
        let ranked = d.items_by_popularity();
        assert_eq!(ranked[0], 1);
        let pop = d.popularity();
        for w in ranked.windows(2) {
            assert!(pop[w[0] as usize] >= pop[w[1] as usize]);
        }
    }

    #[test]
    fn popular_set_size() {
        let d = toy();
        assert_eq!(d.popular_set(10.0).len(), 1);
        assert_eq!(d.popular_set(100.0).len(), 5);
    }

    #[test]
    fn log_view_overlays_poison() {
        let d = toy();
        let poison = vec![vec![5, 1, 5]];
        let v = LogView::new(&d, &poison);
        assert_eq!(v.num_users(), 3);
        assert_eq!(v.sequence(2), &[5, 1, 5]);
        assert_eq!(v.num_interactions(), d.num_interactions() + 3);
        let pop = v.popularity();
        assert_eq!(pop[5], 2);
        assert_eq!(pop[1], 3);
        let all: Vec<_> = v.interactions().collect();
        assert_eq!(all.len(), v.num_interactions());
        assert_eq!(all.last(), Some(&(2, 5)));
    }
}
