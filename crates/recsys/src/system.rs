//! The black-box recommender system as the attacker sees it.
//!
//! [`BlackBoxSystem`] wraps a dataset, a fitted ranker, and the
//! evaluation protocol, exposing exactly the interface the paper's
//! threat model allows:
//!
//! * [`BlackBoxSystem::inject_and_observe`] — hand over fake
//!   trajectories, get back the resulting *RecNum*. Internally this is
//!   the paper's `DataPoisoning` routine: the clean ranker is snapshot-
//!   cloned, warm-updated with the poisoned log, and polled for
//!   recommendations. Nothing about the ranker leaks out.
//! * [`BlackBoxSystem::observe_batch`] — the same observation for a
//!   whole batch of candidate poisons at once, fanned out over a
//!   worker pool. Seeds are assigned per slot *before* dispatch, so
//!   the results are identical for any thread count.
//! * [`BlackBoxSystem::public_info`] — item count, target ids, and item
//!   popularity (the paper allows crawling "basic item information like
//!   item popularity").
//!
//! ## Thread safety
//!
//! `BlackBoxSystem` is [`Sync`]: the frozen clean ranker is never
//! mutated after [`BlackBoxSystem::build`] (observations fine-tune a
//! clone), the dataset and protocol are immutable, and the only
//! mutable state — the observation counter that derives per-query
//! seeds — is an [`AtomicU64`]. Concurrent observers therefore draw
//! disjoint seeds and share everything else read-only, which is what
//! lets [`BlackBoxSystem::observe_batch`] score a training step's
//! episodes in parallel.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::data::{Dataset, ItemId, LogView, Trajectory, UserId};
use crate::eval::EvalProtocol;
use crate::rankers::{common::child_seed, Ranker};
use crate::snapshot::RankerSnapshot;

/// The observation interface the attack consumes, abstracted over
/// *where the system lives*: [`BlackBoxSystem`] implements it
/// in-process, `crate::remote::RemoteSystem` implements it over a
/// socket against a served instance. `PoisonRecTrainer` (and the
/// checkpoint fingerprint) depend only on this trait, so the same
/// attack drives both bit-identically — the served system draws from
/// the same `seed_for_ordinal` stream as the in-process one.
///
/// Dyn-compatible on purpose: trainers hold `&dyn ObservableSystem`.
pub trait ObservableSystem: Send + Sync {
    /// The harness configuration (experimenter-side knowledge; the
    /// trainer reads only `reserve_attackers` for validation).
    fn config(&self) -> &SystemConfig;

    /// Crawlable item metadata (threat-model §III-A2).
    fn public_info(&self) -> PublicInfo;

    /// Name of the deployed ranker (fingerprinted into checkpoints so
    /// a resume against a different testbed is refused).
    fn ranker_name(&self) -> &str;

    /// Observations consumed from the system's seed stream so far.
    fn observations_spent(&self) -> u64;

    /// Fast-forwards the observation seed stream for checkpoint
    /// resume; rewinding is refused. See
    /// [`BlackBoxSystem::restore_observations_spent`].
    fn restore_observations_spent(&self, spent: u64) -> Result<(), ConfigError>;

    /// Observes every poison in `batch`, consuming one seed-stream
    /// ordinal per slot *in slot order* — slot `i` behaves exactly
    /// like the `i`-th of sequential single observations, whatever
    /// `threads` is.
    fn observe_batch(&self, batch: &[&[Trajectory]], threads: usize) -> Vec<Observation>;

    /// What this system can offer attacks beyond black-box queries.
    /// The default is the paper's threat model: nothing — no gradients.
    /// `crate::attack` matches these against each attack's declared
    /// [`crate::attack::AttackCaps`] before a single query is spent.
    fn caps(&self) -> crate::attack::SystemCaps {
        crate::attack::SystemCaps::default()
    }

    /// Serialized state of the victim's online defense, if it has one
    /// (empty for undefended systems). Captured into sealed
    /// checkpoints so a resumed run's defense continues from the exact
    /// calibration the interrupted run had reached.
    fn defense_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by
    /// [`ObservableSystem::defense_state`]. An undefended system
    /// accepts only the empty state it emits.
    fn restore_defense_state(&self, state: &[u8]) -> Result<(), ConfigError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(ConfigError {
                field: "defense_state",
                message: "this system has no defense layer to restore into".into(),
            })
        }
    }
}

/// A configuration value failed validation at construction time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"top_k"`.
    pub field: &'static str,
    /// What about it is wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Users polled when measuring RecNum.
    pub eval_users: usize,
    /// Recommendation list length `k`.
    pub top_k: usize,
    /// Random original items per candidate set (92 in the paper).
    pub n_candidates: usize,
    /// Master seed for fitting, fine-tuning, and evaluation.
    pub seed: u64,
    /// Attacker accounts the embedding tables reserve room for.
    pub reserve_attackers: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            eval_users: 256,
            top_k: 10,
            n_candidates: 92,
            seed: 17,
            reserve_attackers: 64,
        }
    }
}

impl SystemConfig {
    /// A validating builder seeded with the paper defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builds a [`SystemConfig`], rejecting values that would otherwise
/// surface as asserts or empty evaluations mid-experiment.
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    pub fn eval_users(mut self, eval_users: usize) -> Self {
        self.cfg.eval_users = eval_users;
        self
    }

    pub fn top_k(mut self, top_k: usize) -> Self {
        self.cfg.top_k = top_k;
        self
    }

    pub fn n_candidates(mut self, n_candidates: usize) -> Self {
        self.cfg.n_candidates = n_candidates;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn reserve_attackers(mut self, reserve_attackers: u32) -> Self {
        self.cfg.reserve_attackers = reserve_attackers;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.eval_users == 0 {
            return Err(ConfigError {
                field: "eval_users",
                message: "RecNum over zero users is always zero".into(),
            });
        }
        if cfg.top_k == 0 {
            return Err(ConfigError {
                field: "top_k",
                message: "empty recommendation lists make every attack score zero".into(),
            });
        }
        if cfg.n_candidates == 0 {
            return Err(ConfigError {
                field: "n_candidates",
                message: "candidate sets must contain at least one original item".into(),
            });
        }
        if cfg.reserve_attackers == 0 {
            return Err(ConfigError {
                field: "reserve_attackers",
                message: "no attacker accounts reserved; every injection would be rejected".into(),
            });
        }
        Ok(cfg)
    }
}

/// What the paper allows an attacker to crawl about the system.
#[derive(Clone, Debug)]
pub struct PublicInfo {
    /// Number of original items `|I|`.
    pub num_items: u32,
    /// The target item ids the attacker wants promoted.
    pub target_items: Vec<ItemId>,
    /// Per-item popularity (sales volume), length `|I| + |I_t|`.
    pub popularity: Vec<u32>,
}

/// The outcome of one black-box observation: the paper's RecNum
/// reward, the retraining seed that produced it, and (when requested
/// through [`BlackBoxSystem::observe_recommendations`]) the full
/// per-user recommendation lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Observation {
    /// `RecNum = Σ_u |L_u ∩ I_t|` after injecting the poison.
    pub rec_num: u32,
    /// The fine-tuning seed used for this observation. Replaying the
    /// same poison through [`BlackBoxSystem::observe_seeded`] with this
    /// seed reproduces the observation exactly.
    pub seed: u64,
    /// Per-user recommendation lists, present only on the analysis
    /// paths that ask for them (never visible to the attack agent).
    pub recommendations: Option<Vec<(UserId, Vec<ItemId>)>>,
}

/// A dataset + fitted clean ranker + evaluation protocol, exposing only
/// black-box poisoning access.
pub struct BlackBoxSystem {
    base: Dataset,
    clean: Box<dyn Ranker>,
    protocol: EvalProtocol,
    cfg: SystemConfig,
    /// Monotone counter so successive observations fine-tune with
    /// fresh (but reproducible) randomness. Atomic so concurrent
    /// observers draw disjoint seed streams; see the module docs for
    /// the `Sync` contract.
    observation: AtomicU64,
}

impl BlackBoxSystem {
    /// Fits `ranker` on the clean dataset and freezes the snapshot.
    pub fn build(base: Dataset, mut ranker: Box<dyn Ranker>, cfg: SystemConfig) -> Self {
        let view = LogView::clean(&base);
        ranker.fit(&view, child_seed(cfg.seed, 1));
        let protocol = EvalProtocol::sample(&base, cfg.eval_users, child_seed(cfg.seed, 2))
            .with_list_shape(cfg.top_k, cfg.n_candidates);
        Self {
            base,
            clean: ranker,
            protocol,
            cfg,
            observation: AtomicU64::new(0),
        }
    }

    pub fn base(&self) -> &Dataset {
        &self.base
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    pub fn protocol(&self) -> &EvalProtocol {
        &self.protocol
    }

    /// Name of the deployed ranker (the experimenter knows it; the
    /// attack agent never reads it).
    pub fn ranker_name(&self) -> &'static str {
        self.clean.name()
    }

    /// Crawlable item metadata (threat-model §III-A2).
    pub fn public_info(&self) -> PublicInfo {
        PublicInfo {
            num_items: self.base.num_items(),
            target_items: self.base.target_items().collect(),
            popularity: self.base.popularity(),
        }
    }

    /// RecNum of the *clean* system (usually 0: targets are new items).
    pub fn clean_rec_num(&self) -> u32 {
        self.protocol.rec_num(&*self.clean, &self.base)
    }

    /// Upper bound on RecNum under this protocol.
    pub fn max_rec_num(&self) -> u32 {
        self.protocol.max_rec_num(&self.base)
    }

    /// The seed for the `ordinal`-th observation of this system's
    /// lifetime. Centralizing this mapping is what makes sequential
    /// and batched observation orders bit-identical.
    fn seed_for_ordinal(&self, ordinal: u64) -> u64 {
        child_seed(self.cfg.seed, 1000 + ordinal)
    }

    /// Observations consumed from this system's seed stream so far.
    pub fn observations_spent(&self) -> u64 {
        self.observation.load(Ordering::Relaxed)
    }

    /// Fast-forwards the observation seed stream to `spent`, as if that
    /// many [`BlackBoxSystem::observe`] calls had already happened.
    /// Checkpoint resume uses this so a restored trainer's next query
    /// draws exactly the seed it would have drawn in the uninterrupted
    /// run. Rewinding is refused — reusing seeds would silently break
    /// the "fresh randomness per observation" contract.
    pub fn restore_observations_spent(&self, spent: u64) -> Result<(), ConfigError> {
        let current = self.observation.load(Ordering::Relaxed);
        if spent < current {
            return Err(ConfigError {
                field: "observations_spent",
                message: format!(
                    "cannot rewind the observation stream from {current} to {spent}; \
                     resume against a freshly built system"
                ),
            });
        }
        self.observation.store(spent, Ordering::Relaxed);
        Ok(())
    }

    fn check_budget(&self, poison: &[Trajectory]) {
        assert!(
            poison.len() as u32 <= self.cfg.reserve_attackers,
            "{} attackers injected but only {} reserved",
            poison.len(),
            self.cfg.reserve_attackers
        );
    }

    /// The single seeded observation core every public entry point
    /// reduces to: snapshot the clean ranker, warm-update it with the
    /// poisoned log, and read the target set's exposure.
    ///
    /// Telemetry: each call bumps the global `system_observations_total`
    /// counter (the attack's query budget — every RL reward costs
    /// exactly one of these) and records the retrain and full
    /// observation durations into `system_retrain_seconds` /
    /// `system_observe_seconds`. Pure metrics side-channel: no RNG is
    /// touched, so observations stay bit-identical with or without a
    /// metrics reader.
    fn observe_core(&self, poison: &[Trajectory], seed: u64, with_lists: bool) -> Observation {
        let _observe_span = telemetry::Span::enter("system_observe_seconds");
        let _observe_trace = telemetry::trace::span("observe", "system");
        telemetry::metrics::counter("system_observations_total").inc();
        // Observation generation numbers are never published, so tag 0.
        let snapshot = self.fine_tuned_snapshot(poison, seed, 0);
        let rec_num = snapshot.rec_num(&self.protocol, &self.base);
        let recommendations =
            with_lists.then(|| snapshot.recommendations(&self.protocol, &self.base));
        Observation {
            rec_num,
            seed,
            recommendations,
        }
    }

    /// The retrain everything reduces to: clone the frozen clean
    /// ranker, warm-update it with the poisoned log, and freeze the
    /// result as a [`RankerSnapshot`]. Both the observation path above
    /// and the serving layer's `POST /retrain` build their models
    /// here, which is what makes an attack over the wire bit-identical
    /// to the in-process run.
    fn fine_tuned_snapshot(
        &self,
        poison: &[Trajectory],
        seed: u64,
        generation: u64,
    ) -> RankerSnapshot {
        let mut ranker = self.clean.boxed_clone();
        let view = LogView::new(&self.base, poison);
        let retrain = telemetry::Stopwatch::start();
        let retrain_trace = telemetry::trace::span("retrain", "system");
        ranker.fine_tune(&view, seed);
        drop(retrain_trace);
        telemetry::metrics::histogram("system_retrain_seconds", &telemetry::TIME_BUCKETS)
            .record(retrain.elapsed_secs());
        RankerSnapshot::new(ranker, generation, seed, self.base.num_users())
    }

    /// The clean system as a generation-0 [`RankerSnapshot`] — what a
    /// freshly started server publishes before any `POST /retrain`.
    /// Does not consume the observation seed stream.
    pub fn clean_snapshot(&self) -> RankerSnapshot {
        RankerSnapshot::new(self.clean.boxed_clone(), 0, 0, self.base.num_users())
    }

    /// One retrain off the system's own seed stream, returned as a
    /// publishable snapshot instead of a scalar observation: consumes
    /// exactly one seed ordinal (like [`BlackBoxSystem::observe`]) and
    /// tags the snapshot with generation `ordinal + 1`, so generation
    /// `g` is always the model produced by the `g`-th observation of
    /// the system's lifetime. The serving layer builds snapshots here
    /// and publishes them with an atomic swap; readers of the previous
    /// generation are never blocked.
    pub fn retrain_snapshot(&self, poison: &[Trajectory]) -> RankerSnapshot {
        self.check_budget(poison);
        let ordinal = self.observation.fetch_add(1, Ordering::Relaxed);
        let seed = self.seed_for_ordinal(ordinal);
        self.fine_tuned_snapshot(poison, seed, ordinal + 1)
    }

    /// One observation under the system's own seed stream. Each call
    /// consumes one seed, so repeated observations of the same poison
    /// differ only by retraining noise — exactly the stochastic reward
    /// the RL agent must cope with.
    pub fn observe(&self, poison: &[Trajectory]) -> Observation {
        self.check_budget(poison);
        let ordinal = self.observation.fetch_add(1, Ordering::Relaxed);
        self.observe_core(poison, self.seed_for_ordinal(ordinal), false)
    }

    /// Deterministic observation with an explicit fine-tuning seed,
    /// used by tests and variance studies. Does not consume the
    /// system's seed stream.
    pub fn observe_seeded(&self, poison: &[Trajectory], seed: u64) -> Observation {
        self.observe_core(poison, seed, false)
    }

    /// [`BlackBoxSystem::observe_seeded`] plus the full per-user
    /// recommendation lists (an analysis-side privilege the attack
    /// agent never gets).
    pub fn observe_recommendations(&self, poison: &[Trajectory], seed: u64) -> Observation {
        self.observe_core(poison, seed, true)
    }

    /// Observes every poison in `batch`, fanning the independent
    /// retrains out over the [`runtime::global`] worker pool with at
    /// most `threads` in flight.
    ///
    /// Each slot's seed is drawn from the system's observation counter
    /// *before* any work is dispatched: slot `i` of this call behaves
    /// exactly like the `i`-th in a run of sequential
    /// [`BlackBoxSystem::observe`] calls, and the returned vector is
    /// bit-identical for every `threads` value (including 1).
    pub fn observe_batch<P>(&self, batch: &[P], threads: usize) -> Vec<Observation>
    where
        P: AsRef<[Trajectory]> + Sync,
    {
        self.observe_batch_on(runtime::global(), batch, threads)
    }

    /// [`BlackBoxSystem::observe_batch`] on an explicit pool (tests use
    /// this to prove thread-count independence).
    pub fn observe_batch_on<P>(
        &self,
        pool: &runtime::WorkerPool,
        batch: &[P],
        threads: usize,
    ) -> Vec<Observation>
    where
        P: AsRef<[Trajectory]> + Sync,
    {
        for poison in batch {
            self.check_budget(poison.as_ref());
        }
        let base = self
            .observation
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let jobs: Vec<Box<dyn FnOnce() -> Observation + Send + '_>> = batch
            .iter()
            .enumerate()
            .map(|(i, poison)| {
                let seed = self.seed_for_ordinal(base + i as u64);
                Box::new(move || self.observe_core(poison.as_ref(), seed, false))
                    as Box<dyn FnOnce() -> Observation + Send + '_>
            })
            .collect();
        pool.run(threads, jobs)
    }

    /// The paper's `DataPoisoning(D^p)` + RecNum observation. Thin
    /// wrapper over [`BlackBoxSystem::observe`] for callers that only
    /// want the scalar reward.
    pub fn inject_and_observe(&self, poison: &[Trajectory]) -> u32 {
        self.observe(poison).rec_num
    }

    /// Deterministic variant of [`BlackBoxSystem::inject_and_observe`];
    /// thin wrapper over [`BlackBoxSystem::observe_seeded`].
    pub fn inject_and_observe_seeded(&self, poison: &[Trajectory], seed: u64) -> u32 {
        self.observe_seeded(poison, seed).rec_num
    }

    /// Full poisoned recommendation lists for analysis (not available
    /// to the attacker; used by the experiment harness for figures).
    /// Thin wrapper over [`BlackBoxSystem::observe_recommendations`].
    pub fn poisoned_recommendations(
        &self,
        poison: &[Trajectory],
        seed: u64,
    ) -> Vec<(u32, Vec<ItemId>)> {
        self.observe_recommendations(poison, seed)
            .recommendations
            .expect("lists were requested")
    }
}

impl ObservableSystem for BlackBoxSystem {
    fn config(&self) -> &SystemConfig {
        self.config()
    }

    fn public_info(&self) -> PublicInfo {
        self.public_info()
    }

    fn ranker_name(&self) -> &str {
        self.ranker_name()
    }

    fn observations_spent(&self) -> u64 {
        self.observations_spent()
    }

    fn restore_observations_spent(&self, spent: u64) -> Result<(), ConfigError> {
        self.restore_observations_spent(spent)
    }

    fn observe_batch(&self, batch: &[&[Trajectory]], threads: usize) -> Vec<Observation> {
        // Delegates to the inherent generic (which fans out over the
        // worker pool); inherent methods win resolution on the
        // concrete type, so this is not a recursive call.
        BlackBoxSystem::observe_batch(self, batch, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rankers::ItemPop;

    fn toy() -> Dataset {
        let histories = (0..30u32)
            .map(|u| (0..6).map(|t| (u + t * 3) % 40).collect())
            .collect();
        Dataset::from_histories("toy", histories, 40, 8)
    }

    fn small_cfg() -> SystemConfig {
        SystemConfig {
            eval_users: 16,
            reserve_attackers: 8,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn system_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<BlackBoxSystem>();
    }

    #[test]
    fn clean_system_never_recommends_targets() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        assert_eq!(sys.clean_rec_num(), 0);
    }

    #[test]
    fn poisoning_itempop_promotes_target() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let target = sys.public_info().target_items[0];
        let poison: Vec<Trajectory> = (0..8).map(|_| vec![target; 20]).collect();
        let rec_num = sys.inject_and_observe(&poison);
        assert!(
            rec_num > 0,
            "160 fake clicks should out-popularity a toy catalog"
        );
        assert!(rec_num <= sys.max_rec_num());
    }

    #[test]
    fn observation_is_repeatable_with_fixed_seed() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let target = sys.public_info().target_items[0];
        let poison: Vec<Trajectory> = vec![vec![target; 20]];
        let a = sys.inject_and_observe_seeded(&poison, 5);
        let b = sys.inject_and_observe_seeded(&poison, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_and_batched_observation_agree() {
        let target = {
            let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
            sys.public_info().target_items[0]
        };
        let poisons: Vec<Vec<Trajectory>> = (1..=4)
            .map(|reps| vec![vec![target; 4 * reps]; reps])
            .collect();

        let sequential_sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let sequential: Vec<Observation> =
            poisons.iter().map(|p| sequential_sys.observe(p)).collect();

        let batched_sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let batched = batched_sys.observe_batch(&poisons, 4);

        assert_eq!(sequential, batched);
    }

    #[test]
    fn observe_seed_stream_matches_counter_formula() {
        // The observation seed schedule is a public contract: the
        // `i`-th observation of a system's lifetime fine-tunes with
        // `child_seed(cfg.seed, 1000 + i)`. Replaying through the
        // seeded path must reproduce the counter path exactly.
        let cfg = small_cfg();
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let replay = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let target = sys.public_info().target_items[0];
        for i in 0..5u64 {
            let poison: Vec<Trajectory> = vec![vec![target; 5 + i as usize]];
            let live = sys.observe(&poison);
            let expected_seed = child_seed(cfg.seed, 1000 + i);
            assert_eq!(live.seed, expected_seed);
            assert_eq!(
                live.rec_num,
                replay.inject_and_observe_seeded(&poison, expected_seed)
            );
        }
    }

    #[test]
    fn restored_observation_stream_matches_uninterrupted_run() {
        let cfg = small_cfg();
        let full = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let resumed = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let target = full.public_info().target_items[0];
        let poison: Vec<Trajectory> = vec![vec![target; 6]];
        for _ in 0..4 {
            full.observe(&poison);
        }
        assert_eq!(full.observations_spent(), 4);
        resumed
            .restore_observations_spent(4)
            .expect("fresh system accepts fast-forward");
        assert_eq!(full.observe(&poison), resumed.observe(&poison));
        // Rewinding is refused with a descriptive error.
        let err = resumed.restore_observations_spent(1).expect_err("rewind");
        assert_eq!(err.field, "observations_spent");
    }

    #[test]
    fn retrain_snapshot_shares_the_observation_seed_stream() {
        // A served retrain must be indistinguishable from an observe:
        // same counter, same seed schedule, same RecNum.
        let cfg = small_cfg();
        let observing = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let serving = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let target = observing.public_info().target_items[0];
        for i in 1..=3u64 {
            let poison: Vec<Trajectory> = vec![vec![target; 4 + i as usize]; 2];
            let observed = observing.observe(&poison);
            let snap = serving.retrain_snapshot(&poison);
            assert_eq!(snap.seed(), observed.seed);
            assert_eq!(snap.generation(), i);
            assert_eq!(
                snap.rec_num(serving.protocol(), serving.base()),
                observed.rec_num
            );
        }
        assert_eq!(serving.observations_spent(), 3);
    }

    #[test]
    fn clean_snapshot_matches_clean_rec_num() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let snap = sys.clean_snapshot();
        assert_eq!(snap.generation(), 0);
        assert_eq!(
            snap.rec_num(sys.protocol(), sys.base()),
            sys.clean_rec_num()
        );
        assert_eq!(sys.observations_spent(), 0, "clean snapshot is free");
    }

    #[test]
    fn trait_object_observation_matches_concrete_calls() {
        let cfg = small_cfg();
        let concrete = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let erased = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), cfg.clone());
        let erased: &dyn ObservableSystem = &erased;
        let target = concrete.public_info().target_items[0];
        let poisons: Vec<Vec<Trajectory>> = (1..=3).map(|n| vec![vec![target; 3 * n]; n]).collect();
        let slices: Vec<&[Trajectory]> = poisons.iter().map(|p| p.as_slice()).collect();
        assert_eq!(
            concrete.observe_batch(&poisons, 2),
            erased.observe_batch(&slices, 2)
        );
        assert_eq!(erased.observations_spent(), 3);
        assert_eq!(erased.ranker_name(), "ItemPop");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn too_many_attackers_panics() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let poison: Vec<Trajectory> = (0..9).map(|_| vec![0]).collect();
        let _ = sys.inject_and_observe(&poison);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn oversized_batch_member_panics_before_dispatch() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let ok: Vec<Trajectory> = vec![vec![0]];
        let oversized: Vec<Trajectory> = (0..9).map(|_| vec![0]).collect();
        let _ = sys.observe_batch(&[ok, oversized], 2);
    }

    #[test]
    fn public_info_matches_dataset() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let info = sys.public_info();
        assert_eq!(info.num_items, 40);
        assert_eq!(info.target_items.len(), 8);
        assert_eq!(info.popularity.len(), 48);
        assert!(info
            .target_items
            .iter()
            .all(|&t| info.popularity[t as usize] == 0));
    }

    #[test]
    fn builder_accepts_defaults_and_rejects_zeros() {
        let cfg = SystemConfig::builder()
            .eval_users(32)
            .top_k(5)
            .seed(3)
            .build()
            .expect("valid config");
        assert_eq!(cfg.eval_users, 32);
        assert_eq!(cfg.top_k, 5);

        for (builder, field) in [
            (SystemConfig::builder().eval_users(0), "eval_users"),
            (SystemConfig::builder().top_k(0), "top_k"),
            (SystemConfig::builder().n_candidates(0), "n_candidates"),
            (
                SystemConfig::builder().reserve_attackers(0),
                "reserve_attackers",
            ),
        ] {
            let err = builder.build().expect_err("must reject zero");
            assert_eq!(err.field, field);
        }
    }
}
