//! The black-box recommender system as the attacker sees it.
//!
//! [`BlackBoxSystem`] wraps a dataset, a fitted ranker, and the
//! evaluation protocol, exposing exactly the interface the paper's
//! threat model allows:
//!
//! * [`BlackBoxSystem::inject_and_observe`] — hand over fake
//!   trajectories, get back the resulting *RecNum*. Internally this is
//!   the paper's `DataPoisoning` routine: the clean ranker is snapshot-
//!   cloned, warm-updated with the poisoned log, and polled for
//!   recommendations. Nothing about the ranker leaks out.
//! * [`BlackBoxSystem::public_info`] — item count, target ids, and item
//!   popularity (the paper allows crawling "basic item information like
//!   item popularity").

use crate::data::{Dataset, ItemId, LogView, Trajectory};
use crate::eval::EvalProtocol;
use crate::rankers::{common::child_seed, Ranker};

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Users polled when measuring RecNum.
    pub eval_users: usize,
    /// Recommendation list length `k`.
    pub top_k: usize,
    /// Random original items per candidate set (92 in the paper).
    pub n_candidates: usize,
    /// Master seed for fitting, fine-tuning, and evaluation.
    pub seed: u64,
    /// Attacker accounts the embedding tables reserve room for.
    pub reserve_attackers: u32,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            eval_users: 256,
            top_k: 10,
            n_candidates: 92,
            seed: 17,
            reserve_attackers: 64,
        }
    }
}

/// What the paper allows an attacker to crawl about the system.
#[derive(Clone, Debug)]
pub struct PublicInfo {
    /// Number of original items `|I|`.
    pub num_items: u32,
    /// The target item ids the attacker wants promoted.
    pub target_items: Vec<ItemId>,
    /// Per-item popularity (sales volume), length `|I| + |I_t|`.
    pub popularity: Vec<u32>,
}

/// A dataset + fitted clean ranker + evaluation protocol, exposing only
/// black-box poisoning access.
pub struct BlackBoxSystem {
    base: Dataset,
    clean: Box<dyn Ranker>,
    protocol: EvalProtocol,
    cfg: SystemConfig,
    /// Monotone counter so successive observations fine-tune with
    /// fresh (but reproducible) randomness.
    observation: std::cell::Cell<u64>,
}

impl BlackBoxSystem {
    /// Fits `ranker` on the clean dataset and freezes the snapshot.
    pub fn build(base: Dataset, mut ranker: Box<dyn Ranker>, cfg: SystemConfig) -> Self {
        let view = LogView::clean(&base);
        ranker.fit(&view, child_seed(cfg.seed, 1));
        let protocol = EvalProtocol::sample(&base, cfg.eval_users, child_seed(cfg.seed, 2))
            .with_list_shape(cfg.top_k, cfg.n_candidates);
        Self {
            base,
            clean: ranker,
            protocol,
            cfg,
            observation: std::cell::Cell::new(0),
        }
    }

    pub fn base(&self) -> &Dataset {
        &self.base
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    pub fn protocol(&self) -> &EvalProtocol {
        &self.protocol
    }

    /// Name of the deployed ranker (the experimenter knows it; the
    /// attack agent never reads it).
    pub fn ranker_name(&self) -> &'static str {
        self.clean.name()
    }

    /// Crawlable item metadata (threat-model §III-A2).
    pub fn public_info(&self) -> PublicInfo {
        PublicInfo {
            num_items: self.base.num_items(),
            target_items: self.base.target_items().collect(),
            popularity: self.base.popularity(),
        }
    }

    /// RecNum of the *clean* system (usually 0: targets are new items).
    pub fn clean_rec_num(&self) -> u32 {
        self.protocol.rec_num(&*self.clean, &self.base)
    }

    /// Upper bound on RecNum under this protocol.
    pub fn max_rec_num(&self) -> u32 {
        self.protocol.max_rec_num(&self.base)
    }

    /// The paper's `DataPoisoning(D^p)` + RecNum observation: injects
    /// `poison`, retrains (warm start from the clean snapshot), and
    /// returns the number of page views of the target set.
    ///
    /// Each call uses a fresh deterministic seed stream, so repeated
    /// observations of the same poison differ only by retraining noise
    /// — exactly the stochastic reward the RL agent must cope with.
    pub fn inject_and_observe(&self, poison: &[Trajectory]) -> u32 {
        assert!(
            poison.len() as u32 <= self.cfg.reserve_attackers,
            "{} attackers injected but only {} reserved",
            poison.len(),
            self.cfg.reserve_attackers
        );
        let obs = self.observation.get();
        self.observation.set(obs + 1);
        self.inject_and_observe_seeded(poison, child_seed(self.cfg.seed, 1000 + obs))
    }

    /// Deterministic variant used by tests and variance studies.
    pub fn inject_and_observe_seeded(&self, poison: &[Trajectory], seed: u64) -> u32 {
        let mut ranker = self.clean.boxed_clone();
        let view = LogView::new(&self.base, poison);
        ranker.fine_tune(&view, seed);
        self.protocol.rec_num(&*ranker, &self.base)
    }

    /// Full poisoned recommendation lists for analysis (not available
    /// to the attacker; used by the experiment harness for figures).
    pub fn poisoned_recommendations(
        &self,
        poison: &[Trajectory],
        seed: u64,
    ) -> Vec<(u32, Vec<ItemId>)> {
        let mut ranker = self.clean.boxed_clone();
        let view = LogView::new(&self.base, poison);
        ranker.fine_tune(&view, seed);
        self.protocol
            .eval_users()
            .iter()
            .map(|&u| (u, self.protocol.recommend(&*ranker, &self.base, u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rankers::ItemPop;

    fn toy() -> Dataset {
        let histories = (0..30u32)
            .map(|u| (0..6).map(|t| (u + t * 3) % 40).collect())
            .collect();
        Dataset::from_histories("toy", histories, 40, 8)
    }

    fn small_cfg() -> SystemConfig {
        SystemConfig {
            eval_users: 16,
            reserve_attackers: 8,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn clean_system_never_recommends_targets() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        assert_eq!(sys.clean_rec_num(), 0);
    }

    #[test]
    fn poisoning_itempop_promotes_target() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let target = sys.public_info().target_items[0];
        let poison: Vec<Trajectory> = (0..8).map(|_| vec![target; 20]).collect();
        let rec_num = sys.inject_and_observe(&poison);
        assert!(
            rec_num > 0,
            "160 fake clicks should out-popularity a toy catalog"
        );
        assert!(rec_num <= sys.max_rec_num());
    }

    #[test]
    fn observation_is_repeatable_with_fixed_seed() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let target = sys.public_info().target_items[0];
        let poison: Vec<Trajectory> = vec![vec![target; 20]];
        let a = sys.inject_and_observe_seeded(&poison, 5);
        let b = sys.inject_and_observe_seeded(&poison, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn too_many_attackers_panics() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let poison: Vec<Trajectory> = (0..9).map(|_| vec![0]).collect();
        let _ = sys.inject_and_observe(&poison);
    }

    #[test]
    fn public_info_matches_dataset() {
        let sys = BlackBoxSystem::build(toy(), Box::new(ItemPop::new()), small_cfg());
        let info = sys.public_info();
        assert_eq!(info.num_items, 40);
        assert_eq!(info.target_items.len(), 8);
        assert_eq!(info.popularity.len(), 48);
        assert!(info
            .target_items
            .iter()
            .all(|&t| info.popularity[t as usize] == 0));
    }
}
