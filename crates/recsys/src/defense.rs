//! Defense-side extension: fake-account detection as a layered,
//! deterministic admission subsystem.
//!
//! The paper attacks undefended systems; the natural extension study
//! (and the obvious follow-up for a production team) is how much of
//! the attack survives online injection filtering. The module grows in
//! three tiers:
//!
//! * **Detectors** — per-sequence anomaly scores behind the
//!   [`FakeUserDetector`] trait. Two classic shilling-detection
//!   signals ([`PopularityDeviationDetector`],
//!   [`RepetitionDetector`]) plus the ARLib-standard gray-box
//!   countermeasure, a k-NN Local-Outlier-Factor over behavioral
//!   features ([`LofDetector`]).
//! * **The layered stack** — [`DefenseStack`] composes a calibrated
//!   detector with a session-length token bucket, a decaying
//!   reputation score, and an adaptive threshold ladder driven by an
//!   always-on [`Cusum`] drift detector, yielding one [`Verdict`] per
//!   incoming trajectory. Everything is calibrated *before*
//!   deployment on organic data; online adaptation only moves an
//!   index into the precomputed ladder, which is what keeps defended
//!   runs bit-identical local vs wire and at any thread count.
//! * **The defended victim** — [`DefendedSystem`] wraps a
//!   [`BlackBoxSystem`] so `run_attack` (and the serving layer, which
//!   embeds the same stack at `POST /feedback` admission) evaluates
//!   the attack zoo against a hardening victim. The defense sees only
//!   what a real black-box victim sees: trajectory content, in
//!   arrival order.
//!
//! Detectors flag outliers against the *organic* distribution
//! (empirical quantiles over the base users), so they need no labeled
//! attack data. [`filter_poison`] drops flagged attacker accounts
//! before the system retrains; [`OnlineFilter`] freezes one detector
//! for per-request use.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::data::{Dataset, ItemId, Trajectory};
use crate::system::{
    BlackBoxSystem, ConfigError, ObservableSystem, Observation, PublicInfo, SystemConfig,
};
use tensor::wire::{Reader, WireError, Writer};

/// A per-user anomaly score; higher = more suspicious.
///
/// `Send + Sync` so a detector can live inside long-lived shared state
/// (the serving layer keeps one in an [`OnlineFilter`] consulted by
/// concurrent feedback handlers).
pub trait FakeUserDetector: Send + Sync {
    fn name(&self) -> &'static str;

    /// Scores one click sequence given the clean dataset's context.
    fn score(&self, base: &Dataset, sequence: &[ItemId]) -> f64;

    /// Decision threshold calibrated so that at most `fpr` of organic
    /// users would be flagged (empirical quantile over the base users).
    fn threshold(&self, base: &Dataset, fpr: f64) -> f64 {
        let mut scores: Vec<f64> = (0..base.num_users())
            .map(|u| self.score(base, base.sequence(u)))
            .collect();
        scores.sort_by(f64::total_cmp);
        let idx =
            (((1.0 - fpr.clamp(0.0, 1.0)) * scores.len() as f64) as usize).min(scores.len() - 1);
        scores[idx]
    }
}

/// Flags users whose clicks concentrate on unpopular items.
///
/// Score = fraction of the user's clicks on items below the `q`-th
/// popularity percentile of the catalog. Attack trajectories spend
/// roughly half their clicks on brand-new targets (popularity 0), so
/// they max this score out.
#[derive(Clone, Debug)]
pub struct PopularityDeviationDetector {
    /// Items below this popularity percentile count as "cold".
    pub cold_percentile: f64,
}

impl Default for PopularityDeviationDetector {
    fn default() -> Self {
        Self {
            cold_percentile: 0.1,
        }
    }
}

impl FakeUserDetector for PopularityDeviationDetector {
    fn name(&self) -> &'static str {
        "popularity-deviation"
    }

    fn score(&self, base: &Dataset, sequence: &[ItemId]) -> f64 {
        if sequence.is_empty() {
            return 0.0;
        }
        let pop = base.popularity();
        let mut sorted: Vec<u32> = pop[..base.num_items() as usize].to_vec();
        sorted.sort_unstable();
        let cutoff_idx = ((self.cold_percentile * sorted.len() as f64) as usize)
            .min(sorted.len().saturating_sub(1));
        let cutoff = sorted[cutoff_idx];
        let cold = sequence
            .iter()
            .filter(|&&i| pop.get(i as usize).copied().unwrap_or(0) <= cutoff)
            .count();
        cold as f64 / sequence.len() as f64
    }
}

/// Flags users with abnormally repetitive sessions.
///
/// Score = 1 − (distinct items / clicks). An organic session rarely
/// repeats the same item many times; "click the target 20 times" does.
#[derive(Clone, Debug, Default)]
pub struct RepetitionDetector;

impl FakeUserDetector for RepetitionDetector {
    fn name(&self) -> &'static str {
        "repetition"
    }

    fn score(&self, _base: &Dataset, sequence: &[ItemId]) -> f64 {
        if sequence.is_empty() {
            return 0.0;
        }
        let mut distinct: Vec<ItemId> = sequence.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        1.0 - distinct.len() as f64 / sequence.len() as f64
    }
}

/// Outcome of running a detector over an injected trajectory set.
#[derive(Clone, Debug)]
pub struct DefenseReport {
    pub detector: &'static str,
    /// Threshold used (calibrated on organic users).
    pub threshold: f64,
    /// Index of each attacker account that was flagged and dropped.
    pub flagged: Vec<usize>,
    /// Trajectories that survived the filter.
    pub surviving: Vec<Trajectory>,
}

impl DefenseReport {
    /// Fraction of attacker accounts caught.
    pub fn detection_rate(&self, injected: usize) -> f64 {
        if injected == 0 {
            0.0
        } else {
            self.flagged.len() as f64 / injected as f64
        }
    }
}

/// Applies a detector to injected poison: flags every attacker whose
/// score exceeds the organic `fpr`-quantile threshold and returns the
/// surviving trajectories.
pub fn filter_poison(
    detector: &dyn FakeUserDetector,
    base: &Dataset,
    poison: &[Trajectory],
    fpr: f64,
) -> DefenseReport {
    let threshold = detector.threshold(base, fpr);
    let mut flagged = Vec::new();
    let mut surviving = Vec::new();
    for (i, traj) in poison.iter().enumerate() {
        if detector.score(base, traj) > threshold {
            flagged.push(i);
        } else {
            surviving.push(traj.clone());
        }
    }
    DefenseReport {
        detector: detector.name(),
        threshold,
        flagged,
        surviving,
    }
}

/// A detector frozen for online use: the threshold is calibrated
/// *once* against the organic users, then [`OnlineFilter::admits`]
/// judges each incoming trajectory in isolation.
///
/// This fixes the original defense integration gap: [`filter_poison`]
/// only ran at retrain time, over the complete injected set, so a
/// served system accepted every `POST /feedback` and discovered fake
/// accounts only later. Hooked into the feedback endpoint, the same
/// detectors reject flagged trajectories at ingestion — and because
/// calibration is precomputed, the per-request cost is one `score`
/// call, not a full pass over the organic population.
pub struct OnlineFilter {
    detector: Box<dyn FakeUserDetector>,
    threshold: f64,
    fpr: f64,
}

impl OnlineFilter {
    /// Calibrates `detector` on the organic users of `base` so that at
    /// most `fpr` of them would be rejected, and freezes the decision
    /// boundary.
    pub fn calibrate(detector: Box<dyn FakeUserDetector>, base: &Dataset, fpr: f64) -> Self {
        let threshold = detector.threshold(base, fpr);
        Self {
            detector,
            threshold,
            fpr,
        }
    }

    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    pub fn fpr(&self) -> f64 {
        self.fpr
    }

    /// Whether `sequence` passes the frozen decision boundary. Same
    /// predicate as [`filter_poison`] with the calibration amortized.
    pub fn admits(&self, base: &Dataset, sequence: &[ItemId]) -> bool {
        self.detector.score(base, sequence) <= self.threshold
    }
}

/// Number of behavioral features the LOF detector embeds a session
/// into: popularity mean, popularity spread, cold-item fraction,
/// session entropy, co-visitation affinity.
const LOF_DIM: usize = 5;

/// k-NN Local-Outlier-Factor over per-user behavior features — the
/// standard gray-box countermeasure in attack-defense benchmark
/// suites. Each click sequence is embedded into a small feature
/// vector:
///
/// 1. mean `log(1+popularity)` of the clicked items (attackers click
///    cold targets, dragging this down);
/// 2. standard deviation of the same (target-heavy sessions are
///    bimodal: filler popular + cold targets);
/// 3. cold-item fraction (clicks at or below the catalog's 10th
///    popularity percentile);
/// 4. within-session entropy of the click distribution, normalized by
///    session length (repetitive sessions score low);
/// 5. mean co-visitation affinity of consecutive click pairs, from a
///    pair-count map built once over the organic log (attack sessions
///    chain item pairs organic users never chain).
///
/// Fitting z-normalizes features over the organic users and
/// precomputes each organic point's k-nearest neighbors, k-distance,
/// and local reachability density; scoring a query is one k-NN pass.
/// All neighbor sorts tie-break by organic user id (after distance,
/// via `total_cmp`), so scores are bit-stable across platforms and
/// run orders.
pub struct LofDetector {
    k: usize,
    /// `log(1+pop)` at or below this marks an item "cold".
    cold_cutoff_log: f64,
    log_pop: Vec<f64>,
    /// Co-visitation counts over unordered consecutive organic pairs.
    pairs: HashMap<(ItemId, ItemId), u32>,
    feat_mean: [f64; LOF_DIM],
    feat_dev: [f64; LOF_DIM],
    /// Normalized organic feature points, indexed by user id.
    points: Vec<[f64; LOF_DIM]>,
    kdist: Vec<f64>,
    lrd: Vec<f64>,
}

impl LofDetector {
    /// Default neighborhood size.
    pub const DEFAULT_K: usize = 10;

    /// Fits the detector on the organic users of `base`.
    pub fn fit(base: &Dataset, k: usize) -> Self {
        let pop = base.popularity();
        let log_pop: Vec<f64> = pop.iter().map(|&p| (1.0 + f64::from(p)).ln()).collect();
        let mut sorted: Vec<u32> = pop[..base.num_items() as usize].to_vec();
        sorted.sort_unstable();
        let cutoff_idx = ((0.1 * sorted.len() as f64) as usize).min(sorted.len().saturating_sub(1));
        let cold_cutoff_log = (1.0 + f64::from(sorted[cutoff_idx])).ln();

        let mut pairs: HashMap<(ItemId, ItemId), u32> = HashMap::new();
        for u in 0..base.num_users() {
            for w in base.sequence(u).windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                *pairs.entry(key).or_insert(0) += 1;
            }
        }

        let mut detector = Self {
            k: k.max(1),
            cold_cutoff_log,
            log_pop,
            pairs,
            feat_mean: [0.0; LOF_DIM],
            feat_dev: [1.0; LOF_DIM],
            points: Vec::new(),
            kdist: Vec::new(),
            lrd: Vec::new(),
        };

        let raw: Vec<[f64; LOF_DIM]> = (0..base.num_users())
            .map(|u| detector.raw_features(base.sequence(u)))
            .collect();
        let n = raw.len().max(1) as f64;
        for d in 0..LOF_DIM {
            let mean = raw.iter().map(|f| f[d]).sum::<f64>() / n;
            let var = raw.iter().map(|f| (f[d] - mean).powi(2)).sum::<f64>() / n;
            detector.feat_mean[d] = mean;
            detector.feat_dev[d] = var.sqrt().max(1e-9);
        }
        detector.points = raw.iter().map(|f| detector.normalize(*f)).collect();

        // Classic LOF precomputation: k-distance then local
        // reachability density, each point's own slot excluded from
        // its neighborhood.
        let neighborhoods: Vec<Vec<(f64, usize)>> = (0..detector.points.len())
            .map(|i| detector.nearest(&detector.points[i], Some(i)))
            .collect();
        detector.kdist = neighborhoods
            .iter()
            .map(|n| n.last().map_or(0.0, |&(d, _)| d))
            .collect();
        detector.lrd = neighborhoods
            .iter()
            .map(|neigh| {
                let reach: f64 = neigh.iter().map(|&(d, j)| d.max(detector.kdist[j])).sum();
                neigh.len() as f64 / reach.max(1e-12)
            })
            .collect();
        detector
    }

    fn raw_features(&self, sequence: &[ItemId]) -> [f64; LOF_DIM] {
        if sequence.is_empty() {
            return [0.0; LOF_DIM];
        }
        let n = sequence.len() as f64;
        let lp: Vec<f64> = sequence
            .iter()
            .map(|&i| self.log_pop.get(i as usize).copied().unwrap_or(0.0))
            .collect();
        let mean = lp.iter().sum::<f64>() / n;
        let var = lp.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let cold = lp.iter().filter(|&&x| x <= self.cold_cutoff_log).count() as f64 / n;

        let mut freq: HashMap<ItemId, u32> = HashMap::new();
        for &i in sequence {
            *freq.entry(i).or_insert(0) += 1;
        }
        let entropy: f64 = freq
            .values()
            .map(|&c| {
                let p = f64::from(c) / n;
                -p * p.ln()
            })
            .sum();
        let entropy = entropy / (n.max(2.0)).ln();

        let mut affinity = 0.0;
        let mut m = 0u32;
        for w in sequence.windows(2) {
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            affinity += (1.0 + f64::from(self.pairs.get(&key).copied().unwrap_or(0))).ln();
            m += 1;
        }
        let affinity = if m > 0 { affinity / f64::from(m) } else { 0.0 };

        [mean, var.sqrt(), cold, entropy, affinity]
    }

    fn normalize(&self, raw: [f64; LOF_DIM]) -> [f64; LOF_DIM] {
        let mut out = [0.0; LOF_DIM];
        for d in 0..LOF_DIM {
            out[d] = (raw[d] - self.feat_mean[d]) / self.feat_dev[d];
        }
        out
    }

    /// The k nearest organic points to `query`, sorted by
    /// `(distance, user id)` — the user-id tie-break is what makes
    /// neighborhoods (and therefore scores) deterministic when
    /// distances collide.
    fn nearest(&self, query: &[f64; LOF_DIM], skip: Option<usize>) -> Vec<(f64, usize)> {
        let mut dists: Vec<(f64, usize)> = self
            .points
            .iter()
            .enumerate()
            .filter(|&(j, _)| Some(j) != skip)
            .map(|(j, p)| {
                let d2: f64 = (0..LOF_DIM).map(|d| (query[d] - p[d]).powi(2)).sum();
                (d2.sqrt(), j)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        dists.truncate(self.k.min(dists.len()));
        dists
    }
}

impl FakeUserDetector for LofDetector {
    fn name(&self) -> &'static str {
        "lof"
    }

    fn score(&self, _base: &Dataset, sequence: &[ItemId]) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let query = self.normalize(self.raw_features(sequence));
        let neigh = self.nearest(&query, None);
        let reach: f64 = neigh.iter().map(|&(d, j)| d.max(self.kdist[j])).sum();
        let lrd_q = neigh.len() as f64 / reach.max(1e-12);
        let lrd_sum: f64 = neigh.iter().map(|&(_, j)| self.lrd[j]).sum();
        lrd_sum / (neigh.len() as f64 * lrd_q).max(1e-12)
    }
}

/// Deterministic two-sided CUSUM drift detector over a scalar stream.
///
/// Mirrors `telemetry::stream::DriftDetector` exactly (EWMA reference
/// via West's update, standardized residual fed into `s⁺`/`s⁻`, same
/// default `k`/`h`/`alpha`/`warmup`) but is *always on*: the
/// telemetry-plane detector no-ops when the stream plane is disabled,
/// and a defense whose decisions depended on a metrics toggle would
/// break bit-identical local-vs-wire runs. The defense therefore owns
/// its own copy of the state machine, and its full state serializes
/// into checkpoints.
#[derive(Clone, Debug)]
pub struct Cusum {
    k: f64,
    h: f64,
    alpha: f64,
    warmup: u64,
    n: u64,
    mean: f64,
    var: f64,
    s_pos: f64,
    s_neg: f64,
    alarms: u64,
}

impl Default for Cusum {
    fn default() -> Self {
        Self {
            k: 0.5,
            h: 8.0,
            alpha: 0.05,
            warmup: 32,
            n: 0,
            mean: 0.0,
            var: 0.0,
            s_pos: 0.0,
            s_neg: 0.0,
            alarms: 0,
        }
    }
}

impl Cusum {
    /// Feed one observation; returns `true` iff it raised an alarm.
    pub fn observe(&mut self, x: f64) -> bool {
        if x.is_nan() {
            return false;
        }
        self.n += 1;
        if self.n == 1 {
            self.mean = x;
            self.var = 0.0;
            return false;
        }
        let a = self.alpha;
        let delta = x - self.mean;
        self.mean += a * delta;
        self.var = (1.0 - a) * (self.var + a * delta * delta);
        if self.n <= self.warmup {
            return false;
        }
        let z = delta / self.var.sqrt().max(1e-12);
        self.s_pos = (self.s_pos + z - self.k).max(0.0);
        self.s_neg = (self.s_neg - z - self.k).max(0.0);
        if self.s_pos > self.h || self.s_neg > self.h {
            self.s_pos = 0.0;
            self.s_neg = 0.0;
            self.alarms += 1;
            true
        } else {
            false
        }
    }

    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.var);
        w.put_f64(self.s_pos);
        w.put_f64(self.s_neg);
        w.put_u64(self.alarms);
    }

    fn decode(&mut self, r: &mut Reader) -> Result<(), WireError> {
        self.n = r.get_u64("cusum n")?;
        self.mean = r.get_f64("cusum mean")?;
        self.var = r.get_f64("cusum var")?;
        self.s_pos = r.get_f64("cusum s_pos")?;
        self.s_neg = r.get_f64("cusum s_neg")?;
        self.alarms = r.get_u64("cusum alarms")?;
        Ok(())
    }
}

/// Admission decision for one incoming trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Passed every layer; the trajectory enters the feedback queue.
    Admit,
    /// The calibrated detector flagged it as an outlier.
    Flag,
    /// The session overdrew its token bucket (too many clicks for one
    /// account).
    RateLimit,
    /// Source reputation fell below the floor and the score cleared
    /// the (looser) throttle threshold.
    Throttle,
}

impl Verdict {
    pub const ALL: [Verdict; 4] = [
        Verdict::Admit,
        Verdict::Flag,
        Verdict::RateLimit,
        Verdict::Throttle,
    ];

    /// Stable label, used as a metrics/label/log vocabulary.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Admit => "admit",
            Verdict::Flag => "flag",
            Verdict::RateLimit => "rate_limit",
            Verdict::Throttle => "throttle",
        }
    }
}

/// Cumulative verdict tally of a [`DefenseStack`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    pub admitted: u64,
    pub flagged: u64,
    pub rate_limited: u64,
    pub throttled: u64,
}

impl VerdictCounts {
    /// Total trajectories judged.
    pub fn offered(&self) -> u64 {
        self.admitted + self.flagged + self.rate_limited + self.throttled
    }

    /// Total trajectories rejected by any layer.
    pub fn rejected(&self) -> u64 {
        self.offered() - self.admitted
    }
}

/// Which defense layers a victim deploys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefenseKind {
    /// Undefended baseline.
    None,
    /// LOF detector at a frozen FPR-calibrated threshold.
    Lof,
    /// Token bucket + reputation layers only (no direct flagging).
    Reputation,
    /// LOF detector whose threshold ladder escalates on CUSUM alarms.
    Adaptive,
    /// All layers.
    Full,
}

impl DefenseKind {
    pub const ALL: [DefenseKind; 5] = [
        DefenseKind::None,
        DefenseKind::Lof,
        DefenseKind::Reputation,
        DefenseKind::Adaptive,
        DefenseKind::Full,
    ];

    pub fn label(self) -> &'static str {
        match self {
            DefenseKind::None => "none",
            DefenseKind::Lof => "lof",
            DefenseKind::Reputation => "reputation",
            DefenseKind::Adaptive => "adaptive",
            DefenseKind::Full => "full",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Thresholds per ladder rung; rung `i` is calibrated at
/// `fpr · 2^i` (capped at 0.5), so escalation trades organic FPR for
/// recall in precomputed, deterministic steps.
const LADDER_RUNGS: usize = 4;
/// Reputation below this floor arms the throttle layer.
const REPUTATION_FLOOR: f64 = 0.5;
/// Multiplicative reputation decay when a score clears the monitor
/// threshold (the base-FPR organic quantile).
const REPUTATION_DECAY_MONITOR: f64 = 0.9;
/// Multiplicative reputation decay when the CUSUM alarms.
const REPUTATION_DECAY_ALARM: f64 = 0.5;
/// Additive reputation recovery on a clean observation.
const REPUTATION_RECOVERY: f64 = 0.02;
/// Token-bucket capacity = this many × the longest organic session.
const BUCKET_SLACK: usize = 2;

/// Mutable, checkpointable state of a [`DefenseStack`].
#[derive(Clone, Debug)]
struct DefenseState {
    /// Current rung of the threshold ladder.
    level: u32,
    /// Source-population trust in `[0, 1]`.
    reputation: f64,
    /// Always-on drift detector over the score stream.
    cusum: Cusum,
    counts: VerdictCounts,
}

/// The layered online defense: token bucket → detector threshold
/// ladder → reputation throttle, one [`Verdict`] per trajectory.
///
/// **Calibration before deployment**: every threshold (all ladder
/// rungs, the throttle quantile, the bucket capacity) is computed from
/// organic data when the stack is built. The online layers mutate only
/// an integer ladder index, a reputation scalar, and CUSUM sums — all
/// pure functions of the judged trajectory contents in admission
/// order, never of wall-clock time, thread interleaving, or the
/// telemetry toggle. That is the entire determinism argument: local
/// and wire runs judge the same trajectories in the same order, so
/// they transition through bit-identical states.
pub struct DefenseStack {
    detector: Box<dyn FakeUserDetector>,
    kind_label: &'static str,
    fpr: f64,
    ladder: Vec<f64>,
    throttle_threshold: f64,
    monitor_threshold: f64,
    bucket_capacity: usize,
    detector_on: bool,
    rate_on: bool,
    reputation_on: bool,
    adaptive_on: bool,
    state: DefenseState,
}

impl DefenseStack {
    /// Builds and calibrates the stack for `kind` on the organic data
    /// of `base`. Returns `None` for [`DefenseKind::None`].
    pub fn build(kind: DefenseKind, base: &Dataset, fpr: f64) -> Option<Self> {
        if kind == DefenseKind::None {
            return None;
        }
        let detector: Box<dyn FakeUserDetector> =
            Box::new(LofDetector::fit(base, LofDetector::DEFAULT_K));
        let ladder: Vec<f64> = (0..LADDER_RUNGS)
            .map(|i| detector.threshold(base, (fpr * f64::from(1u32 << i)).min(0.5)))
            .collect();
        let throttle_threshold = detector.threshold(base, (fpr * 2.0).min(0.5));
        let monitor_threshold = ladder[0];
        let longest_organic = (0..base.num_users())
            .map(|u| base.sequence(u).len())
            .max()
            .unwrap_or(1)
            .max(1);
        let (detector_on, rate_on, reputation_on, adaptive_on) = match kind {
            DefenseKind::None => unreachable!(),
            DefenseKind::Lof => (true, false, false, false),
            DefenseKind::Reputation => (false, true, true, false),
            DefenseKind::Adaptive => (true, false, false, true),
            DefenseKind::Full => (true, true, true, true),
        };
        Some(Self {
            detector,
            kind_label: kind.label(),
            fpr,
            ladder,
            throttle_threshold,
            monitor_threshold,
            bucket_capacity: longest_organic * BUCKET_SLACK,
            detector_on,
            rate_on,
            reputation_on,
            adaptive_on,
            state: DefenseState {
                level: 0,
                reputation: 1.0,
                cusum: Cusum::default(),
                counts: VerdictCounts::default(),
            },
        })
    }

    /// Judges one trajectory in admission order. Must be called under
    /// whatever lock serializes admission — the verdict depends on
    /// (and mutates) the stack state.
    pub fn judge(&mut self, base: &Dataset, sequence: &[ItemId]) -> Verdict {
        let score = self.detector.score(base, sequence);
        // The drift detector watches the *score* stream: a poisoning
        // campaign shifts it upward long before any one trajectory is
        // individually damning.
        let alarm = self.state.cusum.observe(score);
        if alarm {
            if self.adaptive_on && (self.state.level as usize) < self.ladder.len() - 1 {
                self.state.level += 1;
            }
            if self.reputation_on {
                self.state.reputation *= REPUTATION_DECAY_ALARM;
            }
        }
        if self.reputation_on {
            if score > self.monitor_threshold {
                self.state.reputation *= REPUTATION_DECAY_MONITOR;
            } else {
                self.state.reputation = (self.state.reputation + REPUTATION_RECOVERY).min(1.0);
            }
        }
        let verdict = if self.rate_on && sequence.len() > self.bucket_capacity {
            Verdict::RateLimit
        } else if self.detector_on && score > self.ladder[self.state.level as usize] {
            Verdict::Flag
        } else if self.reputation_on
            && self.state.reputation < REPUTATION_FLOOR
            && score > self.throttle_threshold
        {
            Verdict::Throttle
        } else {
            Verdict::Admit
        };
        match verdict {
            Verdict::Admit => self.state.counts.admitted += 1,
            Verdict::Flag => self.state.counts.flagged += 1,
            Verdict::RateLimit => self.state.counts.rate_limited += 1,
            Verdict::Throttle => self.state.counts.throttled += 1,
        }
        verdict
    }

    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    pub fn kind_label(&self) -> &'static str {
        self.kind_label
    }

    pub fn fpr(&self) -> f64 {
        self.fpr
    }

    /// The currently active decision threshold (ladder rung).
    pub fn threshold(&self) -> f64 {
        self.ladder[self.state.level as usize]
    }

    /// Current ladder rung (0 = calibrated base FPR).
    pub fn level(&self) -> u32 {
        self.state.level
    }

    pub fn reputation(&self) -> f64 {
        self.state.reputation
    }

    pub fn alarms(&self) -> u64 {
        self.state.cusum.alarms()
    }

    pub fn counts(&self) -> VerdictCounts {
        self.state.counts
    }

    /// Serializes the mutable state (ladder level, reputation, CUSUM,
    /// verdict tally) for checkpoints and admission rollback. The
    /// calibrated thresholds are pure functions of the organic data
    /// and are rebuilt, not stored.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.state.level);
        w.put_f64(self.state.reputation);
        self.state.cusum.encode(&mut w);
        w.put_u64(self.state.counts.admitted);
        w.put_u64(self.state.counts.flagged);
        w.put_u64(self.state.counts.rate_limited);
        w.put_u64(self.state.counts.throttled);
        w.into_bytes()
    }

    /// Restores state captured by [`DefenseStack::state_bytes`].
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = Reader::new(bytes);
        let level = r.get_u32("defense level")?;
        let reputation = r.get_f64("defense reputation")?;
        let mut cusum = Cusum::default();
        cusum.decode(&mut r)?;
        let counts = VerdictCounts {
            admitted: r.get_u64("defense admitted")?,
            flagged: r.get_u64("defense flagged")?,
            rate_limited: r.get_u64("defense rate_limited")?,
            throttled: r.get_u64("defense throttled")?,
        };
        r.expect_eof()?;
        self.state = DefenseState {
            level: level.min(self.ladder.len() as u32 - 1),
            reputation,
            cusum,
            counts,
        };
        Ok(())
    }
}

impl From<OnlineFilter> for DefenseStack {
    /// Lifts a frozen single-detector filter into a detector-only
    /// stack: same admit/flag predicate, no rate, reputation, or
    /// adaptive layer.
    fn from(filter: OnlineFilter) -> Self {
        let threshold = filter.threshold;
        Self {
            detector: filter.detector,
            kind_label: "filter",
            fpr: filter.fpr,
            ladder: vec![threshold],
            throttle_threshold: threshold,
            monitor_threshold: threshold,
            bucket_capacity: usize::MAX,
            detector_on: true,
            rate_on: false,
            reputation_on: false,
            adaptive_on: false,
            state: DefenseState {
                level: 0,
                reputation: 1.0,
                cusum: Cusum::default(),
                counts: VerdictCounts::default(),
            },
        }
    }
}

/// A [`BlackBoxSystem`] behind a [`DefenseStack`]: every incoming
/// trajectory is judged in admission order before the ranker sees it.
///
/// Mirrors the served admission path exactly — a remote client posts
/// each observation slot's trajectories in one body and slots
/// sequentially, so judging slot trajectories in slot order here
/// transitions the stack through the same states a served instance
/// would, and defended runs stay bit-identical local vs wire. Each
/// slot still consumes exactly one observation-stream ordinal whatever
/// the stack rejects (a served retrain retrains whatever survived,
/// even nothing).
pub struct DefendedSystem {
    inner: BlackBoxSystem,
    stack: Mutex<DefenseStack>,
}

impl DefendedSystem {
    pub fn new(inner: BlackBoxSystem, stack: DefenseStack) -> Self {
        Self {
            inner,
            stack: Mutex::new(stack),
        }
    }

    pub fn inner(&self) -> &BlackBoxSystem {
        &self.inner
    }

    /// Cumulative verdict tally of the embedded stack.
    pub fn counts(&self) -> VerdictCounts {
        self.stack.lock().unwrap().counts()
    }

    /// Current ladder rung of the embedded stack.
    pub fn level(&self) -> u32 {
        self.stack.lock().unwrap().level()
    }

    /// CUSUM alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.stack.lock().unwrap().alarms()
    }
}

impl ObservableSystem for DefendedSystem {
    fn config(&self) -> &SystemConfig {
        self.inner.config()
    }

    fn public_info(&self) -> PublicInfo {
        self.inner.public_info()
    }

    fn ranker_name(&self) -> &str {
        self.inner.ranker_name()
    }

    fn observations_spent(&self) -> u64 {
        self.inner.observations_spent()
    }

    fn restore_observations_spent(&self, spent: u64) -> Result<(), ConfigError> {
        self.inner.restore_observations_spent(spent)
    }

    fn observe_batch(&self, batch: &[&[Trajectory]], threads: usize) -> Vec<Observation> {
        // Admission is sequential in slot order *before* any retrain
        // dispatch: the stack state never sees thread interleaving, so
        // results are identical for every `threads` value.
        let mut stack = self.stack.lock().unwrap();
        let surviving: Vec<Vec<Trajectory>> = batch
            .iter()
            .map(|slot| {
                slot.iter()
                    .filter(|t| stack.judge(self.inner.base(), t) == Verdict::Admit)
                    .cloned()
                    .collect()
            })
            .collect();
        drop(stack);
        self.inner.observe_batch(&surviving, threads)
    }

    fn defense_state(&self) -> Vec<u8> {
        self.stack.lock().unwrap().state_bytes()
    }

    fn restore_defense_state(&self, state: &[u8]) -> Result<(), ConfigError> {
        self.stack
            .lock()
            .unwrap()
            .restore_state(state)
            .map_err(|err| ConfigError {
                field: "defense_state",
                message: err.to_string(),
            })
    }
}

/// Convenience: a defended observation = filter, then the usual
/// poison-and-measure path.
pub fn defended_rec_num(
    system: &crate::system::BlackBoxSystem,
    detector: &dyn FakeUserDetector,
    poison: &[Trajectory],
    fpr: f64,
    seed: u64,
) -> (u32, DefenseReport) {
    let report = filter_poison(detector, system.base(), poison, fpr);
    let rec_num = system.inject_and_observe_seeded(&report.surviving, seed);
    (rec_num, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn organic_like() -> Dataset {
        // Organic users click varied, mostly-popular items.
        let histories = (0..60u32)
            .map(|u| (0..8).map(|t| (u + t * 3) % 40).collect())
            .collect();
        Dataset::from_histories("d", histories, 200, 8)
    }

    #[test]
    fn repetition_detector_separates_burst_attackers() {
        let d = organic_like();
        let det = RepetitionDetector;
        let organic_score = det.score(&d, d.sequence(0));
        let attacker_score = det.score(&d, &[200, 200, 200, 200, 200, 200]);
        assert!(attacker_score > organic_score);
        let threshold = det.threshold(&d, 0.05);
        assert!(
            attacker_score > threshold,
            "burst attacker evades: {attacker_score} <= {threshold}"
        );
    }

    #[test]
    fn popularity_detector_flags_target_heavy_sessions() {
        let d = organic_like();
        let det = PopularityDeviationDetector::default();
        // Targets have zero popularity: all-target trajectory maxes out.
        let s = det.score(&d, &[200, 201, 202, 203]);
        assert_eq!(s, 1.0);
        // Typical organic user clicks popular items only.
        assert!(det.score(&d, d.sequence(0)) < 0.5);
    }

    #[test]
    fn filter_drops_only_flagged_accounts() {
        let d = organic_like();
        let poison: Vec<Trajectory> = vec![
            vec![200; 8],           // blatant burst
            d.sequence(3).to_vec(), // mimics an organic user
        ];
        let report = filter_poison(&RepetitionDetector, &d, &poison, 0.05);
        assert_eq!(report.flagged, vec![0]);
        assert_eq!(report.surviving.len(), 1);
        assert!((report.detection_rate(2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_respects_false_positive_budget() {
        let d = organic_like();
        let det = PopularityDeviationDetector::default();
        let threshold = det.threshold(&d, 0.1);
        let flagged_organic = (0..d.num_users())
            .filter(|&u| det.score(&d, d.sequence(u)) > threshold)
            .count();
        assert!(
            flagged_organic as f64 <= 0.12 * f64::from(d.num_users()),
            "{flagged_organic} organic users flagged"
        );
    }

    #[test]
    fn online_filter_agrees_with_batch_filter() {
        let d = organic_like();
        let poison: Vec<Trajectory> = vec![
            vec![200; 8],           // blatant burst
            d.sequence(3).to_vec(), // mimics an organic user
            vec![201; 6],           // another burst
        ];
        let report = filter_poison(&RepetitionDetector, &d, &poison, 0.05);
        let online = OnlineFilter::calibrate(Box::new(RepetitionDetector), &d, 0.05);
        assert_eq!(online.detector_name(), "repetition");
        assert_eq!(online.threshold(), report.threshold);
        for (i, traj) in poison.iter().enumerate() {
            assert_eq!(
                online.admits(&d, traj),
                !report.flagged.contains(&i),
                "trajectory {i} judged differently online vs batch"
            );
        }
    }

    #[test]
    fn empty_poison_is_harmless() {
        let d = organic_like();
        let report = filter_poison(&RepetitionDetector, &d, &[], 0.05);
        assert!(report.flagged.is_empty());
        assert!(report.surviving.is_empty());
        assert_eq!(report.detection_rate(0), 0.0);
    }

    /// A target-hammering attack session (cold items, repetitive,
    /// never-seen co-visitation pairs) must be a LOF outlier relative
    /// to every organic user, and the calibrated threshold must hold
    /// the organic false-positive rate.
    #[test]
    fn lof_separates_attack_sessions_at_calibrated_fpr() {
        let d = organic_like();
        let det = LofDetector::fit(&d, LofDetector::DEFAULT_K);
        let attack_score = det.score(&d, &[190, 190, 191, 190, 191, 190]);
        let threshold = det.threshold(&d, 0.1);
        assert!(
            attack_score > threshold,
            "attack session evades LOF: {attack_score} <= {threshold}"
        );
        let organic_flagged = (0..d.num_users())
            .filter(|&u| det.score(&d, d.sequence(u)) > threshold)
            .count();
        assert!(
            organic_flagged as f64 <= 0.1 * f64::from(d.num_users()) + 1.0,
            "{organic_flagged} organic users flagged at fpr=0.1"
        );
    }

    /// LOF scoring must be a pure function of the fitted model and the
    /// query — two fits on the same data score identically.
    #[test]
    fn lof_is_deterministic_across_fits() {
        let d = organic_like();
        let a = LofDetector::fit(&d, LofDetector::DEFAULT_K);
        let b = LofDetector::fit(&d, LofDetector::DEFAULT_K);
        for u in 0..d.num_users() {
            let (sa, sb) = (a.score(&d, d.sequence(u)), b.score(&d, d.sequence(u)));
            assert_eq!(sa.to_bits(), sb.to_bits(), "user {u} scored differently");
        }
    }

    /// A sustained upward shift in the score stream must raise a CUSUM
    /// alarm; a stationary stream must not.
    #[test]
    fn cusum_alarms_on_shift_only() {
        let mut quiet = Cusum::default();
        for i in 0..200u32 {
            // Deterministic stationary wiggle around 1.0.
            quiet.observe(1.0 + 0.01 * f64::from(i % 7));
        }
        assert_eq!(quiet.alarms(), 0, "stationary stream alarmed");

        let mut shifted = Cusum::default();
        for i in 0..100u32 {
            shifted.observe(1.0 + 0.01 * f64::from(i % 7));
        }
        for _ in 0..100 {
            shifted.observe(3.0);
        }
        assert!(shifted.alarms() > 0, "sustained shift never alarmed");
    }

    /// CUSUM alarms escalate the adaptive ladder and sink reputation;
    /// both must ride `state_bytes` across a restore.
    #[test]
    fn full_stack_escalates_under_attack_and_state_roundtrips() {
        let d = organic_like();
        let mut stack = DefenseStack::build(DefenseKind::Full, &d, 0.05).unwrap();
        assert_eq!(stack.level(), 0);
        // Warm the CUSUM on organic traffic, then hammer targets.
        for u in 0..d.num_users() {
            stack.judge(&d, d.sequence(u));
        }
        for burst in 0..80u32 {
            let traj: Vec<ItemId> = (0..8).map(|i| 200 + (burst + i) % 8).collect();
            stack.judge(&d, &traj);
        }
        assert!(stack.alarms() > 0, "campaign never tripped the CUSUM");
        assert!(stack.level() > 0, "alarm did not escalate the ladder");
        assert!(stack.reputation() < 1.0, "alarm did not sink reputation");
        assert!(stack.counts().rejected() > 0);

        let bytes = stack.state_bytes();
        let mut restored = DefenseStack::build(DefenseKind::Full, &d, 0.05).unwrap();
        restored.restore_state(&bytes).unwrap();
        assert_eq!(restored.level(), stack.level());
        assert_eq!(restored.alarms(), stack.alarms());
        assert_eq!(restored.counts(), stack.counts());
        assert_eq!(
            restored.reputation().to_bits(),
            stack.reputation().to_bits()
        );
        assert_eq!(restored.threshold().to_bits(), stack.threshold().to_bits());
    }

    /// The ladder rungs loosen monotonically: rung `i+1` is calibrated
    /// at double the FPR, so escalation can only raise recall.
    #[test]
    fn adaptive_ladder_thresholds_are_monotone() {
        let d = organic_like();
        let mut stack = DefenseStack::build(DefenseKind::Adaptive, &d, 0.05).unwrap();
        let mut last = f64::INFINITY;
        let base = stack.threshold();
        // Warm the drift reference on organic traffic, then drive
        // escalation with an attack campaign: each rung's threshold
        // must not exceed the previous (higher FPR = lower organic
        // quantile).
        for u in 0..d.num_users() {
            stack.judge(&d, d.sequence(u));
        }
        for burst in 0..200u32 {
            let traj: Vec<ItemId> = (0..8).map(|i| 200 + (burst + i) % 8).collect();
            stack.judge(&d, &traj);
            let t = stack.threshold();
            assert!(t <= last + 1e-12, "ladder tightened on escalation");
            last = t;
        }
        assert!(stack.level() > 0, "never escalated");
        assert!(stack.threshold() <= base);
    }

    /// `From<OnlineFilter>` must preserve the frozen admit/flag
    /// decision exactly — `serve --defense repetition` behaves the
    /// same whether it routes through `OnlineFilter::admits` or the
    /// stack's `judge`.
    #[test]
    fn lifted_online_filter_matches_admits() {
        let d = organic_like();
        let probes: Vec<Vec<ItemId>> = vec![
            vec![200; 8],
            d.sequence(3).to_vec(),
            vec![201, 201, 201, 5, 6, 7],
            d.sequence(17).to_vec(),
        ];
        let filter = OnlineFilter::calibrate(Box::new(RepetitionDetector), &d, 0.05);
        let expected: Vec<bool> = probes.iter().map(|t| filter.admits(&d, t)).collect();
        let mut stack: DefenseStack = filter.into();
        assert_eq!(stack.kind_label(), "filter");
        for (traj, &admit) in probes.iter().zip(&expected) {
            let verdict = stack.judge(&d, traj);
            assert_eq!(
                verdict == Verdict::Admit,
                admit,
                "lifted filter disagrees with admits() on {traj:?}"
            );
        }
    }

    /// The reputation-only stack never flags outright (no detector
    /// layer), but rate-limits oversized sessions at the organic
    /// bucket capacity.
    #[test]
    fn reputation_stack_rate_limits_oversized_sessions() {
        let d = organic_like();
        let mut stack = DefenseStack::build(DefenseKind::Reputation, &d, 0.05).unwrap();
        // Longest organic session is 8 clicks; capacity = 16.
        let oversized: Vec<ItemId> = vec![1; 17];
        assert_eq!(stack.judge(&d, &oversized), Verdict::RateLimit);
        let organic: Vec<ItemId> = d.sequence(0).to_vec();
        assert_eq!(stack.judge(&d, &organic), Verdict::Admit);
        assert_eq!(stack.counts().flagged, 0);
    }
}
