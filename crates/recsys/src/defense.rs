//! Defense-side extension: fake-account detectors.
//!
//! The paper attacks undefended systems; a natural extension study (and
//! the obvious follow-up for a production team) is how much of the
//! attack survives simple injection filters. Two classic shilling-
//! detection signals are implemented:
//!
//! * [`PopularityDeviationDetector`] — attackers must click the cold
//!   target items often, so their mean clicked-item popularity sits far
//!   below the organic population's.
//! * [`RepetitionDetector`] — budget-efficient attacks repeat a few
//!   items; organic sessions are more diverse.
//!
//! Both score every user and flag outliers against the *organic*
//! distribution (estimated robustly via median/MAD), so they need no
//! labeled attack data. [`filter_poison`] drops flagged attacker
//! accounts before the system retrains.

use crate::data::{Dataset, ItemId, Trajectory};

/// A per-user anomaly score; higher = more suspicious.
///
/// `Send + Sync` so a detector can live inside long-lived shared state
/// (the serving layer keeps one in an [`OnlineFilter`] consulted by
/// concurrent feedback handlers).
pub trait FakeUserDetector: Send + Sync {
    fn name(&self) -> &'static str;

    /// Scores one click sequence given the clean dataset's context.
    fn score(&self, base: &Dataset, sequence: &[ItemId]) -> f64;

    /// Decision threshold calibrated so that at most `fpr` of organic
    /// users would be flagged (empirical quantile over the base users).
    fn threshold(&self, base: &Dataset, fpr: f64) -> f64 {
        let mut scores: Vec<f64> = (0..base.num_users())
            .map(|u| self.score(base, base.sequence(u)))
            .collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx =
            (((1.0 - fpr.clamp(0.0, 1.0)) * scores.len() as f64) as usize).min(scores.len() - 1);
        scores[idx]
    }
}

/// Flags users whose clicks concentrate on unpopular items.
///
/// Score = fraction of the user's clicks on items below the `q`-th
/// popularity percentile of the catalog. Attack trajectories spend
/// roughly half their clicks on brand-new targets (popularity 0), so
/// they max this score out.
#[derive(Clone, Debug)]
pub struct PopularityDeviationDetector {
    /// Items below this popularity percentile count as "cold".
    pub cold_percentile: f64,
}

impl Default for PopularityDeviationDetector {
    fn default() -> Self {
        Self {
            cold_percentile: 0.1,
        }
    }
}

impl FakeUserDetector for PopularityDeviationDetector {
    fn name(&self) -> &'static str {
        "popularity-deviation"
    }

    fn score(&self, base: &Dataset, sequence: &[ItemId]) -> f64 {
        if sequence.is_empty() {
            return 0.0;
        }
        let pop = base.popularity();
        let mut sorted: Vec<u32> = pop[..base.num_items() as usize].to_vec();
        sorted.sort_unstable();
        let cutoff_idx = ((self.cold_percentile * sorted.len() as f64) as usize)
            .min(sorted.len().saturating_sub(1));
        let cutoff = sorted[cutoff_idx];
        let cold = sequence
            .iter()
            .filter(|&&i| pop.get(i as usize).copied().unwrap_or(0) <= cutoff)
            .count();
        cold as f64 / sequence.len() as f64
    }
}

/// Flags users with abnormally repetitive sessions.
///
/// Score = 1 − (distinct items / clicks). An organic session rarely
/// repeats the same item many times; "click the target 20 times" does.
#[derive(Clone, Debug, Default)]
pub struct RepetitionDetector;

impl FakeUserDetector for RepetitionDetector {
    fn name(&self) -> &'static str {
        "repetition"
    }

    fn score(&self, _base: &Dataset, sequence: &[ItemId]) -> f64 {
        if sequence.is_empty() {
            return 0.0;
        }
        let mut distinct: Vec<ItemId> = sequence.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        1.0 - distinct.len() as f64 / sequence.len() as f64
    }
}

/// Outcome of running a detector over an injected trajectory set.
#[derive(Clone, Debug)]
pub struct DefenseReport {
    pub detector: &'static str,
    /// Threshold used (calibrated on organic users).
    pub threshold: f64,
    /// Index of each attacker account that was flagged and dropped.
    pub flagged: Vec<usize>,
    /// Trajectories that survived the filter.
    pub surviving: Vec<Trajectory>,
}

impl DefenseReport {
    /// Fraction of attacker accounts caught.
    pub fn detection_rate(&self, injected: usize) -> f64 {
        if injected == 0 {
            0.0
        } else {
            self.flagged.len() as f64 / injected as f64
        }
    }
}

/// Applies a detector to injected poison: flags every attacker whose
/// score exceeds the organic `fpr`-quantile threshold and returns the
/// surviving trajectories.
pub fn filter_poison(
    detector: &dyn FakeUserDetector,
    base: &Dataset,
    poison: &[Trajectory],
    fpr: f64,
) -> DefenseReport {
    let threshold = detector.threshold(base, fpr);
    let mut flagged = Vec::new();
    let mut surviving = Vec::new();
    for (i, traj) in poison.iter().enumerate() {
        if detector.score(base, traj) > threshold {
            flagged.push(i);
        } else {
            surviving.push(traj.clone());
        }
    }
    DefenseReport {
        detector: detector.name(),
        threshold,
        flagged,
        surviving,
    }
}

/// A detector frozen for online use: the threshold is calibrated
/// *once* against the organic users, then [`OnlineFilter::admits`]
/// judges each incoming trajectory in isolation.
///
/// This fixes the original defense integration gap: [`filter_poison`]
/// only ran at retrain time, over the complete injected set, so a
/// served system accepted every `POST /feedback` and discovered fake
/// accounts only later. Hooked into the feedback endpoint, the same
/// detectors reject flagged trajectories at ingestion — and because
/// calibration is precomputed, the per-request cost is one `score`
/// call, not a full pass over the organic population.
pub struct OnlineFilter {
    detector: Box<dyn FakeUserDetector>,
    threshold: f64,
    fpr: f64,
}

impl OnlineFilter {
    /// Calibrates `detector` on the organic users of `base` so that at
    /// most `fpr` of them would be rejected, and freezes the decision
    /// boundary.
    pub fn calibrate(detector: Box<dyn FakeUserDetector>, base: &Dataset, fpr: f64) -> Self {
        let threshold = detector.threshold(base, fpr);
        Self {
            detector,
            threshold,
            fpr,
        }
    }

    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    pub fn fpr(&self) -> f64 {
        self.fpr
    }

    /// Whether `sequence` passes the frozen decision boundary. Same
    /// predicate as [`filter_poison`] with the calibration amortized.
    pub fn admits(&self, base: &Dataset, sequence: &[ItemId]) -> bool {
        self.detector.score(base, sequence) <= self.threshold
    }
}

/// Convenience: a defended observation = filter, then the usual
/// poison-and-measure path.
pub fn defended_rec_num(
    system: &crate::system::BlackBoxSystem,
    detector: &dyn FakeUserDetector,
    poison: &[Trajectory],
    fpr: f64,
    seed: u64,
) -> (u32, DefenseReport) {
    let report = filter_poison(detector, system.base(), poison, fpr);
    let rec_num = system.inject_and_observe_seeded(&report.surviving, seed);
    (rec_num, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn organic_like() -> Dataset {
        // Organic users click varied, mostly-popular items.
        let histories = (0..60u32)
            .map(|u| (0..8).map(|t| (u + t * 3) % 40).collect())
            .collect();
        Dataset::from_histories("d", histories, 200, 8)
    }

    #[test]
    fn repetition_detector_separates_burst_attackers() {
        let d = organic_like();
        let det = RepetitionDetector;
        let organic_score = det.score(&d, d.sequence(0));
        let attacker_score = det.score(&d, &[200, 200, 200, 200, 200, 200]);
        assert!(attacker_score > organic_score);
        let threshold = det.threshold(&d, 0.05);
        assert!(
            attacker_score > threshold,
            "burst attacker evades: {attacker_score} <= {threshold}"
        );
    }

    #[test]
    fn popularity_detector_flags_target_heavy_sessions() {
        let d = organic_like();
        let det = PopularityDeviationDetector::default();
        // Targets have zero popularity: all-target trajectory maxes out.
        let s = det.score(&d, &[200, 201, 202, 203]);
        assert_eq!(s, 1.0);
        // Typical organic user clicks popular items only.
        assert!(det.score(&d, d.sequence(0)) < 0.5);
    }

    #[test]
    fn filter_drops_only_flagged_accounts() {
        let d = organic_like();
        let poison: Vec<Trajectory> = vec![
            vec![200; 8],           // blatant burst
            d.sequence(3).to_vec(), // mimics an organic user
        ];
        let report = filter_poison(&RepetitionDetector, &d, &poison, 0.05);
        assert_eq!(report.flagged, vec![0]);
        assert_eq!(report.surviving.len(), 1);
        assert!((report.detection_rate(2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_respects_false_positive_budget() {
        let d = organic_like();
        let det = PopularityDeviationDetector::default();
        let threshold = det.threshold(&d, 0.1);
        let flagged_organic = (0..d.num_users())
            .filter(|&u| det.score(&d, d.sequence(u)) > threshold)
            .count();
        assert!(
            flagged_organic as f64 <= 0.12 * f64::from(d.num_users()),
            "{flagged_organic} organic users flagged"
        );
    }

    #[test]
    fn online_filter_agrees_with_batch_filter() {
        let d = organic_like();
        let poison: Vec<Trajectory> = vec![
            vec![200; 8],           // blatant burst
            d.sequence(3).to_vec(), // mimics an organic user
            vec![201; 6],           // another burst
        ];
        let report = filter_poison(&RepetitionDetector, &d, &poison, 0.05);
        let online = OnlineFilter::calibrate(Box::new(RepetitionDetector), &d, 0.05);
        assert_eq!(online.detector_name(), "repetition");
        assert_eq!(online.threshold(), report.threshold);
        for (i, traj) in poison.iter().enumerate() {
            assert_eq!(
                online.admits(&d, traj),
                !report.flagged.contains(&i),
                "trajectory {i} judged differently online vs batch"
            );
        }
    }

    #[test]
    fn empty_poison_is_harmless() {
        let d = organic_like();
        let report = filter_poison(&RepetitionDetector, &d, &[], 0.05);
        assert!(report.flagged.is_empty());
        assert!(report.surviving.is_empty());
        assert_eq!(report.detection_rate(0), 0.0);
    }
}
