//! Shard ownership for sharded serving state (DESIGN.md §5f).
//!
//! The serving layer partitions per-user read state across `n` shards
//! so independent connections contend on independent snapshot cells.
//! This module is the *single* definition of that mapping — the server
//! (cell selection), the access log (shard field), and the bench
//! clients (per-shard load shaping) must all agree on it, so none of
//! them may hash locally.
//!
//! The mapping is deliberately the simplest stable function of the
//! user id: `user % n`. User ids are dense (datasets renumber them
//! from 0), so modulo spreads load uniformly without a hash, and the
//! mapping is independent of everything but `n` — resharding a server
//! never changes which *data* a user sees, only which cell serves it,
//! which is what keeps attack replays bit-identical at any shard
//! count.

use crate::data::UserId;

/// The shard that owns `user` out of `n_shards` (clamped to ≥ 1).
pub fn shard_for_user(user: UserId, n_shards: usize) -> usize {
    (user as usize) % n_shards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_ownership_is_stable_and_total() {
        assert_eq!(shard_for_user(0, 4), 0);
        assert_eq!(shard_for_user(7, 4), 3);
        assert_eq!(shard_for_user(8, 4), 0);
        // Every user maps into range for any shard count.
        for n in 1..9 {
            for user in 0..100u32 {
                assert!(shard_for_user(user, n) < n);
            }
        }
    }

    #[test]
    fn zero_shards_is_clamped() {
        assert_eq!(shard_for_user(42, 0), 0);
    }

    #[test]
    fn single_shard_owns_everyone() {
        for user in [0u32, 1, 999, u32::MAX] {
            assert_eq!(shard_for_user(user, 1), 0);
        }
    }
}
