//! [`RemoteSystem`]: the PR-1 observation API spoken **over the wire**.
//!
//! Where [`crate::system::BlackBoxSystem`] is attacked in-process,
//! `RemoteSystem` is a client for a served instance (the workspace's
//! `serve` crate): it implements [`ObservableSystem`], so
//! `PoisonRecTrainer` drives it unchanged — the realistic threat model
//! where the attacker only touches the system's query interface.
//!
//! One observation maps onto three endpoint interactions:
//!
//! 1. `POST /feedback` — inject the candidate poison trajectories;
//! 2. `POST /retrain`  — the server drains the pending feedback,
//!    fine-tunes off its own observation seed stream, and publishes a
//!    new generation (the response carries the generation and seed);
//! 3. `GET /recommend/{user}?k=` per evaluation user — the client
//!    counts target hits itself, reconstructing `RecNum`.
//!
//! Because the server consumes the *same* `seed_for_ordinal` stream as
//! the in-process system and serves recommendations through the same
//! snapshot read path, the observed RecNum/reward trajectories are
//! bit-identical to the in-process run (`tests/serve_attack.rs`).
//!
//! The experimenter-side knowledge an in-process attack reads directly
//! (`SystemConfig`, evaluation users, ranker name) is fetched once
//! from `GET /info` at connection time.
//!
//! Everything here is hand-rolled over [`std::net::TcpStream`] — the
//! workspace has no HTTP dependency. [`HttpClient`] is deliberately
//! public: the bench load generator and the integration tests reuse it
//! as their traffic source.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use telemetry::json::{self, Json};

use crate::data::{ItemId, Trajectory, UserId};
use crate::system::{ConfigError, ObservableSystem, Observation, PublicInfo, SystemConfig};

/// Anything that can go wrong talking to a served system.
#[derive(Debug)]
pub enum RemoteError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The bytes on the wire were not the protocol we speak.
    Protocol(String),
    /// The server answered with a non-2xx status.
    Status { status: u16, body: String },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Io(err) => write!(f, "remote io error: {err}"),
            RemoteError::Protocol(msg) => write!(f, "remote protocol error: {msg}"),
            RemoteError::Status { status, body } => {
                write!(f, "remote server returned {status}: {body}")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<std::io::Error> for RemoteError {
    fn from(err: std::io::Error) -> Self {
        RemoteError::Io(err)
    }
}

/// A minimal blocking HTTP/1.1 client: one keep-alive connection,
/// JSON bodies, `Content-Length` framing. Reconnects transparently
/// when the server closed an idle connection.
pub struct HttpClient {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
    read_timeout: Duration,
    /// TCP connections dialed over this client's lifetime.
    dials: u64,
    /// Requests that received a fully-framed response.
    completed: u64,
}

impl HttpClient {
    /// A client for `addr` (`host:port`). Connection is lazy: the
    /// first request dials.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            stream: None,
            read_timeout: Duration::from_secs(30),
            dials: 0,
            completed: 0,
        }
    }

    /// Connections dialed so far — with healthy keep-alive this stays
    /// at 1 no matter how many requests flow (the bench reports
    /// `completed_requests() / dials()` as requests-per-connection).
    pub fn dials(&self) -> u64 {
        self.dials
    }

    /// Requests that received a complete, well-framed response.
    pub fn completed_requests(&self) -> u64 {
        self.completed
    }

    /// Overrides the per-response read timeout (default 30 s).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    fn ensure_connected(&mut self) -> Result<&mut BufReader<TcpStream>, RemoteError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            self.stream = Some(BufReader::new(stream));
            self.dials += 1;
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads one response. `body` is serialized
    /// as JSON when present. Returns the status code and parsed JSON
    /// body (every endpoint of the served system answers JSON).
    ///
    /// A send failure on a *reused* connection (the server idle-closed
    /// it) reconnects and retries once; a failure after the request
    /// reached a fresh connection is surfaced, never retried — a
    /// replayed `POST /retrain` would consume a second seed ordinal.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), RemoteError> {
        let (status, text) = self.request_text(method, path, body)?;
        let parsed = json::parse(&text)
            .map_err(|err| RemoteError::Protocol(format!("unparseable body ({err}): {text}")))?;
        Ok((status, parsed))
    }

    /// Like [`HttpClient::request`] but returns the response body as
    /// raw text — for endpoints that answer non-JSON payloads, e.g.
    /// `GET /metrics?format=prom` (Prometheus text exposition).
    pub fn request_text(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, String), RemoteError> {
        let reused = self.stream.is_some();
        match self.try_request(method, path, body) {
            Err(RemoteError::Io(err)) if reused => {
                // Stale keep-alive connection: dial fresh and retry.
                let _ = err;
                self.stream = None;
                self.try_request(method, path, body)
            }
            other => other,
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, String), RemoteError> {
        let rendered = body.map(|b| b.render());
        let payload = rendered.as_deref().unwrap_or("");
        let reader = self.ensure_connected()?;
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n{}\r\n",
            payload.len(),
            if body.is_some() {
                "Content-Type: application/json\r\n"
            } else {
                ""
            }
        );
        let stream = reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;

        let result = Self::read_response(reader);
        if result.is_err() {
            // Never reuse a connection in an unknown framing state.
            self.stream = None;
        }
        let (status, close, text) = result?;
        self.completed += 1;
        if close {
            self.stream = None;
        }
        Ok((status, text))
    }

    /// Parses one `Content-Length`-framed response off the connection.
    /// Returns (status, connection-close, body text).
    fn read_response(
        reader: &mut BufReader<TcpStream>,
    ) -> Result<(u16, bool, String), RemoteError> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(RemoteError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            )));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(RemoteError::Protocol(format!("bad status line: {line:?}")));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| RemoteError::Protocol(format!("bad status line: {line:?}")))?;

        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Err(RemoteError::Protocol("truncated response headers".into()));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(RemoteError::Protocol(format!("bad header: {header:?}")));
            };
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| {
                        RemoteError::Protocol(format!("bad content-length: {value:?}"))
                    })?;
                }
                "connection" => close = value.eq_ignore_ascii_case("close"),
                _ => {}
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| RemoteError::Protocol("response body is not UTF-8".into()))?;
        Ok((status, close, text))
    }
}

fn expect_u64(value: &Json, field: &str) -> Result<u64, RemoteError> {
    value
        .get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| RemoteError::Protocol(format!("missing numeric field {field:?}")))
}

fn expect_u32_list(value: &Json, field: &str) -> Result<Vec<u32>, RemoteError> {
    let Some(Json::Arr(items)) = value.get(field) else {
        return Err(RemoteError::Protocol(format!(
            "missing array field {field:?}"
        )));
    };
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| RemoteError::Protocol(format!("non-u32 entry in {field:?}")))
        })
        .collect()
}

/// A served black-box system, observed over a socket. Implements
/// [`ObservableSystem`], so the trainer cannot tell it from the
/// in-process [`crate::system::BlackBoxSystem`] — by construction it
/// returns bit-identical observations.
pub struct RemoteSystem {
    client: Mutex<HttpClient>,
    cfg: SystemConfig,
    info: PublicInfo,
    targets: HashSet<ItemId>,
    eval_users: Vec<UserId>,
    ranker: String,
    /// Serving-side shard count from `/info` (1 when the server
    /// predates sharding). Purely informational to the attack — shard
    /// layout never changes responses — but the bench load generator
    /// uses it to shape per-shard traffic.
    shards: usize,
    /// Mirror of the server's seed-stream position, advanced by each
    /// retrain response (the server is the authority; this lets
    /// `observations_spent` answer without a round trip).
    observed: AtomicU64,
}

impl RemoteSystem {
    /// Dials `addr` and fetches `GET /info` — the experimenter-side
    /// disclosure (config, evaluation users, ranker name) an
    /// in-process attack would read off the system object directly.
    pub fn connect(addr: impl Into<String>) -> Result<Self, RemoteError> {
        let mut client = HttpClient::new(addr);
        let (status, info) = client.request("GET", "/info", None)?;
        if status != 200 {
            return Err(RemoteError::Status {
                status,
                body: info.render(),
            });
        }
        let Some(cfg_json) = info.get("config") else {
            return Err(RemoteError::Protocol("missing config object".into()));
        };
        let cfg = SystemConfig {
            eval_users: expect_u64(cfg_json, "eval_users")? as usize,
            top_k: expect_u64(cfg_json, "top_k")? as usize,
            n_candidates: expect_u64(cfg_json, "n_candidates")? as usize,
            seed: expect_u64(cfg_json, "seed")?,
            reserve_attackers: expect_u64(cfg_json, "reserve_attackers")? as u32,
        };
        let target_items = expect_u32_list(&info, "target_items")?;
        let public = PublicInfo {
            num_items: expect_u64(&info, "num_items")? as u32,
            target_items: target_items.clone(),
            popularity: expect_u32_list(&info, "popularity")?,
        };
        let eval_users = expect_u32_list(&info, "eval_users")?;
        let ranker = info
            .get("ranker")
            .and_then(Json::as_str)
            .ok_or_else(|| RemoteError::Protocol("missing ranker name".into()))?
            .to_string();
        let observed = expect_u64(&info, "observations_spent")?;
        let shards = info
            .get("shards")
            .and_then(Json::as_u64)
            .map_or(1, |n| n.max(1) as usize);
        Ok(Self {
            client: Mutex::new(client),
            cfg,
            info: public,
            targets: target_items.into_iter().collect(),
            eval_users,
            ranker,
            shards,
            observed: AtomicU64::new(observed),
        })
    }

    /// The users the served protocol polls (fetched from `/info`).
    pub fn eval_users(&self) -> &[UserId] {
        &self.eval_users
    }

    /// The server's shard count (1 for unsharded servers).
    pub fn shards(&self) -> usize {
        self.shards
    }

    fn expect_200(
        client: &mut HttpClient,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, RemoteError> {
        let (status, value) = client.request(method, path, body)?;
        if status != 200 {
            return Err(RemoteError::Status {
                status,
                body: value.render(),
            });
        }
        Ok(value)
    }

    /// One full over-the-wire observation: feedback, retrain, poll
    /// every evaluation user, count target hits.
    pub fn observe_remote(&self, poison: &[Trajectory]) -> Result<Observation, RemoteError> {
        let mut client = self.client.lock().unwrap();
        let trajectories = Json::Arr(
            poison
                .iter()
                .map(|traj| Json::Arr(traj.iter().map(|&i| Json::from(i)).collect()))
                .collect(),
        );
        let feedback = Json::obj().field("trajectories", trajectories);
        Self::expect_200(&mut client, "POST", "/feedback", Some(&feedback))?;

        let retrain = Self::expect_200(&mut client, "POST", "/retrain", None)?;
        let generation = expect_u64(&retrain, "generation")?;
        let seed = expect_u64(&retrain, "seed")?;
        self.observed.store(generation, Ordering::Relaxed);

        let k = self.cfg.top_k;
        let mut rec_num = 0u32;
        for &user in &self.eval_users {
            let list = Self::expect_200(
                &mut client,
                "GET",
                &format!("/recommend/{user}?k={k}"),
                None,
            )?;
            let served_generation = expect_u64(&list, "generation")?;
            if served_generation != generation {
                return Err(RemoteError::Protocol(format!(
                    "snapshot superseded mid-observation: retrained generation \
                     {generation} but user {user} was served generation {served_generation}"
                )));
            }
            let items = expect_u32_list(&list, "items")?;
            rec_num += items.iter().filter(|i| self.targets.contains(i)).count() as u32;
        }
        Ok(Observation {
            rec_num,
            seed,
            recommendations: None,
        })
    }
}

impl ObservableSystem for RemoteSystem {
    fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn public_info(&self) -> PublicInfo {
        self.info.clone()
    }

    fn ranker_name(&self) -> &str {
        &self.ranker
    }

    fn observations_spent(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Resume only lines up against a server whose seed stream already
    /// sits exactly at the checkpoint: the stream lives server-side
    /// and cannot be fast-forwarded from here without consuming it.
    fn restore_observations_spent(&self, spent: u64) -> Result<(), ConfigError> {
        let current = self.observed.load(Ordering::Relaxed);
        if spent != current {
            return Err(ConfigError {
                field: "observations_spent",
                message: format!(
                    "served system has spent {current} observation(s) but the checkpoint \
                     expects {spent}; restart the server or resume elsewhere"
                ),
            });
        }
        Ok(())
    }

    /// Slots are observed **sequentially** — the served system is the
    /// single contended resource, and its seed ordinals are consumed
    /// by retrain order, so client-side fan-out would only race the
    /// stream. Still bit-identical to the in-process batched path,
    /// which pre-assigns the same seeds in the same slot order.
    ///
    /// # Panics
    ///
    /// On transport or protocol errors. The trait returns plain
    /// observations (rewards cannot be "absent" mid-attack); drivers
    /// that want to handle network failure gracefully use
    /// [`RemoteSystem::observe_remote`] directly.
    fn observe_batch(&self, batch: &[&[Trajectory]], _threads: usize) -> Vec<Observation> {
        batch
            .iter()
            .map(|poison| {
                self.observe_remote(poison)
                    .unwrap_or_else(|err| panic!("remote observation failed: {err}"))
            })
            .collect()
    }
}
