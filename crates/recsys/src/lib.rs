//! # recsys
//!
//! The recommender-system substrate of the PoisonRec reproduction:
//!
//! * [`data`] — implicit-feedback interaction logs, leave-one-out
//!   splits, and the [`data::LogView`] overlay that injects attacker
//!   trajectories without copying the base log.
//! * [`rankers`] — the eight testbed algorithms of the paper (ItemPop,
//!   CoVisitation, PMF, BPR, NeuMF, AutoRec, GRU4Rec, NGCF) behind one
//!   [`rankers::Ranker`] trait with full-fit and warm fine-tune paths.
//! * [`eval`] — the paper's evaluation protocol: random candidate
//!   generation (92 originals + 8 targets), top-10 ranking, and the
//!   *RecNum* page-view metric.
//! * [`system`] — [`system::BlackBoxSystem`], the attack surface:
//!   inject fake trajectories, observe RecNum, learn nothing else.
//! * [`defense`] — the layered online defense subsystem: anomaly
//!   detectors (popularity deviation, repetition, k-NN LOF), the
//!   calibrated [`defense::DefenseStack`] (token bucket, reputation,
//!   adaptive threshold ladder) judging every incoming trajectory,
//!   and [`defense::DefendedSystem`], the hardened victim the attack
//!   zoo is evaluated against (DESIGN.md §5j).
//! * [`snapshot`] — [`snapshot::RankerSnapshot`], the generation-tagged
//!   immutable read path a served retrain publishes (DESIGN.md §5e).
//! * [`remote`] — [`remote::RemoteSystem`], the same
//!   [`system::ObservableSystem`] observation API spoken over a socket
//!   to a `serve` instance: the attack literally goes over the wire.
//! * [`attack`] — the attack-zoo contract: the [`attack::Attack`]
//!   trait with declared capabilities and budgets, and the
//!   budget-enforcing [`attack::GuardedSystem`] boundary every zoo
//!   attack observes through (DESIGN.md §5h).
//!
//! ```no_run
//! use recsys::data::Dataset;
//! use recsys::rankers::RankerKind;
//! use recsys::system::{BlackBoxSystem, SystemConfig};
//!
//! let histories = (0..100u32)
//!     .map(|u| (0..8).map(|t| (u + t) % 50).collect())
//!     .collect();
//! let data = Dataset::from_histories("demo", histories, 50, 8);
//! let view = recsys::data::LogView::clean(&data);
//! let ranker = RankerKind::Bpr.build(&view, 32);
//! let system = BlackBoxSystem::build(data, ranker, SystemConfig::default());
//!
//! let target = system.public_info().target_items[0];
//! let poison = vec![vec![target; 20]; 20];
//! println!("RecNum after poisoning: {}", system.inject_and_observe(&poison));
//! ```

pub mod attack;
pub mod data;
pub mod defense;
pub mod eval;
pub mod rankers;
pub mod remote;
pub mod shard;
pub mod snapshot;
pub mod system;

pub use attack::{
    Attack, AttackBudget, AttackCaps, AttackError, AttackStepStats, BudgetKind, BudgetUsage,
    BudgetViolation, GuardedSystem, SystemCaps, UsageSnapshot,
};
pub use data::{Dataset, ItemId, LogView, Trajectory, UserId};
pub use defense::{
    DefendedSystem, DefenseKind, DefenseStack, LofDetector, OnlineFilter, Verdict, VerdictCounts,
};
pub use rankers::{Ranker, RankerKind, UnknownRanker};
pub use remote::{RemoteError, RemoteSystem};
pub use snapshot::RankerSnapshot;
pub use system::{
    BlackBoxSystem, ConfigError, ObservableSystem, Observation, PublicInfo, SystemConfig,
    SystemConfigBuilder,
};
