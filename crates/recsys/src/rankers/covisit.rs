//! CoVisitation: the item-based collaborative filter attacked by Yang
//! et al. (NDSS'17) and used as paper testbed #2. Consecutive clicks in
//! a session build an item-to-item co-visitation graph; a candidate is
//! scored by how often it co-occurs with the user's recent history.
//!
//! This ranker is *order-sensitive*: only adjacent clicks create edges,
//! which is exactly why sequence-aware attacks (alternating
//! target/popular clicks) beat bag-of-clicks attacks on it.

use std::collections::HashMap;

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::Ranker;

/// How many trailing history items contribute to a user's score.
const HISTORY_WINDOW: usize = 10;

/// Item-to-item co-visitation ranker.
#[derive(Clone, Debug, Default)]
pub struct CoVisitation {
    /// `edges[a]` maps co-visited item `b` to the co-visit count.
    edges: Vec<HashMap<ItemId, f32>>,
    catalog: usize,
}

impl CoVisitation {
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_catalog(&mut self, catalog: usize) {
        if self.edges.len() < catalog {
            self.edges.resize_with(catalog, HashMap::new);
        }
        self.catalog = catalog;
    }

    fn add_sequence(&mut self, seq: &[ItemId]) {
        for pair in seq.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue;
            }
            *self.edges[a as usize].entry(b).or_insert(0.0) += 1.0;
            *self.edges[b as usize].entry(a).or_insert(0.0) += 1.0;
        }
    }

    /// Co-visit count between two items.
    pub fn covisits(&self, a: ItemId, b: ItemId) -> f32 {
        self.edges
            .get(a as usize)
            .and_then(|m| m.get(&b))
            .copied()
            .unwrap_or(0.0)
    }

    /// Number of stored directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(HashMap::len).sum()
    }
}

impl Ranker for CoVisitation {
    fn name(&self) -> &'static str {
        "CoVisitation"
    }

    fn fit(&mut self, view: &LogView<'_>, _seed: u64) {
        self.edges.clear();
        self.ensure_catalog(view.catalog() as usize);
        for user in 0..view.num_users() {
            self.add_sequence(view.sequence(user));
        }
    }

    fn fine_tune(&mut self, view: &LogView<'_>, _seed: u64) {
        // Incremental: the clean graph stays, poison edges are added.
        self.ensure_catalog(view.catalog() as usize);
        for traj in view.poison() {
            self.add_sequence(traj);
        }
    }

    fn score(&self, _user: UserId, history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let recent = &history[history.len().saturating_sub(HISTORY_WINDOW)..];
        candidates
            .iter()
            .map(|&c| recent.iter().map(|&h| self.covisits(h, c)).sum())
            .collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn toy() -> Dataset {
        Dataset::from_histories(
            "toy",
            vec![vec![0, 1, 2, 3, 4], vec![0, 1, 3, 2], vec![2, 0, 1, 3]],
            5,
            2,
        )
    }

    #[test]
    fn edges_are_symmetric_counts() {
        let d = toy();
        let mut r = CoVisitation::new();
        r.fit(&LogView::clean(&d), 0);
        assert_eq!(r.covisits(0, 1), r.covisits(1, 0));
        // Train splits: [0,1,2], [0,1], [2,0] — the (0,1) edge occurs twice.
        assert_eq!(r.covisits(0, 1), 2.0);
        assert_eq!(r.covisits(0, 2), 1.0); // only from the [2,0] split
        assert_eq!(r.covisits(0, 3), 0.0);
    }

    #[test]
    fn self_loops_ignored() {
        let d = Dataset::from_histories("toy", vec![vec![0, 0, 0, 1, 2]], 3, 1);
        let mut r = CoVisitation::new();
        r.fit(&LogView::clean(&d), 0);
        assert_eq!(r.covisits(0, 0), 0.0);
    }

    #[test]
    fn alternating_poison_links_target_to_popular() {
        let d = toy();
        let mut r = CoVisitation::new();
        r.fit(&LogView::clean(&d), 0);
        // Alternate target 5 with popular item 1.
        let poison = vec![vec![5, 1, 5, 1, 5, 1]];
        let view = LogView::new(&d, &poison);
        r.fine_tune(&view, 0);
        // A user whose history contains item 1 now sees target 5 highly.
        let s = r.score(0, &[0, 1], &[2, 5, 6]);
        assert!(s[1] > s[0], "target should outrank organic item 2: {s:?}");
        assert_eq!(s[2], 0.0, "untouched target stays at zero");
    }

    #[test]
    fn burst_poison_without_adjacency_is_useless() {
        let d = toy();
        let mut r = CoVisitation::new();
        r.fit(&LogView::clean(&d), 0);
        // Clicking only the target never creates an edge to item 1.
        let poison = vec![vec![5; 20]];
        let view = LogView::new(&d, &poison);
        r.fine_tune(&view, 0);
        let s = r.score(0, &[0, 1], &[5]);
        assert_eq!(s[0], 0.0);
    }
}
