//! GRU4Rec (Hidasi et al., 2016): session-based recommendation with a
//! GRU over the click sequence, paper testbed #7. The next click is
//! predicted from the recurrent state; training uses the classic
//! in-batch negative trick (each row's positive serves as the other
//! rows' negative) plus a few uniformly sampled extras.
//!
//! This ranker is *order-sensitive*, which is why bag-of-clicks attacks
//! (e.g. AppGrad) underperform on it in the paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tensor::nn::GruCell;
use tensor::optim::{Optimizer, Sgd};
use tensor::{GradStore, Graph, Matrix, ParamId, ParamSet};

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::common::EmbeddingConfig;
use crate::rankers::Ranker;

/// GRU4Rec hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct Gru4RecConfig {
    pub dim: usize,
    pub lr: f32,
    /// Maximum context length fed to the GRU.
    pub max_len: usize,
    /// Extra uniform negatives added to the in-batch candidates.
    pub extra_negatives: usize,
    pub batch: usize,
    pub epochs: usize,
    /// Cap on training windows per full-fit epoch (subsampled).
    pub max_windows: usize,
    pub ft_epochs: usize,
    /// Organic windows replayed per fine-tune epoch.
    pub ft_replay: usize,
    pub init_scale: f32,
}

impl Default for Gru4RecConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            lr: 0.08,
            max_len: 6,
            extra_negatives: 16,
            batch: 48,
            epochs: 2,
            max_windows: 30_000,
            ft_epochs: 2,
            ft_replay: 600,
            init_scale: 0.08,
        }
    }
}

/// A `(context, next-item)` training window.
type Window = (Vec<ItemId>, ItemId);

/// Session-based GRU ranker.
#[derive(Clone)]
pub struct Gru4Rec {
    cfg: Gru4RecConfig,
    emb: EmbeddingConfig,
    state: Option<GruState>,
}

#[derive(Clone)]
struct GruState {
    params: ParamSet,
    item_emb: ParamId,
    cell: GruCell,
}

impl Gru4Rec {
    pub fn new(cfg: Gru4RecConfig, emb: EmbeddingConfig) -> Self {
        Self {
            cfg,
            emb,
            state: None,
        }
    }

    /// All `(context, next)` windows of one sequence, contexts
    /// truncated to `max_len`.
    fn windows_of(&self, seq: &[ItemId], out: &mut Vec<Window>) {
        for t in 1..seq.len() {
            let lo = t.saturating_sub(self.cfg.max_len);
            out.push((seq[lo..t].to_vec(), seq[t]));
        }
    }

    /// Runs the GRU over a batch of same-length contexts; returns the
    /// final hidden state node.
    fn encode(state: &GruState, g: &mut Graph<'_>, contexts: &[&[ItemId]]) -> tensor::Var {
        let len = contexts[0].len();
        debug_assert!(contexts.iter().all(|c| c.len() == len));
        let mut h = state.cell.zero_state(g, contexts.len());
        for t in 0..len {
            let step_items: Vec<u32> = contexts.iter().map(|c| c[t]).collect();
            let x = g.gather(state.item_emb, &step_items);
            h = state.cell.step(g, x, h);
        }
        h
    }

    fn train_windows(&mut self, windows: &mut [Window], rng: &mut StdRng) {
        let cfg = self.cfg;
        // Negatives come from original items only (see
        // `common::sample_negative` for the rationale).
        let originals = self.emb.num_items;
        let state = self.state.as_mut().expect("fitted");
        let mut opt = Sgd::new(cfg.lr);
        let mut grads = GradStore::zeros_like(&state.params);

        // Group by context length so each batch is rectangular.
        windows.shuffle(rng);
        windows.sort_by_key(|(c, _)| c.len());
        let mut start = 0;
        while start < windows.len() {
            let len = windows[start].0.len();
            let mut end = start;
            while end < windows.len() && windows[end].0.len() == len && end - start < cfg.batch {
                end += 1;
            }
            let batch = &windows[start..end];
            start = end;
            if len == 0 {
                continue;
            }

            // Candidate items: batch positives + sampled extras.
            let mut cands: Vec<u32> = batch.iter().map(|&(_, next)| next).collect();
            for _ in 0..cfg.extra_negatives {
                cands.push(rng.gen_range(0..originals));
            }
            let contexts: Vec<&[ItemId]> = batch.iter().map(|(c, _)| c.as_slice()).collect();
            let labels: Vec<u32> = (0..batch.len() as u32).collect();
            {
                let mut g = Graph::new(&state.params);
                let h = Self::encode(state, &mut g, &contexts);
                let cand_emb = g.gather(state.item_emb, &cands);
                let logits = g.matmul_t(h, cand_emb);
                let lp = g.log_softmax_rows(logits);
                let picked = g.pick_per_row(lp, &labels);
                let mean_lp = g.mean_all(picked);
                let loss = g.scale(mean_lp, -1.0);
                g.backward(loss, &mut grads);
            }
            opt.step(&mut state.params, &grads);
            grads.zero();
        }
    }

    fn organic_windows(&self, view: &LogView<'_>, cap: usize, rng: &mut StdRng) -> Vec<Window> {
        let mut windows = Vec::new();
        for user in 0..view.base().num_users() {
            self.windows_of(view.base().sequence(user), &mut windows);
        }
        if windows.len() > cap {
            windows.shuffle(rng);
            windows.truncate(cap);
        }
        windows
    }
}

impl Ranker for Gru4Rec {
    fn name(&self) -> &'static str {
        "GRU4Rec"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let item_emb = params.add(
            "item_emb",
            Matrix::uniform(
                self.emb.catalog as usize,
                self.cfg.dim,
                self.cfg.init_scale,
                &mut rng,
            ),
        );
        let cell = GruCell::new(&mut params, "gru", self.cfg.dim, self.cfg.dim, &mut rng);
        self.state = Some(GruState {
            params,
            item_emb,
            cell,
        });
        for _ in 0..self.cfg.epochs {
            let mut windows = self.organic_windows(view, self.cfg.max_windows, &mut rng);
            // Poison present at fit time (rare) is included too.
            for traj in view.poison() {
                self.windows_of(traj, &mut windows);
            }
            self.train_windows(&mut windows, &mut rng);
        }
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        assert!(
            self.state.is_some(),
            "Gru4Rec::fit must run before fine_tune"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..self.cfg.ft_epochs {
            let mut windows = Vec::new();
            for traj in view.poison() {
                self.windows_of(traj, &mut windows);
            }
            let mut replay = self.organic_windows(view, self.cfg.ft_replay, &mut rng);
            windows.append(&mut replay);
            self.train_windows(&mut windows, &mut rng);
        }
    }

    fn score(&self, _user: UserId, history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let state = self
            .state
            .as_ref()
            .expect("Gru4Rec::fit must run before score");
        if history.is_empty() {
            return vec![0.0; candidates.len()];
        }
        let lo = history.len().saturating_sub(self.cfg.max_len);
        let context = &history[lo..];
        let mut g = Graph::new(&state.params);
        let h = Self::encode(state, &mut g, &[context]);
        let cand_emb = g.gather(state.item_emb, candidates);
        let logits = g.matmul_t(h, cand_emb);
        g.value(logits).data().to_vec()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }

    fn item_embeddings(&self) -> Option<Matrix> {
        let state = self.state.as_ref()?;
        Some(state.params.get(state.item_emb).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    /// Deterministic Markov chains: item i is always followed by i+1
    /// within a cycle of 10.
    fn sequential() -> Dataset {
        let mut histories = Vec::new();
        for u in 0..50u32 {
            let start = u % 10;
            let h: Vec<u32> = (0..8).map(|t| (start + t) % 10).collect();
            histories.push(h);
        }
        Dataset::from_histories("sequential", histories, 10, 2)
    }

    #[test]
    fn learns_successor_structure() {
        let d = sequential();
        let view = LogView::clean(&d);
        let mut r = Gru4Rec::new(
            Gru4RecConfig {
                epochs: 25,
                ..Gru4RecConfig::default()
            },
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 3);
        // After history [..., 3, 4], item 5 must beat a non-successor.
        let s = r.score(0, &[2, 3, 4], &[5, 9]);
        assert!(s[0] > s[1], "successor not preferred: {s:?}");
    }

    #[test]
    fn empty_history_scores_zero() {
        let d = sequential();
        let view = LogView::clean(&d);
        let mut r = Gru4Rec::new(
            Gru4RecConfig::default(),
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 3);
        assert_eq!(r.score(0, &[], &[1, 2]), vec![0.0, 0.0]);
    }

    #[test]
    fn sequential_poison_inserts_target_as_successor() {
        let d = sequential();
        let view = LogView::clean(&d);
        let mut r = Gru4Rec::new(
            Gru4RecConfig {
                epochs: 15,
                ..Gru4RecConfig::default()
            },
            EmbeddingConfig::for_view(&view, 8),
        );
        r.fit(&view, 3);
        let target = 10;
        let before = r.score(0, &[2, 3, 4], &[target])[0];
        // Attackers repeatedly play "4 then target".
        let poison: Vec<Vec<ItemId>> = (0..8)
            .map(|_| vec![4, target, 4, target, 4, target])
            .collect();
        let pview = LogView::new(&d, &poison);
        let mut poisoned = r.clone();
        poisoned.fine_tune(&pview, 9);
        let after = poisoned.score(0, &[2, 3, 4], &[target])[0];
        assert!(after > before, "before={before} after={after}");
    }
}
