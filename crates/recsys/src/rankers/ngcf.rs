//! NGCF (Wang et al., 2019): neural graph collaborative filtering,
//! paper testbed #8. Embeddings are propagated over the normalized
//! user-item bipartite adjacency:
//!
//! `E^{l+1} = LeakyReLU( (L + I) E^l W1_l  +  (L E^l) ⊙ E^l W2_l )`
//!
//! with `L = D^{-1/2} A D^{-1/2}`. The final representation is the
//! concatenation of all layer outputs and training minimizes the BPR
//! loss over sampled triples. Injected attackers add new graph nodes
//! and edges, which is the attack surface: poison edges reshape the
//! propagation neighborhood of the target items.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::optim::{Optimizer, Sgd};
use tensor::sparse::Csr;
use tensor::{GradStore, Graph, Matrix, ParamId, ParamSet, Var};

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::common::{sample_negative, EmbeddingConfig};
use crate::rankers::Ranker;

/// NGCF hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct NgcfConfig {
    pub dim: usize,
    pub layers: usize,
    pub lr: f32,
    pub reg: f32,
    /// BPR triples per training step.
    pub batch: usize,
    /// Full-fit training steps (each does one full propagation).
    pub steps: usize,
    /// Fine-tune steps after poison injection.
    pub ft_steps: usize,
    /// Fraction of each fine-tune batch drawn from poison pairs.
    pub ft_poison_frac: f32,
    pub init_scale: f32,
}

impl Default for NgcfConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            layers: 2,
            lr: 0.05,
            reg: 1e-4,
            batch: 512,
            steps: 120,
            ft_steps: 12,
            ft_poison_frac: 0.5,
            init_scale: 0.08,
        }
    }
}

/// Neural graph collaborative filtering ranker.
#[derive(Clone)]
pub struct Ngcf {
    cfg: NgcfConfig,
    emb: EmbeddingConfig,
    state: Option<NgcfState>,
}

#[derive(Clone)]
struct NgcfState {
    params: ParamSet,
    emb_table: ParamId,
    /// `(W1, W2)` per propagation layer.
    weights: Vec<(ParamId, ParamId)>,
    /// Normalized adjacency of the latest (possibly poisoned) log.
    laplacian: Arc<Csr>,
    /// Final concatenated embeddings, cached after training for O(dim)
    /// scoring.
    final_emb: Matrix,
}

impl Ngcf {
    pub fn new(cfg: NgcfConfig, emb: EmbeddingConfig) -> Self {
        Self {
            cfg,
            emb,
            state: None,
        }
    }

    fn num_nodes(&self) -> usize {
        (self.emb.user_rows() + self.emb.catalog) as usize
    }

    fn user_node(&self, u: UserId) -> usize {
        self.emb.user_row(u)
    }

    fn item_node(&self, i: ItemId) -> usize {
        self.emb.user_rows() as usize + i as usize
    }

    /// `D^{-1/2} A D^{-1/2}` over the bipartite interaction graph.
    fn laplacian(&self, view: &LogView<'_>) -> Csr {
        let n = self.num_nodes();
        let mut degree = vec![0u32; n];
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(view.num_interactions());
        for (u, i) in view.interactions() {
            let un = self.user_node(u);
            let inode = self.item_node(i);
            degree[un] += 1;
            degree[inode] += 1;
            edges.push((un, inode));
        }
        let inv_sqrt: Vec<f32> = degree
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / (d as f32).sqrt() })
            .collect();
        let mut triples = Vec::with_capacity(edges.len() * 2);
        for (un, inode) in edges {
            let w = inv_sqrt[un] * inv_sqrt[inode];
            triples.push((un, inode, w));
            triples.push((inode, un, w));
        }
        Csr::from_triples(n, n, &triples)
    }

    /// Builds the propagation graph; returns the concatenated
    /// multi-layer representation node.
    fn propagate(state: &NgcfState, g: &mut Graph<'_>) -> Var {
        let mut e = g.param(state.emb_table);
        let mut all = e;
        for &(w1, w2) in &state.weights {
            let le = g.spmm(Arc::clone(&state.laplacian), e);
            let le_plus_e = g.add(le, e);
            let term1 = g.matmul_param(le_plus_e, w1);
            let inter = g.mul(le, e);
            let term2 = g.matmul_param(inter, w2);
            let summed = g.add(term1, term2);
            e = g.leaky_relu(summed, 0.2);
            all = g.concat_cols(all, e);
        }
        all
    }

    /// One BPR training step over `triples` with a full propagation.
    fn train_step(&mut self, triples: &[(UserId, ItemId, ItemId)], opt: &mut Sgd) {
        let user_nodes: Vec<u32> = triples
            .iter()
            .map(|&(u, _, _)| self.user_node(u) as u32)
            .collect();
        let pos_nodes: Vec<u32> = triples
            .iter()
            .map(|&(_, i, _)| self.item_node(i) as u32)
            .collect();
        let neg_nodes: Vec<u32> = triples
            .iter()
            .map(|&(_, _, j)| self.item_node(j) as u32)
            .collect();
        let reg = self.cfg.reg;
        let rep_cols = self.cfg.dim * (self.cfg.layers + 1);
        let state = self.state.as_mut().expect("fitted");
        let mut grads = GradStore::zeros_like(&state.params);
        {
            let mut g = Graph::new(&state.params);
            let all = Self::propagate(state, &mut g);
            let eu = g.gather_var(all, &user_nodes);
            let ei = g.gather_var(all, &pos_nodes);
            let ej = g.gather_var(all, &neg_nodes);
            let diff = g.sub(ei, ej);
            let prod = g.mul(eu, diff);
            // Row-sum via a ones column: (B x D) * (D x 1) gives the
            // per-triple score gap x_ui - x_uj.
            let ones = g.input(Matrix::full(rep_cols, 1, 1.0));
            let x = g.matmul(prod, ones);
            let neg_x = g.scale(x, -1.0);
            let sp = g.softplus(neg_x); // -ln σ(x)
            let loss_main = g.mean_all(sp);
            let l2 = g.sq_sum(eu);
            let l2i = g.sq_sum(ei);
            let l2j = g.sq_sum(ej);
            let l2a = g.add(l2, l2i);
            let l2b = g.add(l2a, l2j);
            let l2s = g.scale(l2b, reg / triples.len() as f32);
            let loss = g.add(loss_main, l2s);
            g.backward(loss, &mut grads);
        }
        opt.step(&mut state.params, &grads);
    }

    /// Recomputes and caches the final embeddings for scoring.
    fn refresh_cache(&mut self) {
        let state = self.state.as_mut().expect("fitted");
        let mut g = Graph::new(&state.params);
        let all = Self::propagate(state, &mut g);
        state.final_emb = g.value(all).clone();
    }

    fn sample_triples(
        &self,
        view: &LogView<'_>,
        n: usize,
        poison_frac: f32,
        rng: &mut StdRng,
    ) -> Vec<(UserId, ItemId, ItemId)> {
        let organic = view.base().num_users();
        let has_poison = !view.poison().is_empty();
        let mut triples = Vec::with_capacity(n);
        for _ in 0..n {
            let from_poison = has_poison && rng.gen::<f32>() < poison_frac;
            let user = if from_poison {
                organic + rng.gen_range(0..view.poison().len()) as UserId
            } else {
                rng.gen_range(0..organic)
            };
            let seq = view.sequence(user);
            if seq.is_empty() {
                continue;
            }
            let pos = seq[rng.gen_range(0..seq.len())];
            let neg = sample_negative(view, user, rng);
            triples.push((user, pos, neg));
        }
        triples
    }
}

impl Ranker for Ngcf {
    fn name(&self) -> &'static str {
        "NGCF"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let emb_table = params.add(
            "ngcf_emb",
            Matrix::uniform(
                self.num_nodes(),
                self.cfg.dim,
                self.cfg.init_scale,
                &mut rng,
            ),
        );
        let weights = (0..self.cfg.layers)
            .map(|l| {
                (
                    params.add_xavier(format!("w1.{l}"), self.cfg.dim, self.cfg.dim, &mut rng),
                    params.add_xavier(format!("w2.{l}"), self.cfg.dim, self.cfg.dim, &mut rng),
                )
            })
            .collect();
        let laplacian = Arc::new(self.laplacian(view));
        self.state = Some(NgcfState {
            params,
            emb_table,
            weights,
            laplacian,
            final_emb: Matrix::zeros(0, 0),
        });
        let mut opt = Sgd::new(self.cfg.lr);
        for _ in 0..self.cfg.steps {
            let triples = self.sample_triples(view, self.cfg.batch, 0.0, &mut rng);
            if !triples.is_empty() {
                self.train_step(&triples, &mut opt);
            }
        }
        self.refresh_cache();
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        assert!(self.state.is_some(), "Ngcf::fit must run before fine_tune");
        let mut rng = StdRng::seed_from_u64(seed);
        // Poison edges change the propagation graph itself.
        let lap = Arc::new(self.laplacian(view));
        self.state.as_mut().expect("fitted").laplacian = lap;
        let mut opt = Sgd::new(self.cfg.lr);
        for _ in 0..self.cfg.ft_steps {
            let triples =
                self.sample_triples(view, self.cfg.batch, self.cfg.ft_poison_frac, &mut rng);
            if !triples.is_empty() {
                self.train_step(&triples, &mut opt);
            }
        }
        self.refresh_cache();
    }

    fn score(&self, user: UserId, _history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let state = self
            .state
            .as_ref()
            .expect("Ngcf::fit must run before score");
        let e = &state.final_emb;
        let u_row = e.row_slice(self.user_node(user));
        candidates
            .iter()
            .map(|&c| {
                let i_row = e.row_slice(self.item_node(c));
                u_row.iter().zip(i_row).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }

    fn item_embeddings(&self) -> Option<Matrix> {
        let state = self.state.as_ref()?;
        let e = &state.final_emb;
        if e.rows() == 0 {
            return None;
        }
        let start = self.emb.user_rows() as usize;
        let mut out = Matrix::zeros(self.emb.catalog as usize, e.cols());
        for i in 0..self.emb.catalog as usize {
            out.row_slice_mut(i).copy_from_slice(e.row_slice(start + i));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn clustered() -> Dataset {
        let mut histories = Vec::new();
        for u in 0..40u32 {
            let offset = if u < 20 { 0 } else { 10 };
            let h: Vec<u32> = (0..8).map(|t| offset + ((u + t) % 10)).collect();
            histories.push(h);
        }
        Dataset::from_histories("clustered", histories, 20, 2)
    }

    #[test]
    fn learns_cluster_structure() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = Ngcf::new(
            NgcfConfig {
                dim: 8,
                steps: 200,
                ..NgcfConfig::default()
            },
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 3);
        let mut in_cluster = 0.0;
        let mut out_cluster = 0.0;
        for u in 0..5u32 {
            let seen = d.sequence(u);
            for i in 0..10u32 {
                if !seen.contains(&i) {
                    in_cluster += r.score(u, &[], &[i])[0];
                    out_cluster += r.score(u, &[], &[i + 10])[0];
                }
            }
        }
        assert!(
            in_cluster > out_cluster,
            "in={in_cluster} out={out_cluster}"
        );
    }

    #[test]
    fn poison_edges_reach_target_through_graph() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = Ngcf::new(NgcfConfig::default(), EmbeddingConfig::for_view(&view, 6));
        r.fit(&view, 3);
        let target = 20;
        let before: f32 = (0..10).map(|u| r.score(u, &[], &[target])[0]).sum();
        // Attackers connect the target to cluster-A items.
        let poison: Vec<Vec<ItemId>> = (0..6)
            .map(|a| (0..8).flat_map(|t| [target, (a + t) % 10]).collect())
            .collect();
        let pview = LogView::new(&d, &poison);
        let mut poisoned = r.clone();
        poisoned.fine_tune(&pview, 9);
        let after: f32 = (0..10).map(|u| poisoned.score(u, &[], &[target])[0]).sum();
        assert!(after > before, "before={before} after={after}");
    }

    #[test]
    fn laplacian_rows_norm_bounded() {
        let d = clustered();
        let view = LogView::clean(&d);
        let r = Ngcf::new(NgcfConfig::default(), EmbeddingConfig::for_view(&view, 2));
        let lap = r.laplacian(&view);
        // Row sums of D^{-1/2} A D^{-1/2} are at most sqrt(deg) * ...
        // sanity: all weights positive and <= 1.
        for row in 0..lap.rows() {
            for (_, w) in lap.row_iter(row) {
                assert!(w > 0.0 && w <= 1.0, "weight {w}");
            }
        }
    }
}
