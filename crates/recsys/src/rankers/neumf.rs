//! NeuMF (He et al., 2017): neural collaborative filtering, paper
//! testbed #5. Fuses a generalized-matrix-factorization branch
//! (elementwise product of user/item embeddings) with an MLP branch
//! (concatenated embeddings through ReLU layers), trained with binary
//! cross-entropy on sampled negatives — all on the in-repo autodiff.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tensor::nn::{Activation, Linear, Mlp};
use tensor::optim::{Optimizer, Sgd};
use tensor::{GradStore, Graph, Matrix, ParamId, ParamSet};

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::common::{all_pairs, fine_tune_pairs, sample_negative, EmbeddingConfig};
use crate::rankers::Ranker;

/// NeuMF hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct NeuMfConfig {
    pub dim: usize,
    pub lr: f32,
    pub neg_ratio: usize,
    pub epochs: usize,
    pub ft_epochs: usize,
    pub ft_replay: usize,
    pub batch: usize,
    pub init_scale: f32,
}

impl Default for NeuMfConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            lr: 0.05,
            neg_ratio: 4,
            epochs: 2,
            ft_epochs: 2,
            ft_replay: 1500,
            batch: 256,
            init_scale: 0.05,
        }
    }
}

/// Neural matrix factorization ranker.
#[derive(Clone)]
pub struct NeuMf {
    cfg: NeuMfConfig,
    emb: EmbeddingConfig,
    state: Option<NeuMfState>,
}

#[derive(Clone)]
struct NeuMfState {
    params: ParamSet,
    gmf_user: ParamId,
    gmf_item: ParamId,
    mlp_user: ParamId,
    mlp_item: ParamId,
    mlp: Mlp,
    out: Linear,
}

impl NeuMf {
    pub fn new(cfg: NeuMfConfig, emb: EmbeddingConfig) -> Self {
        Self {
            cfg,
            emb,
            state: None,
        }
    }

    fn init_state(&self, rng: &mut StdRng) -> NeuMfState {
        let d = self.cfg.dim;
        let users = self.emb.user_rows() as usize;
        let items = self.emb.catalog as usize;
        let s = self.cfg.init_scale;
        let mut params = ParamSet::new();
        let gmf_user = params.add("gmf_user", Matrix::uniform(users, d, s, rng));
        let gmf_item = params.add("gmf_item", Matrix::uniform(items, d, s, rng));
        let mlp_user = params.add("mlp_user", Matrix::uniform(users, d, s, rng));
        let mlp_item = params.add("mlp_item", Matrix::uniform(items, d, s, rng));
        let mlp = Mlp::new(
            &mut params,
            "mlp",
            &[2 * d, d, d / 2],
            Activation::Relu,
            Activation::Relu,
            rng,
        );
        let out = Linear::new(&mut params, "out", d + d / 2, 1, rng);
        NeuMfState {
            params,
            gmf_user,
            gmf_item,
            mlp_user,
            mlp_item,
            mlp,
            out,
        }
    }

    /// Builds logits for a batch of (user, item) pairs.
    fn logits(state: &NeuMfState, g: &mut Graph<'_>, users: &[u32], items: &[u32]) -> tensor::Var {
        let gu = g.gather(state.gmf_user, users);
        let gi = g.gather(state.gmf_item, items);
        let gmf = g.mul(gu, gi);
        let mu = g.gather(state.mlp_user, users);
        let mi = g.gather(state.mlp_item, items);
        let x = g.concat_cols(mu, mi);
        let mlp_out = state.mlp.forward(g, x);
        let feat = g.concat_cols(gmf, mlp_out);
        state.out.forward(g, feat)
    }

    fn train_pass(&mut self, view: &LogView<'_>, pairs: &[(UserId, ItemId)], rng: &mut StdRng) {
        let cfg = self.cfg;
        let emb = self.emb;
        let state = self.state.as_mut().expect("fitted");
        let mut opt = Sgd::new(cfg.lr);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);

        let mut users: Vec<u32> = Vec::with_capacity(cfg.batch);
        let mut items: Vec<u32> = Vec::with_capacity(cfg.batch);
        let mut labels: Vec<f32> = Vec::with_capacity(cfg.batch);
        let mut grads = GradStore::zeros_like(&state.params);

        let mut flush = |users: &mut Vec<u32>,
                         items: &mut Vec<u32>,
                         labels: &mut Vec<f32>,
                         state: &mut NeuMfState,
                         grads: &mut GradStore| {
            if users.is_empty() {
                return;
            }
            let n = users.len();
            let targets = Matrix::from_vec(n, 1, std::mem::take(labels));
            let mask = Matrix::full(n, 1, 1.0);
            {
                let mut g = Graph::new(&state.params);
                let logits = Self::logits(state, &mut g, users, items);
                let loss = g.bce_with_logits(logits, targets, mask);
                g.backward(loss, grads);
            }
            opt.step(&mut state.params, grads);
            grads.zero();
            users.clear();
            items.clear();
        };

        for idx in order {
            let (u, i) = pairs[idx];
            users.push(emb.user_row(u) as u32);
            items.push(i);
            labels.push(1.0);
            for _ in 0..cfg.neg_ratio {
                let j = sample_negative(view, u, rng);
                users.push(emb.user_row(u) as u32);
                items.push(j);
                labels.push(0.0);
            }
            if users.len() >= cfg.batch {
                flush(&mut users, &mut items, &mut labels, state, &mut grads);
            }
        }
        flush(&mut users, &mut items, &mut labels, state, &mut grads);
    }

    fn reset_attacker_rows(&mut self, rng: &mut StdRng) {
        let scale = self.cfg.init_scale;
        let start = self.emb.base_users as usize;
        let state = self.state.as_mut().expect("fitted");
        for id in [state.gmf_user, state.mlp_user] {
            let table = state.params.get_mut(id);
            for r in start..table.rows() {
                for x in table.row_slice_mut(r) {
                    *x = rng.gen_range(-scale..=scale);
                }
            }
        }
    }
}

impl Ranker for NeuMf {
    fn name(&self) -> &'static str {
        "NeuMF"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        self.state = Some(self.init_state(&mut rng));
        let pairs = all_pairs(view);
        for _ in 0..self.cfg.epochs {
            self.train_pass(view, &pairs, &mut rng);
        }
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        assert!(self.state.is_some(), "NeuMf::fit must run before fine_tune");
        let mut rng = StdRng::seed_from_u64(seed);
        self.reset_attacker_rows(&mut rng);
        for _ in 0..self.cfg.ft_epochs {
            let pairs = fine_tune_pairs(view, self.cfg.ft_replay, &mut rng);
            self.train_pass(view, &pairs, &mut rng);
        }
    }

    fn score(&self, user: UserId, _history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let state = self
            .state
            .as_ref()
            .expect("NeuMf::fit must run before score");
        let row = self.emb.user_row(user) as u32;
        let users = vec![row; candidates.len()];
        let mut g = Graph::new(&state.params);
        let logits = Self::logits(state, &mut g, &users, candidates);
        g.value(logits).data().to_vec()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }

    fn item_embeddings(&self) -> Option<Matrix> {
        let state = self.state.as_ref()?;
        Some(state.params.get(state.gmf_item).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn clustered() -> Dataset {
        let mut histories = Vec::new();
        for u in 0..60u32 {
            let offset = if u < 30 { 0 } else { 10 };
            let h: Vec<u32> = (0..8).map(|t| offset + ((u + t) % 10)).collect();
            histories.push(h);
        }
        Dataset::from_histories("clustered", histories, 20, 2)
    }

    #[test]
    fn learns_cluster_structure() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = NeuMf::new(
            NeuMfConfig {
                dim: 8,
                epochs: 10,
                ..NeuMfConfig::default()
            },
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 3);
        let mut in_cluster = 0.0;
        let mut out_cluster = 0.0;
        for u in 0..5u32 {
            let seen = d.sequence(u);
            for i in 0..10u32 {
                if !seen.contains(&i) {
                    in_cluster += r.score(u, &[], &[i])[0];
                    out_cluster += r.score(u, &[], &[i + 10])[0];
                }
            }
        }
        assert!(
            in_cluster > out_cluster,
            "in={in_cluster} out={out_cluster}"
        );
    }

    /// Mean rank (0 = best) of `target` among all original items,
    /// averaged over users 0..10. Absolute logits drift during
    /// fine-tuning; rank is what decides RecNum.
    fn mean_target_rank(r: &NeuMf) -> f32 {
        let candidates: Vec<ItemId> = (0..21).collect(); // 20 originals + target
        let mut total = 0.0;
        for u in 0..10u32 {
            let scores = r.score(u, &[], &candidates);
            let target_score = scores[20];
            total += scores[..20].iter().filter(|&&s| s > target_score).count() as f32;
        }
        total / 10.0
    }

    #[test]
    fn target_only_poison_raises_target_rank() {
        // The paper finds clicking only the target is an effective
        // NeuMF attack; verify the mechanism exists.
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = NeuMf::new(NeuMfConfig::default(), EmbeddingConfig::for_view(&view, 4));
        r.fit(&view, 3);
        let target = 20;
        let before = mean_target_rank(&r);
        let poison: Vec<Vec<ItemId>> = (0..4).map(|_| vec![target; 20]).collect();
        let pview = LogView::new(&d, &poison);
        let mut poisoned = r.clone();
        poisoned.fine_tune(&pview, 9);
        let after = mean_target_rank(&poisoned);
        assert!(after < before, "rank before={before} after={after}");
    }

    #[test]
    fn score_is_deterministic() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = NeuMf::new(NeuMfConfig::default(), EmbeddingConfig::for_view(&view, 4));
        r.fit(&view, 5);
        assert_eq!(r.score(1, &[], &[0, 5, 21]), r.score(1, &[], &[0, 5, 21]));
    }
}
