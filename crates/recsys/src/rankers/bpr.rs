//! BPR (Rendle et al., 2009): Bayesian personalized ranking, paper
//! testbed #4. Optimizes the same latent-factor tables as PMF with a
//! pairwise logistic ranking loss over (user, positive, negative)
//! triples.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::common::{
    all_pairs, fine_tune_pairs, sample_negative, EmbeddingConfig, MfTables,
};
use crate::rankers::Ranker;

/// BPR hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct BprConfig {
    pub dim: usize,
    pub lr: f32,
    pub reg: f32,
    pub epochs: usize,
    pub ft_epochs: usize,
    pub ft_replay: usize,
    pub init_scale: f32,
}

impl Default for BprConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            lr: 0.05,
            reg: 0.01,
            epochs: 4,
            ft_epochs: 3,
            ft_replay: 2000,
            init_scale: 0.1,
        }
    }
}

/// Bayesian personalized ranking ranker.
#[derive(Clone, Debug)]
pub struct Bpr {
    cfg: BprConfig,
    emb: EmbeddingConfig,
    tables: Option<MfTables>,
}

impl Bpr {
    pub fn new(cfg: BprConfig, emb: EmbeddingConfig) -> Self {
        Self {
            cfg,
            emb,
            tables: None,
        }
    }

    fn tables(&self) -> &MfTables {
        self.tables.as_ref().expect("Bpr::fit must run before use")
    }

    fn train_pass(&mut self, view: &LogView<'_>, pairs: &[(UserId, ItemId)], rng: &mut StdRng) {
        let cfg = self.cfg;
        let tables = self.tables.as_mut().expect("fitted");
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        for idx in order {
            let (u, i) = pairs[idx];
            let j = sample_negative(view, u, rng);
            tables.sgd_bpr(u, i, j, cfg.lr, cfg.reg);
        }
    }
}

impl Ranker for Bpr {
    fn name(&self) -> &'static str {
        "BPR"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        self.tables = Some(MfTables::init(
            self.emb,
            self.cfg.dim,
            self.cfg.init_scale,
            &mut rng,
        ));
        let pairs = all_pairs(view);
        for _ in 0..self.cfg.epochs {
            self.train_pass(view, &pairs, &mut rng);
        }
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = self.cfg.init_scale;
        self.tables
            .as_mut()
            .expect("Bpr::fit must run before fine_tune")
            .reset_attacker_rows(scale, &mut rng);
        for _ in 0..self.cfg.ft_epochs {
            let pairs = fine_tune_pairs(view, self.cfg.ft_replay, &mut rng);
            self.train_pass(view, &pairs, &mut rng);
        }
    }

    fn score(&self, user: UserId, _history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let t = self.tables();
        candidates.iter().map(|&c| t.predict(user, c)).collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }

    fn item_embeddings(&self) -> Option<tensor::Matrix> {
        Some(self.tables().item_matrix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn clustered() -> Dataset {
        let mut histories = Vec::new();
        for u in 0..40u32 {
            let offset = if u < 20 { 0 } else { 10 };
            let h: Vec<u32> = (0..8).map(|t| offset + ((u + t) % 10)).collect();
            histories.push(h);
        }
        Dataset::from_histories("clustered", histories, 20, 2)
    }

    #[test]
    fn learns_cluster_structure() {
        // With a tiny catalog the model memorizes seen items, so judge
        // generalization by comparing *unseen* in-cluster items against
        // out-of-cluster items (dim kept small to force factor sharing).
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = Bpr::new(
            BprConfig {
                dim: 4,
                epochs: 12,
                ..BprConfig::default()
            },
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 3);
        let mut in_cluster = 0.0;
        let mut out_cluster = 0.0;
        for u in 0..5u32 {
            let seen = d.sequence(u);
            for i in 0..10u32 {
                if !seen.contains(&i) {
                    in_cluster += r.score(u, &[], &[i])[0];
                    out_cluster += r.score(u, &[], &[i + 10])[0];
                }
            }
        }
        assert!(
            in_cluster > out_cluster,
            "in={in_cluster} out={out_cluster}"
        );
    }

    #[test]
    fn pairwise_update_moves_positive_above_negative() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let mut tables = MfTables::init(EmbeddingConfig::for_view(&view, 0), 8, 0.1, &mut rng);
        let (u, i, j) = (0, 3, 17);
        let gap_before = tables.predict(u, i) - tables.predict(u, j);
        for _ in 0..50 {
            tables.sgd_bpr(u, i, j, 0.1, 0.0);
        }
        let gap_after = tables.predict(u, i) - tables.predict(u, j);
        assert!(gap_after > gap_before);
        assert!(gap_after > 1.0, "gap {gap_after}");
    }
}
