//! PMF (Salakhutdinov & Mnih, 2007): matrix factorization with Gaussian
//! priors, paper testbed #3. Adapted to implicit feedback the standard
//! way — observed clicks are `y = 1`, sampled unobserved items are
//! `y = 0`, squared loss, L2 regularization (the MAP view of the
//! Gaussian priors). Hand-written SGD keeps retraining cheap enough for
//! the thousands of poison evaluations the RL loop needs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::common::{
    all_pairs, fine_tune_pairs, sample_negative, EmbeddingConfig, MfTables,
};
use crate::rankers::Ranker;

/// PMF hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct PmfConfig {
    pub dim: usize,
    pub lr: f32,
    pub reg: f32,
    /// Negatives sampled per positive.
    pub neg_ratio: usize,
    /// Full-fit epochs.
    pub epochs: usize,
    /// Warm-start epochs over poison + replay.
    pub ft_epochs: usize,
    /// Organic interactions replayed per fine-tune epoch.
    pub ft_replay: usize,
    pub init_scale: f32,
}

impl Default for PmfConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            lr: 0.05,
            reg: 0.02,
            neg_ratio: 4,
            epochs: 3,
            ft_epochs: 3,
            ft_replay: 2000,
            init_scale: 0.1,
        }
    }
}

/// Probabilistic matrix factorization ranker.
#[derive(Clone, Debug)]
pub struct Pmf {
    cfg: PmfConfig,
    emb: EmbeddingConfig,
    tables: Option<MfTables>,
}

impl Pmf {
    pub fn new(cfg: PmfConfig, emb: EmbeddingConfig) -> Self {
        Self {
            cfg,
            emb,
            tables: None,
        }
    }

    fn tables(&self) -> &MfTables {
        self.tables.as_ref().expect("Pmf::fit must run before use")
    }

    fn train_pass(&mut self, view: &LogView<'_>, pairs: &[(UserId, ItemId)], rng: &mut StdRng) {
        let cfg = self.cfg;
        let tables = self.tables.as_mut().expect("fitted");
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        for idx in order {
            let (u, i) = pairs[idx];
            tables.sgd_pointwise(u, i, 1.0, cfg.lr, cfg.reg);
            for _ in 0..cfg.neg_ratio {
                let j = sample_negative(view, u, rng);
                tables.sgd_pointwise(u, j, 0.0, cfg.lr, cfg.reg);
            }
        }
    }
}

impl Ranker for Pmf {
    fn name(&self) -> &'static str {
        "PMF"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        self.tables = Some(MfTables::init(
            self.emb,
            self.cfg.dim,
            self.cfg.init_scale,
            &mut rng,
        ));
        let pairs = all_pairs(view);
        for _ in 0..self.cfg.epochs {
            self.train_pass(view, &pairs, &mut rng);
        }
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = self.cfg.init_scale;
        self.tables
            .as_mut()
            .expect("Pmf::fit must run before fine_tune")
            .reset_attacker_rows(scale, &mut rng);
        for _ in 0..self.cfg.ft_epochs {
            let pairs = fine_tune_pairs(view, self.cfg.ft_replay, &mut rng);
            self.train_pass(view, &pairs, &mut rng);
        }
    }

    fn score(&self, user: UserId, _history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let t = self.tables();
        candidates.iter().map(|&c| t.predict(user, c)).collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }

    fn item_embeddings(&self) -> Option<tensor::Matrix> {
        Some(self.tables().item_matrix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    /// Two disjoint user clusters with disjoint item tastes: PMF must
    /// learn to score in-cluster items above out-of-cluster items.
    fn clustered() -> Dataset {
        let mut histories = Vec::new();
        for u in 0..40u32 {
            let offset = if u < 20 { 0 } else { 10 };
            let mut h = Vec::new();
            for t in 0..8 {
                h.push(offset + ((u + t) % 10));
            }
            histories.push(h);
        }
        Dataset::from_histories("clustered", histories, 20, 2)
    }

    #[test]
    fn learns_cluster_structure() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = Pmf::new(
            PmfConfig {
                epochs: 10,
                ..PmfConfig::default()
            },
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 7);
        // User 0 lives in cluster A (items 0..10).
        let mut in_cluster = 0.0;
        let mut out_cluster = 0.0;
        for i in 0..10 {
            in_cluster += r.score(0, &[], &[i])[0];
            out_cluster += r.score(0, &[], &[i + 10])[0];
        }
        assert!(
            in_cluster > out_cluster,
            "in={in_cluster} out={out_cluster}"
        );
    }

    #[test]
    fn fit_is_deterministic() {
        let d = clustered();
        let view = LogView::clean(&d);
        let emb = EmbeddingConfig::for_view(&view, 4);
        let mut a = Pmf::new(PmfConfig::default(), emb);
        let mut b = Pmf::new(PmfConfig::default(), emb);
        a.fit(&view, 5);
        b.fit(&view, 5);
        assert_eq!(a.score(3, &[], &[0, 5, 20]), b.score(3, &[], &[0, 5, 20]));
    }

    #[test]
    fn poison_raises_target_score() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = Pmf::new(PmfConfig::default(), EmbeddingConfig::for_view(&view, 4));
        r.fit(&view, 7);
        let target = 20; // first target item
        let before: f32 = (0..10).map(|u| r.score(u, &[], &[target])[0]).sum();
        // Attackers click the target together with cluster-A items.
        let poison: Vec<Vec<ItemId>> = (0..4)
            .map(|a| (0..10).flat_map(|t| [target, (a + t) % 10]).collect())
            .collect();
        let pview = LogView::new(&d, &poison);
        let mut poisoned = r.clone();
        poisoned.fine_tune(&pview, 9);
        let after: f32 = (0..10).map(|u| poisoned.score(u, &[], &[target])[0]).sum();
        assert!(after > before, "before={before} after={after}");
    }
}
