//! Shared plumbing for the learned rankers: table sizing, negative
//! sampling, and the replay buffer used by warm-start fine-tuning.

use rand::rngs::StdRng;
use rand::Rng;

use crate::data::{ItemId, LogView, UserId};

/// Sizing information for user/item embedding tables.
///
/// Tables must be allocated once (at `fit` time) yet score logs whose
/// user count grows when attackers are injected, so we reserve
/// `reserve_attackers` extra user rows up front.
#[derive(Copy, Clone, Debug)]
pub struct EmbeddingConfig {
    /// Organic user count at fit time.
    pub base_users: u32,
    /// Extra user rows reserved for injected attacker accounts.
    pub reserve_attackers: u32,
    /// Catalog size `|I| + |I_t|`.
    pub catalog: u32,
    /// Original item count `|I|` (targets occupy `num_items..catalog`).
    pub num_items: u32,
}

impl EmbeddingConfig {
    pub fn for_view(view: &LogView<'_>, reserve_attackers: u32) -> Self {
        Self {
            base_users: view.base().num_users(),
            reserve_attackers,
            catalog: view.catalog(),
            num_items: view.base().num_items(),
        }
    }

    /// Total user rows (organic + reserved).
    pub fn user_rows(&self) -> u32 {
        self.base_users + self.reserve_attackers
    }

    /// Maps a (possibly attacker) user id to its table row.
    ///
    /// # Panics
    /// Panics if more attackers are injected than were reserved.
    pub fn user_row(&self, user: UserId) -> usize {
        assert!(
            user < self.user_rows(),
            "user {user} exceeds reserved rows ({} organic + {} attackers); \
             raise reserve_attackers",
            self.base_users,
            self.reserve_attackers
        );
        user as usize
    }
}

/// A `(user, positive item)` training pair.
pub type Pair = (UserId, ItemId);

/// Collects every interaction of the view into training pairs.
pub fn all_pairs(view: &LogView<'_>) -> Vec<Pair> {
    view.interactions().collect()
}

/// Training pairs for a fine-tune pass: every poison interaction plus
/// `replay` organic interactions sampled uniformly. The poison must be
/// seen together with organic contrast data or the warm model would
/// simply drift.
pub fn fine_tune_pairs(view: &LogView<'_>, replay: usize, rng: &mut StdRng) -> Vec<Pair> {
    let organic_users = view.base().num_users();
    let mut pairs: Vec<Pair> = Vec::new();
    for (a, traj) in view.poison().iter().enumerate() {
        let user = organic_users + a as UserId;
        pairs.extend(traj.iter().map(|&i| (user, i)));
    }
    let base = view.base();
    if base.num_interactions() > 0 {
        for _ in 0..replay {
            let user = rng.gen_range(0..organic_users);
            let seq = base.sequence(user);
            if seq.is_empty() {
                continue;
            }
            let item = seq[rng.gen_range(0..seq.len())];
            pairs.push((user, item));
        }
    }
    pairs
}

/// Samples an *original* item the user has not interacted with in the
/// view. Negatives are drawn from `I` only: realistic samplers pick
/// negatives by popularity / from the training catalog, so brand-new
/// target items (zero organic interactions) are effectively never
/// negative-sampled — which is precisely what lets poison positives on
/// targets go uncontested. Falls back to any original item after a few
/// rejections (dense users).
pub fn sample_negative(view: &LogView<'_>, user: UserId, rng: &mut StdRng) -> ItemId {
    let originals = view.base().num_items();
    let seq = view.sequence(user);
    for _ in 0..8 {
        let item = rng.gen_range(0..originals);
        if !seq.contains(&item) {
            return item;
        }
    }
    rng.gen_range(0..originals)
}

/// Derives a child seed (SplitMix64 step) so components can fan out
/// independent deterministic RNG streams from one experiment seed.
pub fn child_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let histories = (0..10u32)
            .map(|u| vec![u % 5, (u + 1) % 5, (u + 2) % 5, (u + 3) % 5])
            .collect();
        Dataset::from_histories("toy", histories, 5, 2)
    }

    #[test]
    fn user_row_mapping_and_panic() {
        let d = toy();
        let view = LogView::clean(&d);
        let cfg = EmbeddingConfig::for_view(&view, 3);
        assert_eq!(cfg.user_rows(), 13);
        assert_eq!(cfg.user_row(12), 12);
        let result = std::panic::catch_unwind(|| cfg.user_row(13));
        assert!(result.is_err());
    }

    #[test]
    fn fine_tune_pairs_contains_all_poison() {
        let d = toy();
        let poison = vec![vec![5, 0, 5], vec![6, 1]];
        let view = LogView::new(&d, &poison);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = fine_tune_pairs(&view, 7, &mut rng);
        let poison_pairs: Vec<_> = pairs.iter().filter(|&&(u, _)| u >= d.num_users()).collect();
        assert_eq!(poison_pairs.len(), 5);
        assert_eq!(pairs.len(), 12);
        // Attacker ids map past the organic users.
        assert!(poison_pairs.iter().all(|&&(u, _)| u == 10 || u == 11));
    }

    #[test]
    fn negative_sampling_avoids_history() {
        let d = toy();
        let view = LogView::clean(&d);
        let mut rng = StdRng::seed_from_u64(2);
        // User 0 history is [0,1]; the sampler should essentially
        // always dodge it and must never emit a target item.
        let mut dodged = 0;
        for _ in 0..100 {
            let n = sample_negative(&view, 0, &mut rng);
            assert!(n < d.num_items(), "negative {n} is a target item");
            if !view.sequence(0).contains(&n) {
                dodged += 1;
            }
        }
        assert!(dodged > 95);
    }

    #[test]
    fn child_seed_streams_differ() {
        let a = child_seed(42, 0);
        let b = child_seed(42, 1);
        let c = child_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, child_seed(42, 0));
    }
}

/// Flat user/item latent-factor tables shared by the matrix-factorization
/// rankers (PMF, BPR). Stored as contiguous `Vec<f32>` for cache-friendly
/// hand-written SGD.
#[derive(Clone, Debug)]
pub struct MfTables {
    pub dim: usize,
    cfg: EmbeddingConfig,
    user: Vec<f32>,
    item: Vec<f32>,
    /// Per-item bias; empty when the model is bias-free (classic PMF
    /// is a pure inner product — keeping it that way also removes an
    /// unrealistic global-boost attack pathway).
    pub item_bias: Vec<f32>,
}

impl MfTables {
    /// Fresh tables with uniform(-scale, scale) entries.
    pub fn init(cfg: EmbeddingConfig, dim: usize, scale: f32, rng: &mut StdRng) -> Self {
        let user_len = cfg.user_rows() as usize * dim;
        let item_len = cfg.catalog as usize * dim;
        Self {
            dim,
            cfg,
            user: (0..user_len)
                .map(|_| rng.gen_range(-scale..=scale))
                .collect(),
            item: (0..item_len)
                .map(|_| rng.gen_range(-scale..=scale))
                .collect(),
            item_bias: vec![0.0; cfg.catalog as usize],
        }
    }

    pub fn cfg(&self) -> EmbeddingConfig {
        self.cfg
    }

    #[inline]
    pub fn user_vec(&self, u: UserId) -> &[f32] {
        let r = self.cfg.user_row(u);
        &self.user[r * self.dim..(r + 1) * self.dim]
    }

    #[inline]
    pub fn item_vec(&self, i: ItemId) -> &[f32] {
        let i = i as usize;
        &self.item[i * self.dim..(i + 1) * self.dim]
    }

    /// The full item-factor table as a matrix (`catalog x dim`).
    pub fn item_matrix(&self) -> tensor::Matrix {
        tensor::Matrix::from_vec(self.cfg.catalog as usize, self.dim, self.item.clone())
    }

    /// Predicted preference `p_u · q_i (+ b_i)`.
    #[inline]
    pub fn predict(&self, u: UserId, i: ItemId) -> f32 {
        let p = self.user_vec(u);
        let q = self.item_vec(i);
        let mut acc = self.item_bias.get(i as usize).copied().unwrap_or(0.0);
        for (a, b) in p.iter().zip(q) {
            acc += a * b;
        }
        acc
    }

    /// Re-randomizes the reserved attacker rows (called at the start of
    /// every fine-tune so stale attacker state never leaks between
    /// attack evaluations).
    pub fn reset_attacker_rows(&mut self, scale: f32, rng: &mut StdRng) {
        let start = self.cfg.base_users as usize * self.dim;
        for x in &mut self.user[start..] {
            *x = rng.gen_range(-scale..=scale);
        }
    }

    /// One SGD step of squared-error loss `(pred - y)^2` with L2 `reg`.
    pub fn sgd_pointwise(&mut self, u: UserId, i: ItemId, y: f32, lr: f32, reg: f32) {
        let err = self.predict(u, i) - y;
        let r = self.cfg.user_row(u);
        let ii = i as usize;
        let dim = self.dim;
        for d in 0..dim {
            let pu = self.user[r * dim + d];
            let qi = self.item[ii * dim + d];
            self.user[r * dim + d] -= lr * (err * qi + reg * pu);
            self.item[ii * dim + d] -= lr * (err * pu + reg * qi);
        }
        if let Some(b) = self.item_bias.get_mut(ii) {
            *b -= lr * (err + reg * *b);
        }
    }

    /// One SGD step of the BPR pairwise loss `-ln σ(x_ui - x_uj)`.
    pub fn sgd_bpr(&mut self, u: UserId, i: ItemId, j: ItemId, lr: f32, reg: f32) {
        let x = self.predict(u, i) - self.predict(u, j);
        // d/dx [-ln σ(x)] = -(1 - σ(x)) = -σ(-x)
        let s = tensor::stable_sigmoid(-x);
        let r = self.cfg.user_row(u);
        let (ii, jj) = (i as usize, j as usize);
        let dim = self.dim;
        for d in 0..dim {
            let pu = self.user[r * dim + d];
            let qi = self.item[ii * dim + d];
            let qj = self.item[jj * dim + d];
            self.user[r * dim + d] += lr * (s * (qi - qj) - reg * pu);
            self.item[ii * dim + d] += lr * (s * pu - reg * qi);
            self.item[jj * dim + d] += lr * (-s * pu - reg * qj);
        }
        if !self.item_bias.is_empty() {
            self.item_bias[ii] += lr * (s - reg * self.item_bias[ii]);
            self.item_bias[jj] += lr * (-s - reg * self.item_bias[jj]);
        }
    }
}
