//! The eight ranker testbeds of the paper (§IV-A) behind one
//! object-safe [`Ranker`] trait.
//!
//! Every ranker supports two training entry points mirroring the
//! paper's `DataPoisoning` routine (Algorithm 1):
//!
//! * [`Ranker::fit`] — full training on a (usually clean) log; expensive,
//!   done once per dataset and cached by the harness.
//! * [`Ranker::fine_tune`] — warm-start update after fake trajectories
//!   are injected ("Reload the Ranker R. Update R with D^p"): the model
//!   keeps its fitted weights and takes a short training pass over the
//!   poison plus a replay sample of organic data.
//!
//! Determinism: both entry points take a `seed`; identical
//! `(state, view, seed)` yields identical models.

mod autorec;
mod bpr;
pub mod common;
mod covisit;
mod gru4rec;
mod itempop;
mod neumf;
mod ngcf;
mod pmf;

pub use autorec::{AutoRec, AutoRecConfig};
pub use bpr::{Bpr, BprConfig};
pub use common::EmbeddingConfig;
pub use covisit::CoVisitation;
pub use gru4rec::{Gru4Rec, Gru4RecConfig};
pub use itempop::ItemPop;
pub use neumf::{NeuMf, NeuMfConfig};
pub use ngcf::{Ngcf, NgcfConfig};
pub use pmf::{Pmf, PmfConfig};

use crate::data::{ItemId, LogView, UserId};

/// A recommendation model that can be (re)trained on an interaction log
/// and asked to score candidate items for a user.
///
/// `Send + Sync` is part of the contract: a fitted ranker is shared
/// read-only across observation threads (`BlackBoxSystem` snapshots it
/// with [`Ranker::boxed_clone`] before any mutation), so scoring and
/// cloning must be safe from `&self` on multiple threads at once.
/// Rankers that want interior caches must guard them with sync
/// primitives rather than `Cell`/`RefCell`.
pub trait Ranker: Send + Sync {
    /// Short algorithm name, e.g. `"BPR"`.
    fn name(&self) -> &'static str;

    /// Full training from the current (possibly fresh) state.
    fn fit(&mut self, view: &LogView<'_>, seed: u64);

    /// Warm-start update after poison injection.
    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64);

    /// Preference scores for `candidates`, higher = more preferred.
    /// `history` is the user's organic click sequence (used by
    /// sequence- and item-based models).
    fn score(&self, user: UserId, history: &[ItemId], candidates: &[ItemId]) -> Vec<f32>;

    /// Clone through the trait object (the harness snapshots the clean
    /// model before every attack evaluation).
    fn boxed_clone(&self) -> Box<dyn Ranker>;

    /// The learned item-id embedding table (`catalog x dim`), if the
    /// model has one. Drives the paper's Figure 6 t-SNE plots; models
    /// without item embeddings (ItemPop, CoVisitation, AutoRec) return
    /// `None` and the paper reuses PMF's embeddings for them.
    fn item_embeddings(&self) -> Option<tensor::Matrix> {
        None
    }
}

impl Clone for Box<dyn Ranker> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Factory over all eight algorithms, mirroring the paper's testbed
/// list in order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RankerKind {
    ItemPop,
    CoVisitation,
    Pmf,
    Bpr,
    NeuMf,
    AutoRec,
    Gru4Rec,
    Ngcf,
}

/// One row of the testbed registry: the kind, its display name, and a
/// constructor with default hyperparameters.
struct RankerEntry {
    kind: RankerKind,
    name: &'static str,
    build: fn(EmbeddingConfig) -> Box<dyn Ranker>,
}

/// The registry, in the paper's column order (Table III). `name`,
/// `FromStr`, and `build` are all lookups into this single table, so
/// adding a testbed is a one-line change.
static REGISTRY: [RankerEntry; 8] = [
    RankerEntry {
        kind: RankerKind::ItemPop,
        name: "ItemPop",
        build: |_| Box::new(ItemPop::new()),
    },
    RankerEntry {
        kind: RankerKind::CoVisitation,
        name: "CoVisitation",
        build: |_| Box::new(CoVisitation::new()),
    },
    RankerEntry {
        kind: RankerKind::Pmf,
        name: "PMF",
        build: |emb| Box::new(Pmf::new(PmfConfig::default(), emb)),
    },
    RankerEntry {
        kind: RankerKind::Bpr,
        name: "BPR",
        build: |emb| Box::new(Bpr::new(BprConfig::default(), emb)),
    },
    RankerEntry {
        kind: RankerKind::NeuMf,
        name: "NeuMF",
        build: |emb| Box::new(NeuMf::new(NeuMfConfig::default(), emb)),
    },
    RankerEntry {
        kind: RankerKind::AutoRec,
        name: "AutoRec",
        build: |emb| Box::new(AutoRec::new(AutoRecConfig::default(), emb)),
    },
    RankerEntry {
        kind: RankerKind::Gru4Rec,
        name: "GRU4Rec",
        build: |emb| Box::new(Gru4Rec::new(Gru4RecConfig::default(), emb)),
    },
    RankerEntry {
        kind: RankerKind::Ngcf,
        name: "NGCF",
        build: |emb| Box::new(Ngcf::new(NgcfConfig::default(), emb)),
    },
];

impl RankerKind {
    /// All testbeds in the paper's column order (Table III).
    pub const ALL: [RankerKind; 8] = [
        RankerKind::ItemPop,
        RankerKind::CoVisitation,
        RankerKind::Pmf,
        RankerKind::Bpr,
        RankerKind::NeuMf,
        RankerKind::AutoRec,
        RankerKind::Gru4Rec,
        RankerKind::Ngcf,
    ];

    /// All testbeds, as an iterator (registry order).
    pub fn all() -> impl ExactSizeIterator<Item = RankerKind> + Clone {
        REGISTRY.iter().map(|e| e.kind)
    }

    fn entry(self) -> &'static RankerEntry {
        REGISTRY
            .iter()
            .find(|e| e.kind == self)
            .expect("every RankerKind is registered")
    }

    pub fn name(self) -> &'static str {
        self.entry().name
    }

    /// Instantiates an untrained ranker with default hyperparameters
    /// sized for `view` (embedding tables reserve room for
    /// `reserve_attackers` injected accounts).
    pub fn build(self, view: &LogView<'_>, reserve_attackers: u32) -> Box<dyn Ranker> {
        (self.entry().build)(EmbeddingConfig::for_view(view, reserve_attackers))
    }
}

/// Error from parsing an unknown ranker name; lists the valid ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownRanker(pub String);

impl std::fmt::Display for UnknownRanker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown ranker `{}` (expected one of: ", self.0)?;
        for (i, e) in REGISTRY.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(e.name)?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownRanker {}

impl std::str::FromStr for RankerKind {
    type Err = UnknownRanker;

    /// Case-insensitive lookup by registry name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        REGISTRY
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(s))
            .map(|e| e.kind)
            .ok_or_else(|| UnknownRanker(s.to_string()))
    }
}

impl std::fmt::Display for RankerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for kind in RankerKind::ALL {
            assert_eq!(kind.name().parse(), Ok(kind));
            assert_eq!(kind.name().to_lowercase().parse(), Ok(kind));
        }
        assert_eq!(
            "nope".parse::<RankerKind>(),
            Err(UnknownRanker("nope".into()))
        );
        assert!("nope"
            .parse::<RankerKind>()
            .unwrap_err()
            .to_string()
            .contains("GRU4Rec"));
    }

    #[test]
    fn registry_matches_all_const() {
        assert!(RankerKind::all().eq(RankerKind::ALL));
    }
}
