//! The eight ranker testbeds of the paper (§IV-A) behind one
//! object-safe [`Ranker`] trait.
//!
//! Every ranker supports two training entry points mirroring the
//! paper's `DataPoisoning` routine (Algorithm 1):
//!
//! * [`Ranker::fit`] — full training on a (usually clean) log; expensive,
//!   done once per dataset and cached by the harness.
//! * [`Ranker::fine_tune`] — warm-start update after fake trajectories
//!   are injected ("Reload the Ranker R. Update R with D^p"): the model
//!   keeps its fitted weights and takes a short training pass over the
//!   poison plus a replay sample of organic data.
//!
//! Determinism: both entry points take a `seed`; identical
//! `(state, view, seed)` yields identical models.

mod autorec;
mod bpr;
pub mod common;
mod covisit;
mod gru4rec;
mod itempop;
mod neumf;
mod ngcf;
mod pmf;

pub use autorec::{AutoRec, AutoRecConfig};
pub use bpr::{Bpr, BprConfig};
pub use common::EmbeddingConfig;
pub use covisit::CoVisitation;
pub use gru4rec::{Gru4Rec, Gru4RecConfig};
pub use itempop::ItemPop;
pub use neumf::{NeuMf, NeuMfConfig};
pub use ngcf::{Ngcf, NgcfConfig};
pub use pmf::{Pmf, PmfConfig};

use crate::data::{ItemId, LogView, UserId};

/// A recommendation model that can be (re)trained on an interaction log
/// and asked to score candidate items for a user.
pub trait Ranker: Send {
    /// Short algorithm name, e.g. `"BPR"`.
    fn name(&self) -> &'static str;

    /// Full training from the current (possibly fresh) state.
    fn fit(&mut self, view: &LogView<'_>, seed: u64);

    /// Warm-start update after poison injection.
    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64);

    /// Preference scores for `candidates`, higher = more preferred.
    /// `history` is the user's organic click sequence (used by
    /// sequence- and item-based models).
    fn score(&self, user: UserId, history: &[ItemId], candidates: &[ItemId]) -> Vec<f32>;

    /// Clone through the trait object (the harness snapshots the clean
    /// model before every attack evaluation).
    fn boxed_clone(&self) -> Box<dyn Ranker>;

    /// The learned item-id embedding table (`catalog x dim`), if the
    /// model has one. Drives the paper's Figure 6 t-SNE plots; models
    /// without item embeddings (ItemPop, CoVisitation, AutoRec) return
    /// `None` and the paper reuses PMF's embeddings for them.
    fn item_embeddings(&self) -> Option<tensor::Matrix> {
        None
    }
}

impl Clone for Box<dyn Ranker> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Factory over all eight algorithms, mirroring the paper's testbed
/// list in order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RankerKind {
    ItemPop,
    CoVisitation,
    Pmf,
    Bpr,
    NeuMf,
    AutoRec,
    Gru4Rec,
    Ngcf,
}

impl RankerKind {
    /// All testbeds in the paper's column order (Table III).
    pub const ALL: [RankerKind; 8] = [
        RankerKind::ItemPop,
        RankerKind::CoVisitation,
        RankerKind::Pmf,
        RankerKind::Bpr,
        RankerKind::NeuMf,
        RankerKind::AutoRec,
        RankerKind::Gru4Rec,
        RankerKind::Ngcf,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RankerKind::ItemPop => "ItemPop",
            RankerKind::CoVisitation => "CoVisitation",
            RankerKind::Pmf => "PMF",
            RankerKind::Bpr => "BPR",
            RankerKind::NeuMf => "NeuMF",
            RankerKind::AutoRec => "AutoRec",
            RankerKind::Gru4Rec => "GRU4Rec",
            RankerKind::Ngcf => "NGCF",
        }
    }

    /// Parses the (case-insensitive) ranker name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Instantiates an untrained ranker with default hyperparameters
    /// sized for `view` (embedding tables reserve room for
    /// `reserve_attackers` injected accounts).
    pub fn build(self, view: &LogView<'_>, reserve_attackers: u32) -> Box<dyn Ranker> {
        let emb = EmbeddingConfig::for_view(view, reserve_attackers);
        match self {
            RankerKind::ItemPop => Box::new(ItemPop::new()),
            RankerKind::CoVisitation => Box::new(CoVisitation::new()),
            RankerKind::Pmf => Box::new(Pmf::new(PmfConfig::default(), emb)),
            RankerKind::Bpr => Box::new(Bpr::new(BprConfig::default(), emb)),
            RankerKind::NeuMf => Box::new(NeuMf::new(NeuMfConfig::default(), emb)),
            RankerKind::AutoRec => Box::new(AutoRec::new(AutoRecConfig::default(), emb)),
            RankerKind::Gru4Rec => Box::new(Gru4Rec::new(Gru4RecConfig::default(), emb)),
            RankerKind::Ngcf => Box::new(Ngcf::new(NgcfConfig::default(), emb)),
        }
    }
}

impl std::fmt::Display for RankerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for kind in RankerKind::ALL {
            assert_eq!(RankerKind::parse(kind.name()), Some(kind));
            assert_eq!(RankerKind::parse(&kind.name().to_lowercase()), Some(kind));
        }
        assert_eq!(RankerKind::parse("nope"), None);
    }
}
