//! ItemPop: non-personalized popularity ranking (paper testbed #1).
//! Items are scored by their click count in the (possibly poisoned)
//! log. The attack surface is blunt but real: enough fake clicks make a
//! target item look popular.

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::Ranker;

/// Popularity ranker.
#[derive(Clone, Debug, Default)]
pub struct ItemPop {
    counts: Vec<u32>,
}

impl ItemPop {
    pub fn new() -> Self {
        Self::default()
    }

    /// Click count of an item (0 before `fit`).
    pub fn count(&self, item: ItemId) -> u32 {
        self.counts.get(item as usize).copied().unwrap_or(0)
    }
}

impl Ranker for ItemPop {
    fn name(&self) -> &'static str {
        "ItemPop"
    }

    fn fit(&mut self, view: &LogView<'_>, _seed: u64) {
        self.counts = view.popularity();
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        // Counting is exact and cheap; a "fine-tune" is a recount.
        self.fit(view, seed);
    }

    fn score(&self, _user: UserId, _history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        candidates.iter().map(|&c| self.count(c) as f32).collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn toy() -> Dataset {
        Dataset::from_histories(
            "toy",
            vec![vec![0, 1, 1, 2, 3], vec![1, 0, 2, 3], vec![1, 2, 0, 4]],
            5,
            2,
        )
    }

    #[test]
    fn scores_follow_counts() {
        let d = toy();
        let mut r = ItemPop::new();
        r.fit(&LogView::clean(&d), 0);
        let s = r.score(0, &[], &[0, 1, 5]);
        assert!(s[1] > s[0], "item 1 is clicked most");
        assert_eq!(s[2], 0.0, "targets start unpopular");
    }

    #[test]
    fn poison_inflates_target() {
        let d = toy();
        let mut r = ItemPop::new();
        r.fit(&LogView::clean(&d), 0);
        let before = r.score(0, &[], &[5])[0];
        let poison = vec![vec![5; 10]];
        let view = LogView::new(&d, &poison);
        r.fine_tune(&view, 0);
        let after = r.score(0, &[], &[5])[0];
        assert_eq!(before, 0.0);
        assert_eq!(after, 10.0);
    }
}
