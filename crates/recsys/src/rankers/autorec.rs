//! AutoRec (Sedhain et al., 2015): autoencoder collaborative filtering,
//! paper testbed #6. We implement the user-based variant (U-AutoRec):
//! a user's binary interaction vector over the catalog is encoded
//! through a sigmoid hidden layer and decoded back; candidates are
//! scored by their reconstructed value.
//!
//! Implicit-feedback adaptation: reconstructing an all-ones observed
//! vector is degenerate, so the masked loss covers the observed entries
//! (`y = 1`) *and* a sample of unobserved entries (`y = 0`), as in
//! denoising/CDAE-style training.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tensor::nn::Linear;
use tensor::optim::{Optimizer, Sgd};
use tensor::{GradStore, Graph, Matrix, ParamSet};

use crate::data::{ItemId, LogView, UserId};
use crate::rankers::common::EmbeddingConfig;
use crate::rankers::Ranker;

/// AutoRec hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct AutoRecConfig {
    pub hidden: usize,
    pub lr: f32,
    /// Unobserved entries sampled per observed entry in the loss mask.
    pub neg_ratio: usize,
    /// Loss weight of sampled zero targets relative to observed ones.
    /// A soft prior toward 0 keeps the decoder honest without letting
    /// organic users' unobserved entries drown out poison positives.
    pub neg_weight: f32,
    pub epochs: usize,
    pub ft_epochs: usize,
    /// Organic users replayed per fine-tune epoch.
    pub ft_replay_users: usize,
    pub batch: usize,
}

impl Default for AutoRecConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.1,
            neg_ratio: 3,
            neg_weight: 0.5,
            epochs: 3,
            ft_epochs: 3,
            ft_replay_users: 64,
            batch: 32,
        }
    }
}

/// User-based autoencoder ranker.
#[derive(Clone)]
pub struct AutoRec {
    cfg: AutoRecConfig,
    emb: EmbeddingConfig,
    state: Option<AutoRecState>,
}

#[derive(Clone)]
struct AutoRecState {
    params: ParamSet,
    encoder: Linear,
    decoder: Linear,
}

impl AutoRec {
    pub fn new(cfg: AutoRecConfig, emb: EmbeddingConfig) -> Self {
        Self {
            cfg,
            emb,
            state: None,
        }
    }

    fn catalog(&self) -> usize {
        self.emb.catalog as usize
    }

    fn reconstruct(state: &AutoRecState, g: &mut Graph<'_>, input: Matrix) -> tensor::Var {
        let x = g.input(input);
        let enc = state.encoder.forward(g, x);
        let hidden = g.sigmoid(enc);
        state.decoder.forward(g, hidden)
    }

    fn train_users(&mut self, view: &LogView<'_>, users: &[UserId], rng: &mut StdRng) {
        let cfg = self.cfg;
        let catalog = self.catalog();
        let state = self.state.as_mut().expect("fitted");
        let mut opt = Sgd::new(cfg.lr);
        let mut grads = GradStore::zeros_like(&state.params);
        for chunk in users.chunks(cfg.batch) {
            let n = chunk.len();
            let mut input = Matrix::zeros(n, catalog);
            let mut mask = Matrix::zeros(n, catalog);
            for (r, &u) in chunk.iter().enumerate() {
                let seq = view.sequence(u);
                for &item in seq {
                    input.set(r, item as usize, 1.0);
                    mask.set(r, item as usize, 1.0);
                }
                // Sampled zero targets keep the decoder honest; drawn
                // from original items only (realistic samplers never
                // pick brand-new zero-popularity items as negatives).
                let originals = self.emb.num_items as usize;
                for _ in 0..seq.len() * cfg.neg_ratio {
                    let j = rng.gen_range(0..originals);
                    if input.at(r, j) == 0.0 {
                        mask.set(r, j, cfg.neg_weight);
                    }
                }
            }
            let targets = input.clone();
            {
                let mut g = Graph::new(&state.params);
                let recon = Self::reconstruct(state, &mut g, input);
                let loss = g.mse_masked(recon, targets, mask);
                g.backward(loss, &mut grads);
            }
            opt.step(&mut state.params, &grads);
            grads.zero();
        }
    }
}

impl Ranker for AutoRec {
    fn name(&self) -> &'static str {
        "AutoRec"
    }

    fn fit(&mut self, view: &LogView<'_>, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = self.catalog();
        let mut params = ParamSet::new();
        let encoder = Linear::new(&mut params, "enc", catalog, self.cfg.hidden, &mut rng);
        let decoder = Linear::new(&mut params, "dec", self.cfg.hidden, catalog, &mut rng);
        self.state = Some(AutoRecState {
            params,
            encoder,
            decoder,
        });
        let mut users: Vec<UserId> = (0..view.num_users()).collect();
        for _ in 0..self.cfg.epochs {
            users.shuffle(&mut rng);
            self.train_users(view, &users.clone(), &mut rng);
        }
    }

    fn fine_tune(&mut self, view: &LogView<'_>, seed: u64) {
        assert!(
            self.state.is_some(),
            "AutoRec::fit must run before fine_tune"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let organic = view.base().num_users();
        let attackers: Vec<UserId> = (organic..view.num_users()).collect();
        for _ in 0..self.cfg.ft_epochs {
            let mut users = attackers.clone();
            for _ in 0..self.cfg.ft_replay_users {
                users.push(rng.gen_range(0..organic));
            }
            users.shuffle(&mut rng);
            self.train_users(view, &users, &mut rng);
        }
    }

    fn score(&self, _user: UserId, history: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let state = self
            .state
            .as_ref()
            .expect("AutoRec::fit must run before score");
        let catalog = self.catalog();
        let mut input = Matrix::zeros(1, catalog);
        for &item in history {
            input.set(0, item as usize, 1.0);
        }
        let mut g = Graph::new(&state.params);
        let recon = Self::reconstruct(state, &mut g, input);
        let row = g.value(recon);
        candidates.iter().map(|&c| row.at(0, c as usize)).collect()
    }

    fn boxed_clone(&self) -> Box<dyn Ranker> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn clustered() -> Dataset {
        let mut histories = Vec::new();
        for u in 0..60u32 {
            let offset = if u < 30 { 0 } else { 10 };
            let h: Vec<u32> = (0..8).map(|t| offset + ((u + t) % 10)).collect();
            histories.push(h);
        }
        Dataset::from_histories("clustered", histories, 20, 2)
    }

    #[test]
    fn reconstructs_cluster_preferences() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = AutoRec::new(
            AutoRecConfig {
                epochs: 20,
                ..AutoRecConfig::default()
            },
            EmbeddingConfig::for_view(&view, 4),
        );
        r.fit(&view, 5);
        // A cluster-A history should reconstruct cluster-A items above
        // cluster-B items, including unclicked ones.
        let history = d.sequence(0).to_vec();
        let unseen_a: Vec<ItemId> = (0..10).filter(|i| !history.contains(i)).collect();
        let sa: f32 = r.score(0, &history, &unseen_a).iter().sum::<f32>() / unseen_a.len() as f32;
        let b_items: Vec<ItemId> = (10..20).collect();
        let sb: f32 = r.score(0, &history, &b_items).iter().sum::<f32>() / 10.0;
        assert!(sa > sb, "cluster A {sa} vs cluster B {sb}");
    }

    #[test]
    fn poison_with_co_clicks_promotes_target() {
        let d = clustered();
        let view = LogView::clean(&d);
        let mut r = AutoRec::new(
            AutoRecConfig::default(),
            EmbeddingConfig::for_view(&view, 6),
        );
        r.fit(&view, 3);
        let target = 20;
        let history = d.sequence(2).to_vec();
        let before = r.score(2, &history, &[target])[0];
        // Attackers click the target alongside cluster-A items so the
        // decoder ties the target column to cluster-A hidden units.
        let poison: Vec<Vec<ItemId>> = (0..6)
            .map(|a| (0..8).flat_map(|t| [target, (a + t) % 10]).collect())
            .collect();
        let pview = LogView::new(&d, &poison);
        let mut poisoned = r.clone();
        poisoned.fine_tune(&pview, 9);
        let after = poisoned.score(2, &history, &[target])[0];
        assert!(after > before, "before={before} after={after}");
    }
}
