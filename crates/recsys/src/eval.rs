//! Evaluation protocol of the paper (§IV-A):
//!
//! * **Candidate generation** is random for efficiency: each
//!   recommendation draws 92 random original items plus the 8 target
//!   items into a 100-item candidate set.
//! * **Ranker** scores the candidates; the top `k = 10` become the
//!   recommendation list `L_u`.
//! * **RecNum** is `Σ_u |L_u ∩ I_t|` over the evaluated users.
//!
//! Candidate draws use *common random numbers*: the same
//! `(protocol seed, user)` always yields the same candidate set, so
//! RecNum differences between two attacks reflect the attacks, not
//! candidate-sampling noise. This matters for the RL reward signal.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, ItemId, UserId};
use crate::rankers::Ranker;

/// Fixed evaluation protocol: which users are polled and how candidate
/// sets are drawn.
#[derive(Clone, Debug)]
pub struct EvalProtocol {
    eval_users: Vec<UserId>,
    top_k: usize,
    n_original_candidates: usize,
    candidate_seed: u64,
}

impl EvalProtocol {
    /// Samples `n_users` distinct evaluation users (all users when
    /// `n_users >= num_users`). `seed` fixes both the user sample and
    /// every later candidate draw.
    ///
    /// # Panics
    ///
    /// If `n_users == 0`. RecNum over zero users is identically zero,
    /// so a zero here is always a caller bug; [`crate::system::SystemConfigBuilder`]
    /// rejects it as a [`crate::system::ConfigError`], and this
    /// assert keeps the direct-construction path honest instead of
    /// silently evaluating one user.
    pub fn sample(base: &Dataset, n_users: usize, seed: u64) -> Self {
        assert!(
            n_users > 0,
            "EvalProtocol::sample: n_users must be at least 1 \
             (SystemConfigBuilder rejects eval_users == 0 for the same reason)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut users: Vec<UserId> = (0..base.num_users()).collect();
        users.shuffle(&mut rng);
        users.truncate(n_users);
        users.sort_unstable();
        Self {
            eval_users: users,
            top_k: 10,
            n_original_candidates: 92,
            candidate_seed: seed,
        }
    }

    /// Overrides the paper defaults (top-10 of 92+|I_t| candidates).
    pub fn with_list_shape(mut self, top_k: usize, n_original_candidates: usize) -> Self {
        self.top_k = top_k;
        self.n_original_candidates = n_original_candidates;
        self
    }

    pub fn eval_users(&self) -> &[UserId] {
        &self.eval_users
    }

    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Deterministic candidate set for `user`: `n_original_candidates`
    /// distinct original items plus every target item.
    pub fn candidates(&self, base: &Dataset, user: UserId) -> Vec<ItemId> {
        let mut rng =
            StdRng::seed_from_u64(self.candidate_seed ^ (0x9E37_79B9 * u64::from(user) + 1));
        let n = self.n_original_candidates.min(base.num_items() as usize);
        let mut picked = Vec::with_capacity(n + base.num_targets() as usize);
        // Floyd's algorithm for distinct sampling without materializing 0..|I|.
        let mut seen = std::collections::HashSet::with_capacity(n * 2);
        let total = base.num_items();
        for j in (total - n as u32)..total {
            let t = rng.gen_range(0..=j);
            let pick = if seen.contains(&t) { j } else { t };
            seen.insert(pick);
            picked.push(pick);
        }
        picked.extend(base.target_items());
        picked
    }

    /// One recommendation list `L_u` for `user`.
    pub fn recommend(&self, ranker: &dyn Ranker, base: &Dataset, user: UserId) -> Vec<ItemId> {
        self.recommend_k(ranker, base, user, self.top_k)
    }

    /// [`EvalProtocol::recommend`] with an explicit list length `k`
    /// (the serving path lets clients ask for any `k`). The candidate
    /// set is the protocol's usual one; only the truncation differs.
    /// With distinct scores the result for `k <= top_k` equals the
    /// first `k` entries of [`EvalProtocol::recommend`]; exact score
    /// ties may select differently (selection among equals is
    /// arbitrary, though deterministic), which is why the serving
    /// cache answers small `k` by slicing its stored `top_k` list
    /// rather than recomputing (DESIGN.md §5e).
    pub fn recommend_k(
        &self,
        ranker: &dyn Ranker,
        base: &Dataset,
        user: UserId,
        k: usize,
    ) -> Vec<ItemId> {
        let candidates = self.candidates(base, user);
        let scores = ranker.score(user, base.sequence(user), &candidates);
        top_k_items(&candidates, &scores, k)
    }

    /// `RecNum = Σ_u |L_u ∩ I_t|` over the protocol's users.
    pub fn rec_num(&self, ranker: &dyn Ranker, base: &Dataset) -> u32 {
        let mut total = 0;
        for &user in &self.eval_users {
            let list = self.recommend(ranker, base, user);
            total += list.iter().filter(|&&i| base.is_target(i)).count() as u32;
        }
        total
    }

    /// Maximum possible RecNum under this protocol
    /// (`eval_users * min(top_k, |I_t|)`).
    pub fn max_rec_num(&self, base: &Dataset) -> u32 {
        (self.eval_users.len() * self.top_k.min(base.num_targets() as usize)) as u32
    }
}

/// Indices of the `k` highest-scoring candidates, by score descending.
///
/// Empty candidates or `k == 0` yield an empty list. Scores compare
/// under the IEEE total order ([`f32::total_cmp`]), so the selection
/// is well-defined even for NaN scores (a NaN sorts above `+∞` and so
/// wins — a ranker emitting NaN is buggy, but selection stays
/// deterministic rather than undefined): the result always agrees
/// with sorting all candidates by score and truncating to `k`.
pub fn top_k_items(candidates: &[ItemId], scores: &[f32], k: usize) -> Vec<ItemId> {
    debug_assert_eq!(candidates.len(), scores.len());
    if k == 0 || candidates.is_empty() {
        // `select_nth_unstable_by(k - 1, ..)` below needs a valid
        // index: position 0 of an empty slice panics, and k == 0 would
        // partition the whole slice only to truncate everything away.
        return Vec::new();
    }
    let by_score_desc = |&a: &usize, &b: &usize| scores[b].total_cmp(&scores[a]);
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    let k = k.min(idx.len());
    idx.select_nth_unstable_by(k - 1, by_score_desc);
    idx.truncate(k);
    idx.sort_unstable_by(by_score_desc);
    idx.into_iter().map(|i| candidates[i]).collect()
}

/// Hit-rate@k on a hold-out split: the held-out item competes against
/// `n_negatives` random unseen items; a hit is scored when it lands in
/// the top-k. Used to verify every ranker actually recommends.
///
/// The negatives are drawn *distinct* by rejection sampling, so the
/// catalog can supply at most `num_items - 1` of them (every original
/// item except the held-out one). Larger requests are clamped to that
/// bound — without the clamp the sampler would spin forever on small
/// catalogs — which only makes the measurement easier (fewer
/// competitors), never wrong.
pub fn hit_rate_at_k(
    ranker: &dyn Ranker,
    base: &Dataset,
    holdout: &[(UserId, ItemId)],
    k: usize,
    n_negatives: usize,
    seed: u64,
) -> f64 {
    if holdout.is_empty() {
        return 0.0;
    }
    let n_negatives = n_negatives.min((base.num_items() as usize).saturating_sub(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for &(user, held) in holdout {
        let mut candidates = Vec::with_capacity(n_negatives + 1);
        candidates.push(held);
        while candidates.len() < n_negatives + 1 {
            let item = rng.gen_range(0..base.num_items());
            if item != held && !candidates.contains(&item) {
                candidates.push(item);
            }
        }
        let scores = ranker.score(user, base.sequence(user), &candidates);
        let top = top_k_items(&candidates, &scores, k);
        if top.contains(&held) {
            hits += 1;
        }
    }
    hits as f64 / holdout.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LogView;

    /// Scores items by id, higher id wins.
    #[derive(Clone)]
    struct IdRanker;
    impl Ranker for IdRanker {
        fn name(&self) -> &'static str {
            "id"
        }
        fn fit(&mut self, _view: &LogView<'_>, _seed: u64) {}
        fn fine_tune(&mut self, _view: &LogView<'_>, _seed: u64) {}
        fn score(&self, _u: UserId, _h: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
            candidates.iter().map(|&c| c as f32).collect()
        }
        fn boxed_clone(&self) -> Box<dyn Ranker> {
            Box::new(self.clone())
        }
    }

    fn toy() -> Dataset {
        let histories = (0..20)
            .map(|u| vec![u % 50, (u + 1) % 50, (u + 2) % 50, (u + 3) % 50])
            .collect();
        Dataset::from_histories("toy", histories, 50, 8)
    }

    #[test]
    fn candidates_are_deterministic_and_distinct() {
        let d = toy();
        let p = EvalProtocol::sample(&d, 10, 7).with_list_shape(10, 30);
        let c1 = p.candidates(&d, 3);
        let c2 = p.candidates(&d, 3);
        assert_eq!(c1, c2, "common random numbers violated");
        let c3 = p.candidates(&d, 4);
        assert_ne!(c1, c3, "different users should draw different candidates");
        let mut originals: Vec<_> = c1.iter().filter(|&&i| !d.is_target(i)).collect();
        let before = originals.len();
        originals.sort_unstable();
        originals.dedup();
        assert_eq!(before, originals.len(), "duplicate original candidates");
        assert_eq!(c1.iter().filter(|&&i| d.is_target(i)).count(), 8);
    }

    #[test]
    fn id_ranker_always_recommends_targets() {
        // Targets have the highest ids, so IdRanker puts all 8 in top-10.
        let d = toy();
        let p = EvalProtocol::sample(&d, 10, 7);
        let rn = p.rec_num(&IdRanker, &d);
        assert_eq!(rn, 80);
        assert_eq!(p.max_rec_num(&d), 80);
    }

    #[test]
    fn top_k_orders_by_score() {
        let items = vec![10, 20, 30, 40];
        let scores = vec![0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_items(&items, &scores, 2), vec![20, 40]);
        assert_eq!(top_k_items(&items, &scores, 10).len(), 4);
    }

    #[test]
    fn top_k_of_empty_or_zero_k_is_empty() {
        // Regression: `select_nth_unstable_by(k - 1, ..)` used to index
        // position 0 of the empty index slice and panic.
        assert_eq!(top_k_items(&[], &[], 5), Vec::<u32>::new());
        assert_eq!(top_k_items(&[], &[], 0), Vec::<u32>::new());
        let items = vec![1, 2, 3];
        let scores = vec![0.5, 0.1, 0.9];
        assert_eq!(top_k_items(&items, &scores, 0), Vec::<u32>::new());
    }

    #[test]
    fn recommend_with_zero_top_k_is_empty() {
        // The k == 0 early return reached through the protocol path.
        let d = toy();
        let p = EvalProtocol::sample(&d, 10, 7).with_list_shape(0, 30);
        assert_eq!(p.recommend(&IdRanker, &d, 3), Vec::<u32>::new());
        assert_eq!(p.rec_num(&IdRanker, &d), 0);
        assert_eq!(p.max_rec_num(&d), 0);
    }

    #[test]
    #[should_panic(expected = "n_users must be at least 1")]
    fn protocol_rejects_zero_users() {
        // Regression: `n_users.max(1)` used to silently evaluate one
        // user, contradicting SystemConfigBuilder's eval_users check.
        let d = toy();
        let _ = EvalProtocol::sample(&d, 0, 7);
    }

    #[test]
    fn hit_rate_terminates_on_tiny_catalogs() {
        // Regression: asking for more distinct negatives than the
        // catalog holds spun the rejection sampler forever.
        let histories = (0..6)
            .map(|u| vec![u % 3, (u + 1) % 3, (u + 2) % 3])
            .collect();
        let d = Dataset::from_histories("tiny", histories, 3, 1);
        let holdout = d.test().pairs.clone();
        assert!(!holdout.is_empty());
        // 50 negatives requested, at most 2 available: must clamp and
        // finish. With every item in each candidate set, the IdRanker's
        // hit rate is exact: a hit iff the held item is a top-k id.
        let hr = hit_rate_at_k(&IdRanker, &d, &holdout, 3, 50, 11);
        assert_eq!(hr, 1.0, "k covers the whole 3-item catalog");
        let hr1 = hit_rate_at_k(&IdRanker, &d, &holdout, 1, 50, 11);
        let expected =
            holdout.iter().filter(|&&(_, held)| held == 2).count() as f64 / holdout.len() as f64;
        assert_eq!(hr1, expected);
    }

    #[test]
    fn hit_rate_of_perfect_ranker() {
        let d = toy();
        // A ranker that always scores the held-out item highest.
        #[derive(Clone)]
        struct Oracle(Vec<(UserId, ItemId)>);
        impl Ranker for Oracle {
            fn name(&self) -> &'static str {
                "oracle"
            }
            fn fit(&mut self, _v: &LogView<'_>, _s: u64) {}
            fn fine_tune(&mut self, _v: &LogView<'_>, _s: u64) {}
            fn score(&self, u: UserId, _h: &[ItemId], c: &[ItemId]) -> Vec<f32> {
                let held = self.0.iter().find(|&&(hu, _)| hu == u).map(|&(_, i)| i);
                c.iter()
                    .map(|&i| if Some(i) == held { 1.0 } else { 0.0 })
                    .collect()
            }
            fn boxed_clone(&self) -> Box<dyn Ranker> {
                Box::new(self.clone())
            }
        }
        let holdout = d.test().pairs.clone();
        let hr = hit_rate_at_k(&Oracle(holdout.clone()), &d, &holdout, 10, 20, 3);
        assert_eq!(hr, 1.0);
    }
}
