//! The serving read path: an immutable, generation-tagged ranker
//! snapshot with a lazily-filled per-user top-k cache.
//!
//! [`RankerSnapshot`] is what a retrain *produces* and what the
//! recommendation endpoints *read*. The split is the heart of the
//! serving design (DESIGN.md §5e):
//!
//! * a retrain clones the clean ranker and fine-tunes it **off to the
//!   side**, wraps it in a fresh snapshot, and publishes the snapshot
//!   with an atomic swap (`runtime::Published`) — readers never wait;
//! * the snapshot itself is **never mutated after publication**: the
//!   per-user cache is append-only ([`std::sync::OnceLock`] per user),
//!   so there is no invalidation protocol at all. A new generation
//!   replaces the whole snapshot; the old one is reclaimed when its
//!   last reader lets go.
//!
//! Cache rules: a request for `k <= top_k` is answered from the cached
//! `top_k` list's prefix (computed at most once per user per
//! generation); `k > top_k` is computed fresh and *not* cached — it is
//! an off-protocol shape, and keeping only one canonical list per user
//! keeps memory bounded by `eval_users x top_k` per generation.

use std::sync::OnceLock;

use crate::data::{Dataset, ItemId, UserId};
use crate::eval::EvalProtocol;
use crate::rankers::Ranker;

/// A frozen, shareable ranker + its per-user recommendation cache.
/// Cheap to read concurrently; built once per retrain generation.
pub struct RankerSnapshot {
    ranker: Box<dyn Ranker>,
    /// Retrain generation: 0 is the clean fit, each published retrain
    /// increments. Tagged into every access-log event and `/recommend`
    /// response so clients can tell which model answered.
    generation: u64,
    /// The fine-tune seed that produced this snapshot (generation 0
    /// uses the clean fit and has no fine-tune seed; stored as 0).
    seed: u64,
    /// Lazily-computed canonical top-`top_k` list per user.
    cache: Box<[OnceLock<Vec<ItemId>>]>,
}

impl RankerSnapshot {
    /// Wraps a (fitted or fine-tuned) ranker. `num_users` sizes the
    /// cache; users outside `0..num_users` are rejected at read time.
    pub fn new(ranker: Box<dyn Ranker>, generation: u64, seed: u64, num_users: u32) -> Self {
        let cache = (0..num_users).map(|_| OnceLock::new()).collect();
        Self {
            ranker,
            generation,
            seed,
            cache,
        }
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn ranker_name(&self) -> &'static str {
        self.ranker.name()
    }

    /// Whether `user` is servable (inside the dataset this snapshot
    /// was built over).
    pub fn knows_user(&self, user: UserId) -> bool {
        (user as usize) < self.cache.len()
    }

    /// The canonical top-`protocol.top_k()` list for `user`, computed
    /// on first access and cached for the snapshot's lifetime.
    pub fn recommend<'a>(
        &'a self,
        protocol: &EvalProtocol,
        base: &Dataset,
        user: UserId,
    ) -> &'a [ItemId] {
        self.cache[user as usize].get_or_init(|| protocol.recommend(&*self.ranker, base, user))
    }

    /// A `k`-item list for `user`: the cached canonical list's prefix
    /// for `k <= top_k`, a fresh (uncached) computation beyond it.
    pub fn recommend_k(
        &self,
        protocol: &EvalProtocol,
        base: &Dataset,
        user: UserId,
        k: usize,
    ) -> Vec<ItemId> {
        if k <= protocol.top_k() {
            let full = self.recommend(protocol, base, user);
            full[..k.min(full.len())].to_vec()
        } else {
            protocol.recommend_k(&*self.ranker, base, user, k)
        }
    }

    /// `RecNum = Σ_u |L_u ∩ I_t|` over the protocol's users, through
    /// the cache — bit-identical to
    /// [`EvalProtocol::rec_num`] on the wrapped ranker, but a second
    /// read of the same generation is pure lookups.
    pub fn rec_num(&self, protocol: &EvalProtocol, base: &Dataset) -> u32 {
        protocol
            .eval_users()
            .iter()
            .map(|&u| {
                self.recommend(protocol, base, u)
                    .iter()
                    .filter(|&&i| base.is_target(i))
                    .count() as u32
            })
            .sum()
    }

    /// Full per-user lists for the protocol's users (analysis paths).
    pub fn recommendations(
        &self,
        protocol: &EvalProtocol,
        base: &Dataset,
    ) -> Vec<(UserId, Vec<ItemId>)> {
        protocol
            .eval_users()
            .iter()
            .map(|&u| (u, self.recommend(protocol, base, u).to_vec()))
            .collect()
    }

    /// How many users have a cached list (diagnostics/metrics).
    pub fn cached_users(&self) -> usize {
        self.cache.iter().filter(|c| c.get().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LogView;
    use crate::rankers::ItemPop;

    fn toy() -> Dataset {
        let histories = (0..30u32)
            .map(|u| (0..6).map(|t| (u + t * 3) % 40).collect())
            .collect();
        Dataset::from_histories("toy", histories, 40, 8)
    }

    fn fitted(base: &Dataset) -> Box<dyn Ranker> {
        let mut ranker: Box<dyn Ranker> = Box::new(ItemPop::new());
        ranker.fit(&LogView::clean(base), 1);
        ranker
    }

    #[test]
    fn snapshot_agrees_with_direct_protocol_calls() {
        let base = toy();
        let protocol = EvalProtocol::sample(&base, 12, 7);
        let ranker = fitted(&base);
        let direct_rec_num = protocol.rec_num(&*ranker, &base);
        let direct_list = protocol.recommend(&*ranker, &base, protocol.eval_users()[0]);

        let snap = RankerSnapshot::new(ranker, 0, 0, base.num_users());
        assert_eq!(snap.rec_num(&protocol, &base), direct_rec_num);
        assert_eq!(
            snap.recommend(&protocol, &base, protocol.eval_users()[0]),
            direct_list.as_slice()
        );
        // Second read hits the cache and must agree with the first.
        assert_eq!(
            snap.recommend(&protocol, &base, protocol.eval_users()[0]),
            direct_list.as_slice()
        );
    }

    #[test]
    fn small_k_slices_the_cached_list() {
        let base = toy();
        let protocol = EvalProtocol::sample(&base, 12, 7);
        let snap = RankerSnapshot::new(fitted(&base), 0, 0, base.num_users());
        let user = protocol.eval_users()[1];
        let full = snap.recommend(&protocol, &base, user).to_vec();
        for k in 0..=protocol.top_k() {
            assert_eq!(snap.recommend_k(&protocol, &base, user, k), full[..k]);
        }
        // Only the canonical list was cached, once.
        assert_eq!(snap.cached_users(), 1);
    }

    #[test]
    fn large_k_is_computed_fresh_and_uncached() {
        let base = toy();
        let protocol = EvalProtocol::sample(&base, 12, 7);
        let snap = RankerSnapshot::new(fitted(&base), 0, 0, base.num_users());
        let user = protocol.eval_users()[2];
        let big = snap.recommend_k(&protocol, &base, user, protocol.top_k() + 5);
        assert!(big.len() > protocol.top_k());
        // The big list shares the candidate set, so the canonical list
        // is a subset of it.
        let canon = snap.recommend(&protocol, &base, user);
        assert!(canon.iter().all(|i| big.contains(i)));
    }

    #[test]
    fn generation_and_seed_are_preserved() {
        let base = toy();
        let snap = RankerSnapshot::new(fitted(&base), 3, 0xDEAD, base.num_users());
        assert_eq!(snap.generation(), 3);
        assert_eq!(snap.seed(), 0xDEAD);
        assert_eq!(snap.ranker_name(), "ItemPop");
        assert!(snap.knows_user(29));
        assert!(!snap.knows_user(30));
    }
}
