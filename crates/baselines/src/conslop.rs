//! ConsLOP (Yang et al., NDSS'17): the constrained-linear-optimization
//! co-visitation injection attack, rebuilt for the paper's budgeted
//! trajectory setting (§IV-A).
//!
//! The method is *white-box for CoVisitation*: it knows the item-item
//! co-visitation graph (from the system log) and decides (1) which
//! items to pair the single target item with and (2) how many fake
//! co-visitations each pair receives, maximizing the number of users
//! whose recommendations flip, subject to the total budget
//! `N·T/2` co-visitations.
//!
//! Our solver is the greedy relaxation of that program: each candidate
//! partner item `j` has a *cost* (enough injected co-visits for the
//! target to become `j`'s strongest partner, `max_w(j) + 1`) and a
//! *reach* (how many users have `j` in their history). Partners are
//! taken in descending reach/cost ratio until the budget runs out —
//! the classic greedy for this coverage-knapsack, optimal up to the
//! usual (1 − 1/e) factor.
//!
//! As in the paper, ConsLOP promotes a *single* target item, and the
//! resulting trajectories are reused verbatim against the other
//! (non-CoVisitation) rankers.
//!
//! ## Determinism audit (zoo port)
//!
//! Two findings, both fixed here:
//!
//! * The struct carried a **dead, unused RNG** (`#[allow(dead_code)]`),
//!   suggesting randomness where there is none. ConsLOP is fully
//!   deterministic; the field is gone and `new` keeps its `seed`
//!   parameter only for constructor compatibility.
//! * The greedy knapsack sorted candidates by a **float ratio with no
//!   tie-break**, so equal-ratio partners kept `sort_by`'s input order
//!   — stable here, but one refactor away from hash-order dependence.
//!   Ties now break by ascending item id explicitly.
//!
//! The `HashMap`/`HashSet` accumulations are safe as-is: only
//! order-independent folds (`max`, counting inserts) ever read them.

use recsys::attack::{
    Attack, AttackCaps, AttackError, AttackStepStats, GuardedSystem, Reader, Writer,
};
use recsys::data::{Dataset, ItemId, Trajectory};
use recsys::system::{BlackBoxSystem, ObservableSystem};

use crate::util;
use crate::AttackMethod;

/// ConsLOP parameters.
#[derive(Copy, Clone, Debug)]
pub struct ConsLopConfig {
    /// How many top-frequency items are considered as partners.
    pub candidate_pool: usize,
}

impl Default for ConsLopConfig {
    fn default() -> Self {
        Self {
            candidate_pool: 256,
        }
    }
}

/// The greedy co-visitation injection planner.
pub struct ConsLop {
    cfg: ConsLopConfig,
    /// Prior knowledge for the zoo path; the legacy [`AttackMethod`]
    /// path reads the log off the in-process system instead.
    log: Option<Dataset>,
    crafted: Option<Vec<Trajectory>>,
}

impl ConsLop {
    /// `seed` is accepted for constructor compatibility; the planner
    /// is deterministic and uses no randomness (see the audit notes).
    pub fn new(cfg: ConsLopConfig, _seed: u64) -> Self {
        Self {
            cfg,
            log: None,
            crafted: None,
        }
    }

    /// Supplies the system log the co-visitation program needs.
    pub fn with_log(cfg: ConsLopConfig, log: Dataset) -> Self {
        Self {
            cfg,
            log: Some(log),
            crafted: None,
        }
    }

    /// Plans `(partner, co-visit count)` allocations for `budget`
    /// co-visitations.
    fn plan(&self, base: &Dataset, budget: usize) -> Vec<(ItemId, usize)> {
        // Strongest existing co-visit weight per item (the bar the
        // injected edge must clear) and per-item user reach.
        let n = base.num_items() as usize;
        let mut max_w = vec![0u32; n];
        let mut covisit: std::collections::HashMap<(ItemId, ItemId), u32> =
            std::collections::HashMap::new();
        let mut reach = vec![0u32; n];
        for seq in base.sequences() {
            let mut seen = std::collections::HashSet::new();
            for &i in seq {
                if seen.insert(i) {
                    reach[i as usize] += 1;
                }
            }
            for pair in seq.windows(2) {
                if pair[0] != pair[1] {
                    let key = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                    *covisit.entry(key).or_insert(0) += 1;
                }
            }
        }
        for (&(a, b), &w) in &covisit {
            max_w[a as usize] = max_w[a as usize].max(w);
            max_w[b as usize] = max_w[b as usize].max(w);
        }

        // Candidate pool: the most-reached items.
        let mut pool: Vec<ItemId> = (0..base.num_items()).collect();
        pool.sort_by(|&a, &b| reach[b as usize].cmp(&reach[a as usize]).then(a.cmp(&b)));
        pool.truncate(self.cfg.candidate_pool);

        // Greedy knapsack by reach / cost, equal ratios broken by
        // ascending item id so the plan never depends on input order.
        let mut scored: Vec<(f64, ItemId, usize)> = pool
            .into_iter()
            .map(|j| {
                let cost = max_w[j as usize] as usize + 1;
                (reach[j as usize] as f64 / cost as f64, j, cost)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });

        let mut remaining = budget;
        let mut allocation = Vec::new();
        for (_, j, cost) in scored {
            if cost <= remaining {
                allocation.push((j, cost));
                remaining -= cost;
            }
        }
        // Spend leftovers reinforcing the best partner.
        if remaining > 0 {
            if let Some(first) = allocation.first_mut() {
                first.1 += remaining;
            }
        }
        allocation
    }

    /// The crafting core: pure function of the log, the target list,
    /// and the `n × t` budget.
    fn craft(&self, base: &Dataset, target: ItemId, n: usize, t: usize) -> Vec<Trajectory> {
        let budget = n * t / 2;
        let plan = self.plan(base, budget);

        // Serialize the plan into co-visit click pairs (target, j) and
        // deal them round-robin across the N attacker accounts.
        let mut clicks: Vec<ItemId> = Vec::with_capacity(n * t);
        'outer: for (j, count) in plan {
            for _ in 0..count {
                if clicks.len() + 2 > n * t {
                    break 'outer;
                }
                clicks.push(target);
                clicks.push(j);
            }
        }
        // Pad underfull budgets with extra target clicks.
        while clicks.len() < n * t {
            clicks.push(target);
        }

        clicks.chunks(t).take(n).map(|c| c.to_vec()).collect()
    }
}

impl AttackMethod for ConsLop {
    fn name(&self) -> &'static str {
        "ConsLOP"
    }

    fn generate(&mut self, system: &BlackBoxSystem, n: usize, t: usize) -> Vec<Trajectory> {
        // Single-target method: promote the first target item.
        let target = system.public_info().target_items[0];
        self.craft(system.base(), target, n, t)
    }
}

impl Attack for ConsLop {
    fn name(&self) -> &'static str {
        "ConsLOP"
    }

    fn caps(&self) -> AttackCaps {
        AttackCaps {
            model_required: true,
            ..AttackCaps::default()
        }
    }

    fn planned_steps(&self) -> usize {
        1
    }

    fn steps_done(&self) -> usize {
        usize::from(self.crafted.is_some())
    }

    fn step(
        &mut self,
        system: &GuardedSystem<'_>,
        _threads: usize,
    ) -> Result<AttackStepStats, AttackError> {
        if self.crafted.is_some() {
            return Err(AttackError::State(
                "ConsLOP plans in a single step; the poison is already built".into(),
            ));
        }
        let base = self.log.as_ref().ok_or(AttackError::Capability {
            attack: "ConsLOP".to_string(),
            needs: "the system interaction log (supply it at construction)",
        })?;
        let budget = system.budget();
        let target = system.public_info().target_items[0];
        self.crafted = Some(self.craft(
            base,
            target,
            budget.fake_users as usize,
            budget.clicks_per_user,
        ));
        Ok(AttackStepStats {
            step: 0,
            reward: None,
            best_reward: None,
            observations: system.usage().observations,
        })
    }

    fn poison(&self) -> Result<Vec<Trajectory>, AttackError> {
        self.crafted
            .clone()
            .ok_or_else(|| AttackError::State("run the planning step first".into()))
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.crafted {
            None => w.put_u8(0),
            Some(poison) => {
                w.put_u8(1);
                util::put_trajectories(&mut w, poison);
            }
        }
        w.into_bytes()
    }

    fn restore_state(
        &mut self,
        bytes: &[u8],
        _system: &GuardedSystem<'_>,
    ) -> Result<(), AttackError> {
        let mut r = Reader::new(bytes);
        let crafted = match r.get_u8("crafted tag")? {
            0 => None,
            _ => Some(util::get_trajectories(&mut r)?),
        };
        r.expect_eof()?;
        self.crafted = crafted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::data::Dataset;
    use recsys::rankers::CoVisitation;
    use recsys::system::SystemConfig;

    fn toy_system() -> BlackBoxSystem {
        // Item 0 is in everyone's history; items beyond are scattered.
        let histories = (0..60u32)
            .map(|u| vec![0, 1 + u % 20, 21 + u % 30, 1 + (u + 5) % 20])
            .collect();
        let data = Dataset::from_histories("toy", histories, 60, 8);
        BlackBoxSystem::build(
            data,
            Box::new(CoVisitation::new()),
            SystemConfig {
                eval_users: 40,
                reserve_attackers: 16,
                ..SystemConfig::default()
            },
        )
    }

    #[test]
    fn generates_exact_budget() {
        let system = toy_system();
        let mut attack = ConsLop::new(ConsLopConfig::default(), 3);
        let poison = attack.generate(&system, 6, 10);
        assert_eq!(poison.len(), 6);
        assert!(poison.iter().all(|tr| tr.len() == 10));
    }

    #[test]
    fn pairs_target_with_partners() {
        let system = toy_system();
        let mut attack = ConsLop::new(ConsLopConfig::default(), 3);
        let poison = attack.generate(&system, 6, 10);
        let target = system.public_info().target_items[0];
        // Roughly half the clicks are on the single target; the rest
        // are partner items.
        let flat: Vec<_> = poison.iter().flatten().copied().collect();
        let on_target = flat.iter().filter(|&&i| i == target).count();
        assert!(
            on_target >= flat.len() / 2,
            "target clicks {on_target}/{}",
            flat.len()
        );
        assert!(
            flat.iter().all(|&i| i == target || i < 60),
            "only the single target may be promoted"
        );
    }

    #[test]
    fn beats_nothing_on_covisitation() {
        let system = toy_system();
        let before = system.clean_rec_num();
        let mut attack = ConsLop::new(ConsLopConfig::default(), 3);
        let poison = attack.generate(&system, 16, 10);
        let after = system.inject_and_observe_seeded(&poison, 7);
        assert_eq!(before, 0);
        assert!(
            after > 0,
            "ConsLOP failed on its home turf (RecNum {after})"
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let system = toy_system();
        let a = ConsLop::new(ConsLopConfig::default(), 1).generate(&system, 8, 10);
        let b = ConsLop::new(ConsLopConfig::default(), 2).generate(&system, 8, 10);
        // No randomness at all: different seeds, identical plans.
        assert_eq!(a, b);
    }

    #[test]
    fn zoo_step_without_log_is_a_typed_capability_error() {
        let system = toy_system();
        let guard = recsys::attack::GuardedSystem::new(
            &system,
            recsys::attack::AttackBudget {
                fake_users: 4,
                clicks_per_user: 6,
                observations: 0,
            },
        );
        let mut attack = ConsLop::new(ConsLopConfig::default(), 3);
        match attack.step(&guard, 1) {
            Err(AttackError::Capability { attack, .. }) => assert_eq!(attack, "ConsLOP"),
            other => panic!("expected capability refusal, got {other:?}"),
        }
    }
}
