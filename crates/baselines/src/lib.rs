//! # baselines
//!
//! The attack methods PoisonRec is compared against (paper §IV-A) plus
//! one related-work family: four heuristics (Random, Popular, Middle,
//! PowerItem), two learning-based methods (ConsLOP, AppGrad), and the
//! influence-function promotion attack (Fang et al., WWW'20).
//!
//! Knowledge levels differ by design and match the paper:
//!
//! * Random / Popular / Middle use only crawlable item popularity.
//! * PowerItem, ConsLOP, and Influence additionally require the
//!   **system log** (the paper includes the former two "to better
//!   illustrate the advantages of PoisonRec" despite their stronger
//!   knowledge assumption).
//! * AppGrad and Influence, like PoisonRec, query the black-box system
//!   for RecNum feedback.
//!
//! Every method implements [`recsys::attack::Attack`] and is
//! registered in [`zoo::AttackFamily`], which the shared conformance
//! suite (`tests/attack_conformance.rs`) enumerates. The original
//! [`AttackMethod`] interface is kept for the paper-table experiment
//! drivers and produces byte-identical poison to the pre-zoo code.

mod appgrad;
mod conslop;
mod heuristic;
mod influence;
mod util;
pub mod zoo;

pub use appgrad::{AppGrad, AppGradConfig};
pub use conslop::{ConsLop, ConsLopConfig};
pub use heuristic::{HeuristicAttack, HeuristicKind};
pub use influence::{InfluenceAttack, InfluenceConfig};
pub use zoo::{AttackFamily, ZooTuning};

use recsys::data::Trajectory;
use recsys::system::BlackBoxSystem;

/// An attack method: given a black-box system and a budget of `n`
/// attacker accounts with `t` clicks each, produce the fake
/// trajectories to inject.
pub trait AttackMethod {
    fn name(&self) -> &'static str;

    /// Builds the `n x t` poison. May query `system` (AppGrad does;
    /// heuristics don't).
    fn generate(&mut self, system: &BlackBoxSystem, n: usize, t: usize) -> Vec<Trajectory>;
}

/// Every baseline by paper name, for experiment drivers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    Random,
    Popular,
    Middle,
    PowerItem,
    ConsLop,
    AppGrad,
}

impl BaselineKind {
    pub const ALL: [BaselineKind; 6] = [
        BaselineKind::Random,
        BaselineKind::Popular,
        BaselineKind::Middle,
        BaselineKind::PowerItem,
        BaselineKind::ConsLop,
        BaselineKind::AppGrad,
    ];

    /// The four log-free heuristics of Table IV.
    pub const HEURISTICS: [BaselineKind; 4] = [
        BaselineKind::Random,
        BaselineKind::Popular,
        BaselineKind::Middle,
        BaselineKind::PowerItem,
    ];

    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Random => "Random",
            BaselineKind::Popular => "Popular",
            BaselineKind::Middle => "Middle",
            BaselineKind::PowerItem => "PowerItem",
            BaselineKind::ConsLop => "ConsLOP",
            BaselineKind::AppGrad => "AppGrad",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Instantiates the method with default parameters and `seed`.
    pub fn build(self, seed: u64) -> Box<dyn AttackMethod> {
        match self {
            BaselineKind::Random => Box::new(HeuristicAttack::new(HeuristicKind::Random, seed)),
            BaselineKind::Popular => Box::new(HeuristicAttack::new(HeuristicKind::Popular, seed)),
            BaselineKind::Middle => Box::new(HeuristicAttack::new(HeuristicKind::Middle, seed)),
            BaselineKind::PowerItem => {
                Box::new(HeuristicAttack::new(HeuristicKind::PowerItem, seed))
            }
            BaselineKind::ConsLop => Box::new(ConsLop::new(ConsLopConfig::default(), seed)),
            BaselineKind::AppGrad => Box::new(AppGrad::new(AppGradConfig::default(), seed)),
        }
    }
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for k in BaselineKind::ALL {
            assert_eq!(BaselineKind::parse(k.name()), Some(k));
        }
        assert_eq!(BaselineKind::parse("nope"), None);
    }
}
