//! The attack-zoo registry: every implemented [`Attack`] family by
//! name, with one tuning struct and one builder, so experiment drivers
//! and the conformance suite enumerate the whole zoo from a single
//! list (DESIGN.md §5h).

use poisonrec::{PoisonRecAttack, PoisonRecConfig};
use recsys::attack::{Attack, AttackError};
use recsys::data::Dataset;

use crate::{
    AppGrad, AppGradConfig, ConsLop, ConsLopConfig, HeuristicAttack, HeuristicKind,
    InfluenceAttack, InfluenceConfig,
};

/// Every attack family registered in the zoo.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttackFamily {
    PoisonRec,
    AppGrad,
    ConsLop,
    Influence,
    Random,
    Popular,
    Middle,
    PowerItem,
}

impl AttackFamily {
    pub const ALL: [AttackFamily; 8] = [
        AttackFamily::PoisonRec,
        AttackFamily::AppGrad,
        AttackFamily::ConsLop,
        AttackFamily::Influence,
        AttackFamily::Random,
        AttackFamily::Popular,
        AttackFamily::Middle,
        AttackFamily::PowerItem,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AttackFamily::PoisonRec => "PoisonRec",
            AttackFamily::AppGrad => "AppGrad",
            AttackFamily::ConsLop => "ConsLOP",
            AttackFamily::Influence => "Influence",
            AttackFamily::Random => "Random",
            AttackFamily::Popular => "Popular",
            AttackFamily::Middle => "Middle",
            AttackFamily::PowerItem => "PowerItem",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Families whose declared capabilities include the system log
    /// (the [`AttackFamily::build`] `log` argument is mandatory).
    pub fn requires_log(self) -> bool {
        matches!(
            self,
            AttackFamily::ConsLop | AttackFamily::Influence | AttackFamily::PowerItem
        )
    }

    /// Observation queries a full run of this family spends under
    /// `tuning` — what a zoo cell must budget for (excluding any final
    /// evaluation query the driver adds).
    pub fn planned_observations(self, tuning: &ZooTuning) -> u64 {
        match self {
            AttackFamily::PoisonRec => {
                (tuning.poisonrec_steps * tuning.poisonrec.ppo.samples_per_step) as u64
            }
            AttackFamily::AppGrad => 1 + 2 * tuning.appgrad.iterations as u64,
            AttackFamily::Influence => tuning.influence.rounds as u64,
            // ConsLOP and the heuristics craft without querying.
            _ => 0,
        }
    }

    /// Instantiates the family. `log` supplies the system interaction
    /// log to the families that declare `model_required`; passing
    /// `None` to one of those is a typed capability refusal, not a
    /// panic.
    pub fn build(
        self,
        tuning: &ZooTuning,
        log: Option<&Dataset>,
    ) -> Result<Box<dyn Attack>, AttackError> {
        let need_log = || -> Result<Dataset, AttackError> {
            log.cloned().ok_or(AttackError::Capability {
                attack: self.name().to_string(),
                needs: "the system interaction log (pass it to AttackFamily::build)",
            })
        };
        Ok(match self {
            AttackFamily::PoisonRec => Box::new(PoisonRecAttack::new(
                tuning.poisonrec,
                tuning.poisonrec_steps,
            )),
            AttackFamily::AppGrad => Box::new(AppGrad::new(tuning.appgrad, tuning.seed)),
            AttackFamily::ConsLop => Box::new(ConsLop::with_log(tuning.conslop, need_log()?)),
            AttackFamily::Influence => Box::new(InfluenceAttack::new(
                tuning.influence,
                tuning.seed,
                need_log()?,
            )),
            AttackFamily::Random => {
                Box::new(HeuristicAttack::new(HeuristicKind::Random, tuning.seed))
            }
            AttackFamily::Popular => {
                Box::new(HeuristicAttack::new(HeuristicKind::Popular, tuning.seed))
            }
            AttackFamily::Middle => {
                Box::new(HeuristicAttack::new(HeuristicKind::Middle, tuning.seed))
            }
            AttackFamily::PowerItem => Box::new(HeuristicAttack::with_log(
                HeuristicKind::PowerItem,
                tuning.seed,
                need_log()?,
            )),
        })
    }
}

impl std::fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-family hyperparameters for a zoo run. One struct so a grid
/// driver can scale every family consistently (and fingerprint the
/// cell from a single place).
#[derive(Clone, Debug)]
pub struct ZooTuning {
    /// Seed for every seeded family (PoisonRec takes its own from
    /// `poisonrec.seed`).
    pub seed: u64,
    pub poisonrec: PoisonRecConfig,
    /// Training steps the PoisonRec cell runs.
    pub poisonrec_steps: usize,
    pub appgrad: AppGradConfig,
    pub conslop: ConsLopConfig,
    pub influence: InfluenceConfig,
}

impl Default for ZooTuning {
    fn default() -> Self {
        Self {
            seed: 7,
            poisonrec: PoisonRecConfig::default(),
            poisonrec_steps: 20,
            appgrad: AppGradConfig::default(),
            conslop: ConsLopConfig::default(),
            influence: InfluenceConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for family in AttackFamily::ALL {
            assert_eq!(AttackFamily::parse(family.name()), Some(family));
        }
        assert_eq!(AttackFamily::parse("nope"), None);
    }

    #[test]
    fn log_requiring_families_refuse_without_one() {
        let tuning = ZooTuning::default();
        for family in AttackFamily::ALL {
            let built = family.build(&tuning, None);
            if family.requires_log() {
                match built {
                    Err(AttackError::Capability { attack, .. }) => {
                        assert_eq!(attack, family.name())
                    }
                    other => panic!(
                        "{family}: expected capability refusal, got {:?}",
                        other.map(|a| a.name().to_string())
                    ),
                }
            } else {
                assert_eq!(built.expect("buildable").name(), family.name());
            }
        }
    }
}
