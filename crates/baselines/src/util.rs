//! Shared wire helpers for baseline attack state snapshots.

use rand::rngs::StdRng;
use recsys::attack::{Reader, WireError, Writer};
use recsys::data::Trajectory;

/// Serializes the full xoshiro256++ RNG state so a restored attack
/// resumes the exact random stream.
pub fn put_rng(w: &mut Writer, rng: &StdRng) {
    for word in rng.state() {
        w.put_u64(word);
    }
}

pub fn get_rng(r: &mut Reader<'_>) -> Result<StdRng, WireError> {
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = r.get_u64("rng state word")?;
    }
    Ok(StdRng::from_state(state))
}

pub fn put_trajectories(w: &mut Writer, poison: &[Trajectory]) {
    w.put_u64(poison.len() as u64);
    for traj in poison {
        w.put_u64(traj.len() as u64);
        for &item in traj {
            w.put_u32(item);
        }
    }
}

pub fn get_trajectories(r: &mut Reader<'_>) -> Result<Vec<Trajectory>, WireError> {
    // Each trajectory costs at least its own 8-byte length prefix.
    let n = r.get_len(8, "trajectory count")?;
    let mut poison = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.get_len(4, "trajectory length")?;
        let mut traj = Vec::with_capacity(t);
        for _ in 0..t {
            traj.push(r.get_u32("trajectory item")?);
        }
        poison.push(traj);
    }
    Ok(poison)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rng_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(11);
        let _burn: u64 = rng.gen_range(0..1_000_000);
        let mut w = Writer::new();
        put_rng(&mut w, &rng);
        let bytes = w.into_bytes();
        let mut back = get_rng(&mut Reader::new(&bytes)).unwrap();
        for _ in 0..16 {
            assert_eq!(
                rng.gen_range(0..u64::MAX),
                back.gen_range(0..u64::MAX),
                "restored RNG diverged"
            );
        }
    }

    #[test]
    fn trajectories_round_trip() {
        let poison = vec![vec![1, 2, 3], vec![], vec![9; 5]];
        let mut w = Writer::new();
        put_trajectories(&mut w, &poison);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_trajectories(&mut r).unwrap(), poison);
        r.expect_eof().unwrap();
    }

    #[test]
    fn implausible_count_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(get_trajectories(&mut Reader::new(&bytes)).is_err());
    }
}
