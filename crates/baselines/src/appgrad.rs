//! AppGrad (Christakopoulou & Banerjee, RecSys'19, adapted per the
//! paper §IV-A): black-box poisoning by *approximate gradients* over a
//! click-count matrix `M` (`N x |I ∪ I_t|`).
//!
//! Adaptations made by the PoisonRec paper and mirrored here:
//!
//! 1. implicit feedback — `M` holds click counts, initialized from the
//!    same priori knowledge as PoisonRec (about half the clicks on
//!    targets, half on popular items);
//! 2. a fixed budget — every attacker row is projected back to exactly
//!    `T` clicks after each update;
//! 3. no sequence modeling — rows are serialized into trajectories in
//!    *random order*, which is precisely why AppGrad trails PoisonRec
//!    on order-sensitive rankers (CoVisitation, GRU4Rec).
//!
//! The approximate gradient is SPSA (simultaneous perturbation): one
//! RecNum query at `M + Δ` and one at `M − Δ` per iteration, with the
//! loss `f(M) = −RecNum`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use recsys::data::{ItemId, Trajectory};
use recsys::system::BlackBoxSystem;

use crate::AttackMethod;

/// AppGrad parameters.
#[derive(Copy, Clone, Debug)]
pub struct AppGradConfig {
    /// SPSA iterations (each costs two system queries).
    pub iterations: usize,
    /// Step size applied to the sign of the estimated gradient.
    pub step: f32,
    /// Entries perturbed per attacker row in each SPSA probe.
    pub probe_width: usize,
    /// Size of the candidate item pool (targets + most popular items).
    pub pool: usize,
}

impl Default for AppGradConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            step: 2.0,
            probe_width: 4,
            pool: 64,
        }
    }
}

/// The approximate-gradient attack.
pub struct AppGrad {
    cfg: AppGradConfig,
    rng: StdRng,
}

impl AppGrad {
    pub fn new(cfg: AppGradConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Serializes the count matrix into randomized-order trajectories.
    fn to_trajectories(
        m: &[Vec<f32>],
        pool: &[ItemId],
        t: usize,
        rng: &mut StdRng,
    ) -> Vec<Trajectory> {
        m.iter()
            .map(|row| {
                let mut clicks: Vec<ItemId> = Vec::with_capacity(t);
                // Round to integer counts, largest remainders first, so
                // the row sums to exactly T clicks.
                let mut items: Vec<(usize, f32)> = row
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, c)| c > 0.0)
                    .collect();
                items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for &(idx, count) in &items {
                    let take = (count.round() as usize).min(t - clicks.len());
                    for _ in 0..take {
                        clicks.push(pool[idx]);
                    }
                    if clicks.len() == t {
                        break;
                    }
                }
                while clicks.len() < t {
                    clicks.push(pool[0]);
                }
                // AppGrad does not model order: shuffle.
                clicks.shuffle(rng);
                clicks
            })
            .collect()
    }

    /// Projects a row to non-negative entries summing to `t`.
    fn project_row(row: &mut [f32], t: usize) {
        for x in row.iter_mut() {
            *x = x.max(0.0);
        }
        let sum: f32 = row.iter().sum();
        if sum <= 0.0 {
            row[0] = t as f32;
            return;
        }
        let scale = t as f32 / sum;
        for x in row.iter_mut() {
            *x *= scale;
        }
    }
}

impl AttackMethod for AppGrad {
    fn name(&self) -> &'static str {
        "AppGrad"
    }

    fn generate(&mut self, system: &BlackBoxSystem, n: usize, t: usize) -> Vec<Trajectory> {
        let info = system.public_info();
        // Candidate pool: all targets + the most popular originals.
        let mut pool: Vec<ItemId> = info.target_items.clone();
        let mut ranked: Vec<ItemId> = (0..info.num_items).collect();
        ranked.sort_by(|&a, &b| {
            info.popularity[b as usize]
                .cmp(&info.popularity[a as usize])
                .then(a.cmp(&b))
        });
        pool.extend(
            ranked
                .into_iter()
                .take(self.cfg.pool.saturating_sub(pool.len())),
        );
        let p = pool.len();
        let n_targets = info.target_items.len();

        // Priori initialization: ~half the clicks on targets, and each
        // account concentrates its target clicks on one primary target
        // (spreading the budget over all eight targets dilutes it below
        // any popularity threshold; the paper's AppGrad converges to
        // concentrated target clicking on ItemPop/NeuMF).
        let mut m: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let mut row = vec![0.0f32; p];
                let primary = self.rng.gen_range(0..n_targets);
                for _ in 0..t {
                    let idx = if self.rng.gen_bool(0.5) {
                        primary
                    } else {
                        self.rng.gen_range(0..p)
                    };
                    row[idx] += 1.0;
                }
                row
            })
            .collect();

        let mut best = m.clone();
        let mut best_reward =
            system.inject_and_observe(&Self::to_trajectories(&m, &pool, t, &mut self.rng)) as f32;

        for _ in 0..self.cfg.iterations {
            // SPSA probe: ±1 perturbations on a few entries per row.
            let delta: Vec<Vec<(usize, f32)>> = (0..n)
                .map(|_| {
                    (0..self.cfg.probe_width)
                        .map(|_| {
                            let idx = self.rng.gen_range(0..p);
                            let sign = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                            (idx, sign)
                        })
                        .collect()
                })
                .collect();

            let perturbed = |dir: f32, rng: &mut StdRng| -> (Vec<Vec<f32>>, Vec<Trajectory>) {
                let mut probe = m.clone();
                for (row, ds) in probe.iter_mut().zip(&delta) {
                    for &(idx, sign) in ds {
                        row[idx] += dir * sign;
                    }
                    Self::project_row(row, t);
                }
                let trajs = Self::to_trajectories(&probe, &pool, t, rng);
                (probe, trajs)
            };

            let (plus_m, plus_trajs) = perturbed(1.0, &mut self.rng);
            let (minus_m, minus_trajs) = perturbed(-1.0, &mut self.rng);
            let r_plus = system.inject_and_observe(&plus_trajs) as f32;
            let r_minus = system.inject_and_observe(&minus_trajs) as f32;

            // Track the best probe (free lunch from the queries).
            if r_plus > best_reward {
                best_reward = r_plus;
                best = plus_m.clone();
            }
            if r_minus > best_reward {
                best_reward = r_minus;
                best = minus_m.clone();
            }

            // Ascend: move along the perturbation that scored higher.
            if (r_plus - r_minus).abs() > f32::EPSILON {
                let dir = if r_plus > r_minus { 1.0 } else { -1.0 };
                for (row, ds) in m.iter_mut().zip(&delta) {
                    for &(idx, sign) in ds {
                        row[idx] += self.cfg.step * dir * sign;
                    }
                    Self::project_row(row, t);
                }
            }
        }

        Self::to_trajectories(&best, &pool, t, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn toy_system() -> BlackBoxSystem {
        let histories = (0..50u32)
            .map(|u| (0..6).map(|tt| (u * 7 + tt * 3) % 70).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 70, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 20,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    #[test]
    fn row_projection_preserves_budget() {
        let mut row = vec![3.0, -2.0, 5.0, 0.5];
        AppGrad::project_row(&mut row, 10);
        assert!(row.iter().all(|&x| x >= 0.0));
        assert!((row.iter().sum::<f32>() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn trajectories_have_exact_length() {
        let system = toy_system();
        let mut attack = AppGrad::new(
            AppGradConfig {
                iterations: 3,
                ..Default::default()
            },
            3,
        );
        let poison = attack.generate(&system, 6, 15);
        assert_eq!(poison.len(), 6);
        assert!(poison.iter().all(|tr| tr.len() == 15));
        assert!(poison.iter().flatten().all(|&i| i < 78));
    }

    #[test]
    fn improves_on_itempop() {
        // ItemPop rewards concentrated target clicking; AppGrad should
        // find a strictly positive RecNum.
        let system = toy_system();
        let mut attack = AppGrad::new(
            AppGradConfig {
                iterations: 12,
                ..Default::default()
            },
            5,
        );
        let poison = attack.generate(&system, 8, 15);
        let reward = system.inject_and_observe_seeded(&poison, 3);
        assert!(reward > 0, "AppGrad found nothing (RecNum {reward})");
    }
}
