//! AppGrad (Christakopoulou & Banerjee, RecSys'19, adapted per the
//! paper §IV-A): black-box poisoning by *approximate gradients* over a
//! click-count matrix `M` (`N x |I ∪ I_t|`).
//!
//! Adaptations made by the PoisonRec paper and mirrored here:
//!
//! 1. implicit feedback — `M` holds click counts, initialized from the
//!    same priori knowledge as PoisonRec (about half the clicks on
//!    targets, half on popular items);
//! 2. a fixed budget — every attacker row is projected back to exactly
//!    `T` clicks after each update;
//! 3. no sequence modeling — rows are serialized into trajectories in
//!    *random order*, which is precisely why AppGrad trails PoisonRec
//!    on order-sensitive rankers (CoVisitation, GRU4Rec).
//!
//! The approximate gradient is SPSA (simultaneous perturbation): one
//! RecNum query at `M + Δ` and one at `M − Δ` per iteration, with the
//! loss `f(M) = −RecNum`.
//!
//! ## Determinism audit (zoo port)
//!
//! The method was already fully seeded (one `StdRng`, no iteration
//! over hash containers). The port restructures the monolithic
//! `generate` loop into a resumable step machine — step 0 initializes
//! `M` and spends one observation, each later step is one SPSA
//! iteration spending two — with two invariants pinned by tests:
//!
//! * the RNG call order is untouched, so the legacy [`AttackMethod`]
//!   path produces **byte-identical** poison to the pre-port code;
//! * each iteration's two probes go through one `observe_batch` call,
//!   which draws per-slot seeds in slot order — bit-identical to the
//!   old sequential queries at any thread count.
//!
//! Budget refusals are checked *before* any RNG draw, so a refused
//! step perturbs neither the random stream nor the seed ordinal.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use recsys::attack::{
    Attack, AttackCaps, AttackError, AttackStepStats, BudgetKind, BudgetViolation, GuardedSystem,
    Reader, WireError, Writer,
};
use recsys::data::{ItemId, Trajectory};
use recsys::system::{BlackBoxSystem, ObservableSystem, PublicInfo};

use crate::util;
use crate::AttackMethod;

/// AppGrad parameters.
#[derive(Copy, Clone, Debug)]
pub struct AppGradConfig {
    /// SPSA iterations (each costs two system queries).
    pub iterations: usize,
    /// Step size applied to the sign of the estimated gradient.
    pub step: f32,
    /// Entries perturbed per attacker row in each SPSA probe.
    pub probe_width: usize,
    /// Size of the candidate item pool (targets + most popular items).
    pub pool: usize,
}

impl Default for AppGradConfig {
    fn default() -> Self {
        Self {
            iterations: 30,
            step: 2.0,
            probe_width: 4,
            pool: 64,
        }
    }
}

/// In-flight SPSA state: the count matrix, the running best, and the
/// candidate pool, all fixed at step 0.
struct SpsaRun {
    pool: Vec<ItemId>,
    n: usize,
    t: usize,
    m: Vec<Vec<f32>>,
    best: Vec<Vec<f32>>,
    best_reward: f32,
    final_poison: Option<Vec<Trajectory>>,
}

/// The approximate-gradient attack.
pub struct AppGrad {
    cfg: AppGradConfig,
    rng: StdRng,
    run: Option<SpsaRun>,
    steps_done: usize,
}

impl AppGrad {
    pub fn new(cfg: AppGradConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            run: None,
            steps_done: 0,
        }
    }

    /// Serializes the count matrix into randomized-order trajectories.
    fn to_trajectories(
        m: &[Vec<f32>],
        pool: &[ItemId],
        t: usize,
        rng: &mut StdRng,
    ) -> Vec<Trajectory> {
        m.iter()
            .map(|row| {
                let mut clicks: Vec<ItemId> = Vec::with_capacity(t);
                // Round to integer counts, largest remainders first, so
                // the row sums to exactly T clicks.
                let mut items: Vec<(usize, f32)> = row
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, c)| c > 0.0)
                    .collect();
                items.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for &(idx, count) in &items {
                    let take = (count.round() as usize).min(t - clicks.len());
                    for _ in 0..take {
                        clicks.push(pool[idx]);
                    }
                    if clicks.len() == t {
                        break;
                    }
                }
                while clicks.len() < t {
                    clicks.push(pool[0]);
                }
                // AppGrad does not model order: shuffle.
                clicks.shuffle(rng);
                clicks
            })
            .collect()
    }

    /// Projects a row to non-negative entries summing to `t`.
    fn project_row(row: &mut [f32], t: usize) {
        for x in row.iter_mut() {
            *x = x.max(0.0);
        }
        let sum: f32 = row.iter().sum();
        if sum <= 0.0 {
            row[0] = t as f32;
            return;
        }
        let scale = t as f32 / sum;
        for x in row.iter_mut() {
            *x *= scale;
        }
    }

    /// Candidate pool: all targets + the most popular originals.
    fn build_pool(cfg: &AppGradConfig, info: &PublicInfo) -> Vec<ItemId> {
        let mut pool: Vec<ItemId> = info.target_items.clone();
        let mut ranked: Vec<ItemId> = (0..info.num_items).collect();
        ranked.sort_by(|&a, &b| {
            info.popularity[b as usize]
                .cmp(&info.popularity[a as usize])
                .then(a.cmp(&b))
        });
        pool.extend(ranked.into_iter().take(cfg.pool.saturating_sub(pool.len())));
        pool
    }

    fn need(system: &GuardedSystem<'_>, observations: u64) -> Result<(), AttackError> {
        let left = system.observations_left();
        if left < observations {
            return Err(AttackError::Budget(BudgetViolation {
                kind: BudgetKind::Observations,
                requested: system.usage().observations + observations,
                declared: system.budget().observations,
            }));
        }
        Ok(())
    }

    /// Step 0: priori initialization of `M` plus one baseline query.
    fn step_init(
        &mut self,
        system: &GuardedSystem<'_>,
        threads: usize,
    ) -> Result<f32, AttackError> {
        Self::need(system, 1)?;
        let info = system.public_info();
        let budget = system.budget();
        let (n, t) = (budget.fake_users as usize, budget.clicks_per_user);
        let pool = Self::build_pool(&self.cfg, &info);
        let p = pool.len();
        let n_targets = info.target_items.len();

        // Priori initialization: ~half the clicks on targets, and each
        // account concentrates its target clicks on one primary target
        // (spreading the budget over all eight targets dilutes it below
        // any popularity threshold; the paper's AppGrad converges to
        // concentrated target clicking on ItemPop/NeuMF).
        let m: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let mut row = vec![0.0f32; p];
                let primary = self.rng.gen_range(0..n_targets);
                for _ in 0..t {
                    let idx = if self.rng.gen_bool(0.5) {
                        primary
                    } else {
                        self.rng.gen_range(0..p)
                    };
                    row[idx] += 1.0;
                }
                row
            })
            .collect();

        let trajs = Self::to_trajectories(&m, &pool, t, &mut self.rng);
        let reward = system.try_observe_batch(&[&trajs], threads)?[0].rec_num as f32;
        self.run = Some(SpsaRun {
            pool,
            n,
            t,
            best: m.clone(),
            m,
            best_reward: reward,
            final_poison: None,
        });
        Ok(reward)
    }

    /// One SPSA iteration: probe `M ± Δ` (two queries through a single
    /// batch — same seed ordinals as two sequential queries), track the
    /// best probe, ascend along the winning perturbation.
    fn step_spsa(
        &mut self,
        system: &GuardedSystem<'_>,
        threads: usize,
    ) -> Result<f32, AttackError> {
        Self::need(system, 2)?;
        let run = self.run.as_mut().expect("init step ran");
        let (n, t, p) = (run.n, run.t, run.pool.len());

        // SPSA probe: ±1 perturbations on a few entries per row.
        let delta: Vec<Vec<(usize, f32)>> = (0..n)
            .map(|_| {
                (0..self.cfg.probe_width)
                    .map(|_| {
                        let idx = self.rng.gen_range(0..p);
                        let sign = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        (idx, sign)
                    })
                    .collect()
            })
            .collect();

        let perturbed = |dir: f32, rng: &mut StdRng| -> (Vec<Vec<f32>>, Vec<Trajectory>) {
            let mut probe = run.m.clone();
            for (row, ds) in probe.iter_mut().zip(&delta) {
                for &(idx, sign) in ds {
                    row[idx] += dir * sign;
                }
                Self::project_row(row, t);
            }
            let trajs = Self::to_trajectories(&probe, &run.pool, t, rng);
            (probe, trajs)
        };

        let (plus_m, plus_trajs) = perturbed(1.0, &mut self.rng);
        let (minus_m, minus_trajs) = perturbed(-1.0, &mut self.rng);
        let rewards = system.try_observe_batch(&[&plus_trajs, &minus_trajs], threads)?;
        let r_plus = rewards[0].rec_num as f32;
        let r_minus = rewards[1].rec_num as f32;

        // Track the best probe (free lunch from the queries).
        if r_plus > run.best_reward {
            run.best_reward = r_plus;
            run.best = plus_m;
        }
        if r_minus > run.best_reward {
            run.best_reward = r_minus;
            run.best = minus_m;
        }

        // Ascend: move along the perturbation that scored higher.
        if (r_plus - r_minus).abs() > f32::EPSILON {
            let dir = if r_plus > r_minus { 1.0 } else { -1.0 };
            for (row, ds) in run.m.iter_mut().zip(&delta) {
                for &(idx, sign) in ds {
                    row[idx] += self.cfg.step * dir * sign;
                }
                Self::project_row(row, t);
            }
        }
        Ok(r_plus.max(r_minus))
    }

    fn put_matrix(w: &mut Writer, m: &[Vec<f32>]) {
        w.put_u64(m.len() as u64);
        for row in m {
            w.put_f32s(row);
        }
    }

    fn get_matrix(r: &mut Reader<'_>) -> Result<Vec<Vec<f32>>, WireError> {
        // Each row costs at least its own 8-byte length prefix.
        let rows = r.get_len(8, "matrix rows")?;
        (0..rows).map(|_| r.get_f32s("matrix row")).collect()
    }
}

impl AttackMethod for AppGrad {
    fn name(&self) -> &'static str {
        "AppGrad"
    }

    fn generate(&mut self, system: &BlackBoxSystem, n: usize, t: usize) -> Vec<Trajectory> {
        // Drive the step machine to completion against an uncapped
        // budget: same RNG stream and seed ordinals as the original
        // single-function implementation, so the output is unchanged.
        self.run = None;
        self.steps_done = 0;
        let guard = GuardedSystem::new(
            system,
            recsys::attack::AttackBudget {
                fake_users: n as u32,
                clicks_per_user: t,
                observations: u64::MAX,
            },
        );
        for _ in 0..Attack::planned_steps(self) {
            Attack::step(self, &guard, 1).expect("uncapped budget cannot refuse");
        }
        Attack::poison(self).expect("all steps ran")
    }
}

impl Attack for AppGrad {
    fn name(&self) -> &'static str {
        "AppGrad"
    }

    fn caps(&self) -> AttackCaps {
        AttackCaps {
            queries_system: true,
            ..AttackCaps::default()
        }
    }

    fn planned_steps(&self) -> usize {
        self.cfg.iterations + 1
    }

    fn steps_done(&self) -> usize {
        self.steps_done
    }

    fn step(
        &mut self,
        system: &GuardedSystem<'_>,
        threads: usize,
    ) -> Result<AttackStepStats, AttackError> {
        if self.steps_done >= self.planned_steps() {
            return Err(AttackError::State("all SPSA iterations already ran".into()));
        }
        let reward = if self.steps_done == 0 {
            self.step_init(system, threads)?
        } else {
            self.step_spsa(system, threads)?
        };
        self.steps_done += 1;
        let run = self.run.as_mut().expect("run exists after a step");
        if self.steps_done == self.cfg.iterations + 1 {
            // Same RNG stream position as the original post-loop call.
            run.final_poison = Some(Self::to_trajectories(
                &run.best,
                &run.pool,
                run.t,
                &mut self.rng,
            ));
        }
        Ok(AttackStepStats {
            step: self.steps_done - 1,
            reward: Some(reward),
            best_reward: Some(run.best_reward),
            observations: system.usage().observations,
        })
    }

    fn poison(&self) -> Result<Vec<Trajectory>, AttackError> {
        self.run
            .as_ref()
            .and_then(|run| run.final_poison.clone())
            .ok_or_else(|| AttackError::State("run all SPSA steps first".into()))
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        util::put_rng(&mut w, &self.rng);
        w.put_u64(self.steps_done as u64);
        match &self.run {
            None => w.put_u8(0),
            Some(run) => {
                w.put_u8(1);
                w.put_u64(run.n as u64);
                w.put_u64(run.t as u64);
                w.put_u64(run.pool.len() as u64);
                for &item in &run.pool {
                    w.put_u32(item);
                }
                Self::put_matrix(&mut w, &run.m);
                Self::put_matrix(&mut w, &run.best);
                w.put_f32(run.best_reward);
                match &run.final_poison {
                    None => w.put_u8(0),
                    Some(poison) => {
                        w.put_u8(1);
                        util::put_trajectories(&mut w, poison);
                    }
                }
            }
        }
        w.into_bytes()
    }

    fn restore_state(
        &mut self,
        bytes: &[u8],
        _system: &GuardedSystem<'_>,
    ) -> Result<(), AttackError> {
        let mut r = Reader::new(bytes);
        let rng = util::get_rng(&mut r)?;
        let steps_done = r.get_u64("steps done")? as usize;
        let run = match r.get_u8("run tag")? {
            0 => None,
            _ => {
                let n = r.get_u64("attacker count")? as usize;
                let t = r.get_u64("trajectory length")? as usize;
                let pool_len = r.get_len(4, "pool length")?;
                let mut pool = Vec::with_capacity(pool_len);
                for _ in 0..pool_len {
                    pool.push(r.get_u32("pool item")?);
                }
                let m = Self::get_matrix(&mut r)?;
                let best = Self::get_matrix(&mut r)?;
                let best_reward = r.get_f32("best reward")?;
                let final_poison = match r.get_u8("final poison tag")? {
                    0 => None,
                    _ => Some(util::get_trajectories(&mut r)?),
                };
                Some(SpsaRun {
                    pool,
                    n,
                    t,
                    m,
                    best,
                    best_reward,
                    final_poison,
                })
            }
        };
        r.expect_eof()?;
        self.rng = rng;
        self.steps_done = steps_done;
        self.run = run;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn toy_system() -> BlackBoxSystem {
        let histories = (0..50u32)
            .map(|u| (0..6).map(|tt| (u * 7 + tt * 3) % 70).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 70, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 20,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    #[test]
    fn row_projection_preserves_budget() {
        let mut row = vec![3.0, -2.0, 5.0, 0.5];
        AppGrad::project_row(&mut row, 10);
        assert!(row.iter().all(|&x| x >= 0.0));
        assert!((row.iter().sum::<f32>() - 10.0).abs() < 1e-4);
    }

    #[test]
    fn trajectories_have_exact_length() {
        let system = toy_system();
        let mut attack = AppGrad::new(
            AppGradConfig {
                iterations: 3,
                ..Default::default()
            },
            3,
        );
        let poison = attack.generate(&system, 6, 15);
        assert_eq!(poison.len(), 6);
        assert!(poison.iter().all(|tr| tr.len() == 15));
        assert!(poison.iter().flatten().all(|&i| i < 78));
    }

    #[test]
    fn improves_on_itempop() {
        // ItemPop rewards concentrated target clicking; AppGrad should
        // find a strictly positive RecNum.
        let system = toy_system();
        let mut attack = AppGrad::new(
            AppGradConfig {
                iterations: 12,
                ..Default::default()
            },
            5,
        );
        let poison = attack.generate(&system, 8, 15);
        let reward = system.inject_and_observe_seeded(&poison, 3);
        assert!(reward > 0, "AppGrad found nothing (RecNum {reward})");
    }

    #[test]
    fn legacy_and_zoo_paths_are_bit_identical() {
        // Two fresh same-config systems so seed ordinals line up; the
        // monolithic path and the step machine must agree exactly.
        let cfg = AppGradConfig {
            iterations: 4,
            ..Default::default()
        };
        let legacy_system = toy_system();
        let mut legacy = AppGrad::new(cfg, 11);
        let legacy_poison = legacy.generate(&legacy_system, 6, 12);

        let zoo_system = toy_system();
        let guard = GuardedSystem::new(
            &zoo_system,
            recsys::attack::AttackBudget {
                fake_users: 6,
                clicks_per_user: 12,
                observations: 1 + 2 * 4,
            },
        );
        let mut zoo = AppGrad::new(cfg, 11);
        while zoo.steps_done() < Attack::planned_steps(&zoo) {
            Attack::step(&mut zoo, &guard, 4).expect("budget covers the run");
        }
        assert_eq!(Attack::poison(&zoo).unwrap(), legacy_poison);
    }

    #[test]
    fn refused_step_leaves_rng_and_seed_stream_untouched() {
        let system = toy_system();
        let guard = GuardedSystem::new(
            &system,
            recsys::attack::AttackBudget {
                fake_users: 6,
                clicks_per_user: 12,
                observations: 1, // enough for init, not for any SPSA step
            },
        );
        let mut attack = AppGrad::new(AppGradConfig::default(), 7);
        Attack::step(&mut attack, &guard, 1).expect("init fits");
        let state_before = attack.state_bytes();
        let spent_before = system.observations_spent();
        match Attack::step(&mut attack, &guard, 1) {
            Err(AttackError::Budget(v)) => {
                assert_eq!(v.kind, BudgetKind::Observations)
            }
            other => panic!("expected budget refusal, got {other:?}"),
        }
        assert_eq!(attack.state_bytes(), state_before, "RNG must not advance");
        assert_eq!(system.observations_spent(), spent_before);
    }

    #[test]
    fn state_round_trips_through_bytes() {
        let system = toy_system();
        let guard = GuardedSystem::new(
            &system,
            recsys::attack::AttackBudget {
                fake_users: 4,
                clicks_per_user: 8,
                observations: 64,
            },
        );
        let mut attack = AppGrad::new(AppGradConfig::default(), 13);
        Attack::step(&mut attack, &guard, 1).unwrap();
        Attack::step(&mut attack, &guard, 1).unwrap();
        let bytes = attack.state_bytes();
        let mut restored = AppGrad::new(AppGradConfig::default(), 99);
        restored.restore_state(&bytes, &guard).unwrap();
        assert_eq!(restored.state_bytes(), bytes);
        assert_eq!(restored.steps_done(), 2);
    }
}
