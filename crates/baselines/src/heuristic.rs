//! The four heuristic attacks (paper §IV-A):
//!
//! * **Random** — alternate a random original item and a random target.
//! * **Popular** — alternate a random target and a random item from the
//!   popular set `I_p` (top 10% by popularity).
//! * **Middle** — at every step pick uniformly among `I_t`, `I_p`, and
//!   `I \ I_p` (may click several targets in a row).
//! * **PowerItem** — Seminario & Wilson's power-item attack: alternate
//!   targets with "power items" selected by *in-degree centrality* on
//!   the item co-visitation graph (requires the system log).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recsys::data::{Dataset, ItemId, Trajectory};
use recsys::system::BlackBoxSystem;

use crate::AttackMethod;

/// Which heuristic rule to apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HeuristicKind {
    Random,
    Popular,
    Middle,
    PowerItem,
}

/// Popular-set size: top `k%` of items (paper example: k = 10).
const POPULAR_PERCENT: f64 = 10.0;
/// Number of power items PowerItem alternates over.
const NUM_POWER_ITEMS: usize = 32;

/// A heuristic trajectory generator.
pub struct HeuristicAttack {
    kind: HeuristicKind,
    rng: StdRng,
}

impl HeuristicAttack {
    pub fn new(kind: HeuristicKind, seed: u64) -> Self {
        Self {
            kind,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// In-degree centrality power items: items with the most distinct
    /// co-visitation partners in the log.
    fn power_items(base: &Dataset, count: usize) -> Vec<ItemId> {
        let n = base.num_items() as usize;
        let mut partners: Vec<std::collections::HashSet<ItemId>> =
            vec![std::collections::HashSet::new(); n];
        for seq in base.sequences() {
            for pair in seq.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if a != b {
                    partners[a as usize].insert(b);
                    partners[b as usize].insert(a);
                }
            }
        }
        let mut items: Vec<ItemId> = (0..base.num_items()).collect();
        items.sort_by(|&a, &b| {
            partners[b as usize]
                .len()
                .cmp(&partners[a as usize].len())
                .then(a.cmp(&b))
        });
        items.truncate(count.max(1));
        items
    }
}

impl AttackMethod for HeuristicAttack {
    fn name(&self) -> &'static str {
        match self.kind {
            HeuristicKind::Random => "Random",
            HeuristicKind::Popular => "Popular",
            HeuristicKind::Middle => "Middle",
            HeuristicKind::PowerItem => "PowerItem",
        }
    }

    fn generate(&mut self, system: &BlackBoxSystem, n: usize, t: usize) -> Vec<Trajectory> {
        let base = system.base();
        let info = system.public_info();
        let targets = &info.target_items;
        let popular = base.popular_set(POPULAR_PERCENT);
        let popular_set: std::collections::HashSet<ItemId> = popular.iter().copied().collect();
        let unpopular: Vec<ItemId> = (0..info.num_items)
            .filter(|i| !popular_set.contains(i))
            .collect();
        let power = if self.kind == HeuristicKind::PowerItem {
            Self::power_items(base, NUM_POWER_ITEMS)
        } else {
            Vec::new()
        };
        let rng = &mut self.rng;
        let pick = |set: &[ItemId], rng: &mut StdRng| set[rng.gen_range(0..set.len())];

        (0..n)
            .map(|_| {
                (0..t)
                    .map(|step| match self.kind {
                        HeuristicKind::Random => {
                            if step % 2 == 0 {
                                pick(targets, rng)
                            } else {
                                rng.gen_range(0..info.num_items)
                            }
                        }
                        HeuristicKind::Popular => {
                            if step % 2 == 0 {
                                pick(targets, rng)
                            } else {
                                pick(&popular, rng)
                            }
                        }
                        HeuristicKind::Middle => match rng.gen_range(0..3) {
                            0 => pick(targets, rng),
                            1 => pick(&popular, rng),
                            _ => pick(&unpopular, rng),
                        },
                        HeuristicKind::PowerItem => {
                            if step % 2 == 0 {
                                pick(targets, rng)
                            } else {
                                pick(&power, rng)
                            }
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn toy_system() -> BlackBoxSystem {
        let histories = (0..50u32)
            .map(|u| (0..6).map(|tt| (u + tt * 11) % 80).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 80, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 10,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    #[test]
    fn shapes_and_ranges() {
        let system = toy_system();
        for kind in [
            HeuristicKind::Random,
            HeuristicKind::Popular,
            HeuristicKind::Middle,
            HeuristicKind::PowerItem,
        ] {
            let mut attack = HeuristicAttack::new(kind, 3);
            let poison = attack.generate(&system, 5, 12);
            assert_eq!(poison.len(), 5);
            assert!(poison.iter().all(|tr| tr.len() == 12), "{kind:?}");
            assert!(poison.iter().flatten().all(|&i| i < 88), "{kind:?}");
        }
    }

    #[test]
    fn alternating_attacks_hit_targets_half_the_time() {
        let system = toy_system();
        for kind in [
            HeuristicKind::Random,
            HeuristicKind::Popular,
            HeuristicKind::PowerItem,
        ] {
            let mut attack = HeuristicAttack::new(kind, 3);
            let poison = attack.generate(&system, 8, 20);
            let total: usize = poison.iter().map(Vec::len).sum();
            let on_target = poison.iter().flatten().filter(|&&i| i >= 80).count();
            assert_eq!(on_target * 2, total, "{kind:?} must alternate");
        }
    }

    #[test]
    fn popular_attack_clicks_popular_items() {
        let system = toy_system();
        let popular: std::collections::HashSet<_> =
            system.base().popular_set(10.0).into_iter().collect();
        let mut attack = HeuristicAttack::new(HeuristicKind::Popular, 3);
        let poison = attack.generate(&system, 4, 20);
        for traj in &poison {
            for (step, &item) in traj.iter().enumerate() {
                if step % 2 == 1 {
                    assert!(
                        popular.contains(&item),
                        "step {step} item {item} not popular"
                    );
                }
            }
        }
    }

    #[test]
    fn power_items_have_high_degree() {
        let system = toy_system();
        let power = HeuristicAttack::power_items(system.base(), 5);
        assert_eq!(power.len(), 5);
        // The most-connected item must appear before a random tail item
        // would; sanity: no duplicates.
        let mut dedup = power.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let system = toy_system();
        let a = HeuristicAttack::new(HeuristicKind::Middle, 9).generate(&system, 3, 10);
        let b = HeuristicAttack::new(HeuristicKind::Middle, 9).generate(&system, 3, 10);
        assert_eq!(a, b);
    }
}
