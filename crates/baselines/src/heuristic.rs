//! The four heuristic attacks (paper §IV-A):
//!
//! * **Random** — alternate a random original item and a random target.
//! * **Popular** — alternate a random target and a random item from the
//!   popular set `I_p` (top 10% by popularity).
//! * **Middle** — at every step pick uniformly among `I_t`, `I_p`, and
//!   `I \ I_p` (may click several targets in a row).
//! * **PowerItem** — Seminario & Wilson's power-item attack: alternate
//!   targets with "power items" selected by *in-degree centrality* on
//!   the item co-visitation graph (requires the system log).
//!
//! ## Determinism audit (zoo port)
//!
//! * All randomness is one seeded `StdRng`; crafting is a pure
//!   function of `(kind, seed, public info, n, t)` and is pinned by
//!   `deterministic_given_seed` plus the zoo conformance suite.
//! * Random/Popular/Middle need only *crawlable* knowledge, so the
//!   popular set is now derived from [`PublicInfo::popularity`]
//!   instead of the system log — bit-identical to
//!   `Dataset::popular_set` (same counts, same descending-popularity /
//!   ascending-id order), but honest about the knowledge level.
//! * PowerItem's co-visitation graph uses `HashSet`s whose iteration
//!   order is never observed (only `len()` is read), so hash order
//!   cannot leak into results; the final power-item ranking breaks
//!   ties by item id explicitly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recsys::attack::{
    Attack, AttackCaps, AttackError, AttackStepStats, GuardedSystem, Reader, Writer,
};
use recsys::data::{Dataset, ItemId, Trajectory};
use recsys::system::{BlackBoxSystem, ObservableSystem, PublicInfo};

use crate::util;
use crate::AttackMethod;

/// Which heuristic rule to apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HeuristicKind {
    Random,
    Popular,
    Middle,
    PowerItem,
}

/// Popular-set size: top `k%` of items (paper example: k = 10).
const POPULAR_PERCENT: f64 = 10.0;
/// Number of power items PowerItem alternates over.
const NUM_POWER_ITEMS: usize = 32;

/// The top `POPULAR_PERCENT`% most popular original items, derived
/// from crawlable popularity alone. Matches `Dataset::popular_set`
/// exactly: descending popularity, ties by ascending id, `ceil` count.
fn popular_set(info: &PublicInfo) -> Vec<ItemId> {
    let mut items: Vec<ItemId> = (0..info.num_items).collect();
    items.sort_by(|&a, &b| {
        info.popularity[b as usize]
            .cmp(&info.popularity[a as usize])
            .then(a.cmp(&b))
    });
    let take = ((info.num_items as f64) * POPULAR_PERCENT / 100.0)
        .ceil()
        .max(1.0) as usize;
    items.truncate(take.min(info.num_items as usize));
    items
}

/// A heuristic trajectory generator.
pub struct HeuristicAttack {
    kind: HeuristicKind,
    rng: StdRng,
    /// Prior knowledge for PowerItem (construction-time, never
    /// crawled through the black-box interface).
    log: Option<Dataset>,
    crafted: Option<Vec<Trajectory>>,
}

impl HeuristicAttack {
    pub fn new(kind: HeuristicKind, seed: u64) -> Self {
        Self {
            kind,
            rng: StdRng::seed_from_u64(seed),
            log: None,
            crafted: None,
        }
    }

    /// Supplies the system log PowerItem's centrality ranking needs.
    pub fn with_log(kind: HeuristicKind, seed: u64, log: Dataset) -> Self {
        Self {
            log: Some(log),
            ..Self::new(kind, seed)
        }
    }

    /// In-degree centrality power items: items with the most distinct
    /// co-visitation partners in the log.
    fn power_items(base: &Dataset, count: usize) -> Vec<ItemId> {
        let n = base.num_items() as usize;
        let mut partners: Vec<std::collections::HashSet<ItemId>> =
            vec![std::collections::HashSet::new(); n];
        for seq in base.sequences() {
            for pair in seq.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                if a != b {
                    partners[a as usize].insert(b);
                    partners[b as usize].insert(a);
                }
            }
        }
        let mut items: Vec<ItemId> = (0..base.num_items()).collect();
        items.sort_by(|&a, &b| {
            partners[b as usize]
                .len()
                .cmp(&partners[a as usize].len())
                .then(a.cmp(&b))
        });
        items.truncate(count.max(1));
        items
    }

    /// The crafting core shared by the legacy [`AttackMethod`] path and
    /// the zoo [`Attack`] path: a pure function of the RNG stream,
    /// public info, the (optional) log, and the `n × t` budget.
    fn craft(
        &mut self,
        info: &PublicInfo,
        power_src: Option<&Dataset>,
        n: usize,
        t: usize,
    ) -> Result<Vec<Trajectory>, AttackError> {
        let targets = &info.target_items;
        let popular = popular_set(info);
        let popular_lookup: std::collections::HashSet<ItemId> = popular.iter().copied().collect();
        let unpopular: Vec<ItemId> = (0..info.num_items)
            .filter(|i| !popular_lookup.contains(i))
            .collect();
        let power = if self.kind == HeuristicKind::PowerItem {
            let base = power_src.ok_or(AttackError::Capability {
                attack: "PowerItem".to_string(),
                needs: "the system interaction log (supply it at construction)",
            })?;
            Self::power_items(base, NUM_POWER_ITEMS)
        } else {
            Vec::new()
        };
        let rng = &mut self.rng;
        let pick = |set: &[ItemId], rng: &mut StdRng| set[rng.gen_range(0..set.len())];

        Ok((0..n)
            .map(|_| {
                (0..t)
                    .map(|step| match self.kind {
                        HeuristicKind::Random => {
                            if step % 2 == 0 {
                                pick(targets, rng)
                            } else {
                                rng.gen_range(0..info.num_items)
                            }
                        }
                        HeuristicKind::Popular => {
                            if step % 2 == 0 {
                                pick(targets, rng)
                            } else {
                                pick(&popular, rng)
                            }
                        }
                        HeuristicKind::Middle => match rng.gen_range(0..3) {
                            0 => pick(targets, rng),
                            1 => pick(&popular, rng),
                            _ => pick(&unpopular, rng),
                        },
                        HeuristicKind::PowerItem => {
                            if step % 2 == 0 {
                                pick(targets, rng)
                            } else {
                                pick(&power, rng)
                            }
                        }
                    })
                    .collect()
            })
            .collect())
    }

    fn static_name(&self) -> &'static str {
        match self.kind {
            HeuristicKind::Random => "Random",
            HeuristicKind::Popular => "Popular",
            HeuristicKind::Middle => "Middle",
            HeuristicKind::PowerItem => "PowerItem",
        }
    }
}

impl AttackMethod for HeuristicAttack {
    fn name(&self) -> &'static str {
        self.static_name()
    }

    fn generate(&mut self, system: &BlackBoxSystem, n: usize, t: usize) -> Vec<Trajectory> {
        self.craft(&system.public_info(), Some(system.base()), n, t)
            .expect("the in-process system always has its log")
    }
}

impl Attack for HeuristicAttack {
    fn name(&self) -> &'static str {
        self.static_name()
    }

    fn caps(&self) -> AttackCaps {
        AttackCaps {
            model_required: self.kind == HeuristicKind::PowerItem,
            ..AttackCaps::default()
        }
    }

    fn planned_steps(&self) -> usize {
        1
    }

    fn steps_done(&self) -> usize {
        usize::from(self.crafted.is_some())
    }

    fn step(
        &mut self,
        system: &GuardedSystem<'_>,
        _threads: usize,
    ) -> Result<AttackStepStats, AttackError> {
        if self.crafted.is_some() {
            return Err(AttackError::State(
                "heuristics craft in a single step; the poison is already built".into(),
            ));
        }
        let budget = system.budget();
        let info = system.public_info();
        let log = self.log.take();
        let crafted = self.craft(
            &info,
            log.as_ref(),
            budget.fake_users as usize,
            budget.clicks_per_user,
        );
        self.log = log;
        self.crafted = Some(crafted?);
        Ok(AttackStepStats {
            step: 0,
            reward: None,
            best_reward: None,
            observations: system.usage().observations,
        })
    }

    fn poison(&self) -> Result<Vec<Trajectory>, AttackError> {
        self.crafted
            .clone()
            .ok_or_else(|| AttackError::State("run the crafting step first".into()))
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        util::put_rng(&mut w, &self.rng);
        match &self.crafted {
            None => w.put_u8(0),
            Some(poison) => {
                w.put_u8(1);
                util::put_trajectories(&mut w, poison);
            }
        }
        w.into_bytes()
    }

    fn restore_state(
        &mut self,
        bytes: &[u8],
        _system: &GuardedSystem<'_>,
    ) -> Result<(), AttackError> {
        let mut r = Reader::new(bytes);
        let rng = util::get_rng(&mut r)?;
        let crafted = match r.get_u8("crafted tag")? {
            0 => None,
            _ => Some(util::get_trajectories(&mut r)?),
        };
        r.expect_eof()?;
        self.rng = rng;
        self.crafted = crafted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn toy_system() -> BlackBoxSystem {
        let histories = (0..50u32)
            .map(|u| (0..6).map(|tt| (u + tt * 11) % 80).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories, 80, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 10,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    #[test]
    fn shapes_and_ranges() {
        let system = toy_system();
        for kind in [
            HeuristicKind::Random,
            HeuristicKind::Popular,
            HeuristicKind::Middle,
            HeuristicKind::PowerItem,
        ] {
            let mut attack = HeuristicAttack::new(kind, 3);
            let poison = attack.generate(&system, 5, 12);
            assert_eq!(poison.len(), 5);
            assert!(poison.iter().all(|tr| tr.len() == 12), "{kind:?}");
            assert!(poison.iter().flatten().all(|&i| i < 88), "{kind:?}");
        }
    }

    #[test]
    fn alternating_attacks_hit_targets_half_the_time() {
        let system = toy_system();
        for kind in [
            HeuristicKind::Random,
            HeuristicKind::Popular,
            HeuristicKind::PowerItem,
        ] {
            let mut attack = HeuristicAttack::new(kind, 3);
            let poison = attack.generate(&system, 8, 20);
            let total: usize = poison.iter().map(Vec::len).sum();
            let on_target = poison.iter().flatten().filter(|&&i| i >= 80).count();
            assert_eq!(on_target * 2, total, "{kind:?} must alternate");
        }
    }

    #[test]
    fn popular_attack_clicks_popular_items() {
        let system = toy_system();
        let popular: std::collections::HashSet<_> =
            system.base().popular_set(10.0).into_iter().collect();
        let mut attack = HeuristicAttack::new(HeuristicKind::Popular, 3);
        let poison = attack.generate(&system, 4, 20);
        for traj in &poison {
            for (step, &item) in traj.iter().enumerate() {
                if step % 2 == 1 {
                    assert!(
                        popular.contains(&item),
                        "step {step} item {item} not popular"
                    );
                }
            }
        }
    }

    #[test]
    fn crawled_popular_set_matches_the_log_derived_one() {
        // The audit fix: the popular set is now derived from public
        // popularity, and must equal `Dataset::popular_set` exactly.
        let system = toy_system();
        assert_eq!(
            popular_set(&system.public_info()),
            system.base().popular_set(POPULAR_PERCENT)
        );
    }

    #[test]
    fn power_items_have_high_degree() {
        let system = toy_system();
        let power = HeuristicAttack::power_items(system.base(), 5);
        assert_eq!(power.len(), 5);
        // The most-connected item must appear before a random tail item
        // would; sanity: no duplicates.
        let mut dedup = power.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let system = toy_system();
        let a = HeuristicAttack::new(HeuristicKind::Middle, 9).generate(&system, 3, 10);
        let b = HeuristicAttack::new(HeuristicKind::Middle, 9).generate(&system, 3, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn power_item_without_log_is_a_typed_capability_error() {
        let system = toy_system();
        let guard = recsys::attack::GuardedSystem::new(
            &system,
            recsys::attack::AttackBudget {
                fake_users: 4,
                clicks_per_user: 6,
                observations: 0,
            },
        );
        let mut attack = HeuristicAttack::new(HeuristicKind::PowerItem, 3);
        match attack.step(&guard, 1) {
            Err(AttackError::Capability { attack, .. }) => assert_eq!(attack, "PowerItem"),
            other => panic!("expected capability refusal, got {other:?}"),
        }
    }
}
