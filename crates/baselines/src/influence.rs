//! Influence-function top-N promotion (after Fang et al., "Influence
//! Function based Data Poisoning Attacks to Top-N Recommender
//! Systems", WWW'20 — see PAPERS.md): the zoo's related-work family,
//! implemented natively rather than ported from `related/`.
//!
//! The original attack trains a *surrogate* matrix-factorization model
//! on the (known) interaction log, scores every candidate filler item
//! by its aggregate influence on user preference scores, and builds
//! fake profiles that mix target clicks with the highest-influence
//! fillers, so the poisoned retrain drags real users' neighborhoods
//! toward the targets.
//!
//! Our budgeted-trajectory adaptation keeps that structure:
//!
//! 1. **Surrogate fit** (step 0, no queries): PMF on the log; each
//!    item's influence score is `Σ_u cos(pref_u, e_j)` where `pref_u`
//!    is the mean embedding of user `u`'s history — computed via the
//!    factorization `(Σ_u pref_u / ‖pref_u‖) · e_j / ‖e_j‖` with `f64`
//!    accumulation in fixed user order, so the score is exact and
//!    deterministic.
//! 2. **Mix sweep** (steps 1..=rounds, one query each): candidate
//!    profiles interleave target clicks at fraction `k/(rounds+1)`
//!    with top-influence fillers (largest-remainder interleaving, no
//!    RNG), and the black-box RecNum picks the winning mix — the
//!    budget-constrained analogue of the paper's line search over the
//!    unnoticeability constraint.
//!
//! The whole family is RNG-free: determinism comes from the seeded
//! surrogate fit and fixed iteration orders.

use recsys::attack::{
    Attack, AttackCaps, AttackError, AttackStepStats, BudgetKind, BudgetViolation, GuardedSystem,
    Reader, Writer,
};
use recsys::data::{Dataset, ItemId, LogView, Trajectory};
use recsys::rankers::common::child_seed;
use recsys::rankers::{EmbeddingConfig, Pmf, PmfConfig, Ranker};
use recsys::system::ObservableSystem;

use crate::util;

/// Influence-attack parameters.
#[derive(Copy, Clone, Debug)]
pub struct InfluenceConfig {
    /// Target-fraction candidates swept (each costs one query).
    pub rounds: usize,
    /// Surrogate PMF embedding dimension.
    pub dim: usize,
    /// Surrogate PMF training epochs.
    pub epochs: usize,
    /// How many top-influence fillers the profiles cycle over.
    pub filler_pool: usize,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        Self {
            rounds: 5,
            dim: 16,
            epochs: 3,
            filler_pool: 32,
        }
    }
}

/// The influence-function promotion attack.
pub struct InfluenceAttack {
    cfg: InfluenceConfig,
    seed: u64,
    log: Dataset,
    fillers: Option<Vec<ItemId>>,
    best: Option<(Vec<Trajectory>, u32)>,
    steps_done: usize,
}

impl InfluenceAttack {
    /// The log is prior knowledge the surrogate needs — the same
    /// knowledge level as ConsLOP and PowerItem (paper §IV-A).
    pub fn new(cfg: InfluenceConfig, seed: u64, log: Dataset) -> Self {
        Self {
            cfg,
            seed,
            log,
            fillers: None,
            best: None,
            steps_done: 0,
        }
    }

    /// Fits the surrogate and ranks filler items by influence score.
    fn rank_fillers(&self) -> Vec<ItemId> {
        let view = LogView::clean(&self.log);
        let mut surrogate = Pmf::new(
            PmfConfig {
                dim: self.cfg.dim,
                epochs: self.cfg.epochs,
                ..PmfConfig::default()
            },
            EmbeddingConfig::for_view(&view, 0),
        );
        surrogate.fit(&view, child_seed(self.seed, 77));
        let emb = surrogate
            .item_embeddings()
            .expect("PMF always exposes item embeddings");
        let dim = emb.cols();

        // Aggregate normalized user preference direction, f64 in fixed
        // user order so the fold is exact.
        let mut agg = vec![0.0f64; dim];
        for seq in self.log.sequences() {
            if seq.is_empty() {
                continue;
            }
            let mut pref = vec![0.0f64; dim];
            for &item in seq {
                for (p, &e) in pref.iter_mut().zip(emb.row_slice(item as usize)) {
                    *p += e as f64;
                }
            }
            let norm = pref.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for (a, p) in agg.iter_mut().zip(&pref) {
                    *a += p / norm;
                }
            }
        }

        // score(j) = agg · e_j / ‖e_j‖, over original items only.
        let mut scored: Vec<(f64, ItemId)> = (0..self.log.num_items())
            .map(|j| {
                let row = emb.row_slice(j as usize);
                let dot: f64 = agg.iter().zip(row).map(|(a, &e)| a * e as f64).sum();
                let norm = row.iter().map(|&e| (e as f64).powi(2)).sum::<f64>().sqrt();
                (if norm > 0.0 { dot / norm } else { f64::MIN }, j)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored
            .into_iter()
            .take(self.cfg.filler_pool.max(1))
            .map(|(_, j)| j)
            .collect()
    }

    /// Builds the candidate poison for target fraction `frac` by
    /// largest-remainder interleaving — deterministic, no RNG.
    fn mix(
        targets: &[ItemId],
        fillers: &[ItemId],
        frac: f64,
        n: usize,
        t: usize,
    ) -> Vec<Trajectory> {
        let mut filler_cursor = 0usize;
        (0..n)
            .map(|u| {
                let primary = targets[u % targets.len()];
                let mut acc = 0.0f64;
                (0..t)
                    .map(|_| {
                        acc += frac;
                        if acc >= 1.0 {
                            acc -= 1.0;
                            primary
                        } else {
                            let item = fillers[filler_cursor % fillers.len()];
                            filler_cursor += 1;
                            item
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl Attack for InfluenceAttack {
    fn name(&self) -> &'static str {
        "Influence"
    }

    fn caps(&self) -> AttackCaps {
        AttackCaps {
            model_required: true,
            queries_system: true,
            ..AttackCaps::default()
        }
    }

    fn planned_steps(&self) -> usize {
        1 + self.cfg.rounds
    }

    fn steps_done(&self) -> usize {
        self.steps_done
    }

    fn step(
        &mut self,
        system: &GuardedSystem<'_>,
        threads: usize,
    ) -> Result<AttackStepStats, AttackError> {
        if self.steps_done >= self.planned_steps() {
            return Err(AttackError::State("the mix sweep already finished".into()));
        }
        let reward = if self.steps_done == 0 {
            self.fillers = Some(self.rank_fillers());
            None
        } else {
            if system.observations_left() < 1 {
                return Err(AttackError::Budget(BudgetViolation {
                    kind: BudgetKind::Observations,
                    requested: system.usage().observations + 1,
                    declared: system.budget().observations,
                }));
            }
            let fillers = self.fillers.as_ref().expect("surrogate step ran");
            let info = system.public_info();
            let budget = system.budget();
            let frac = self.steps_done as f64 / (self.cfg.rounds + 1) as f64;
            let poison = Self::mix(
                &info.target_items,
                fillers,
                frac,
                budget.fake_users as usize,
                budget.clicks_per_user,
            );
            let obs = system.try_observe_batch(&[&poison], threads)?;
            let rec_num = obs[0].rec_num;
            if self.best.as_ref().is_none_or(|&(_, r)| rec_num > r) {
                self.best = Some((poison, rec_num));
            }
            Some(rec_num as f32)
        };
        self.steps_done += 1;
        Ok(AttackStepStats {
            step: self.steps_done - 1,
            reward,
            best_reward: self.best.as_ref().map(|&(_, r)| r as f32),
            observations: system.usage().observations,
        })
    }

    fn poison(&self) -> Result<Vec<Trajectory>, AttackError> {
        self.best
            .as_ref()
            .map(|(p, _)| p.clone())
            .ok_or_else(|| AttackError::State("run the mix sweep first".into()))
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.steps_done as u64);
        match &self.fillers {
            None => w.put_u8(0),
            Some(fillers) => {
                w.put_u8(1);
                w.put_u64(fillers.len() as u64);
                for &item in fillers {
                    w.put_u32(item);
                }
            }
        }
        match &self.best {
            None => w.put_u8(0),
            Some((poison, rec_num)) => {
                w.put_u8(1);
                util::put_trajectories(&mut w, poison);
                w.put_u32(*rec_num);
            }
        }
        w.into_bytes()
    }

    fn restore_state(
        &mut self,
        bytes: &[u8],
        _system: &GuardedSystem<'_>,
    ) -> Result<(), AttackError> {
        let mut r = Reader::new(bytes);
        let steps_done = r.get_u64("steps done")? as usize;
        let fillers = match r.get_u8("fillers tag")? {
            0 => None,
            _ => {
                let len = r.get_len(4, "filler count")?;
                let mut fillers = Vec::with_capacity(len);
                for _ in 0..len {
                    fillers.push(r.get_u32("filler item")?);
                }
                Some(fillers)
            }
        };
        let best = match r.get_u8("best tag")? {
            0 => None,
            _ => {
                let poison = util::get_trajectories(&mut r)?;
                let rec_num = r.get_u32("best rec_num")?;
                Some((poison, rec_num))
            }
        };
        r.expect_eof()?;
        self.steps_done = steps_done;
        self.fillers = fillers;
        self.best = best;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::attack::AttackBudget;
    use recsys::rankers::ItemPop;
    use recsys::system::{BlackBoxSystem, SystemConfig};

    fn toy() -> (BlackBoxSystem, Dataset) {
        let histories: Vec<Vec<u32>> = (0..50u32)
            .map(|u| (0..6).map(|tt| (u * 3 + tt * 5) % 64).collect())
            .collect();
        let data = Dataset::from_histories("toy", histories.clone(), 64, 8);
        let log = Dataset::from_histories("toy", histories, 64, 8);
        let system = BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 20,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        );
        (system, log)
    }

    fn run(seed: u64) -> (Vec<Trajectory>, u64) {
        let (system, log) = toy();
        let guard = GuardedSystem::new(
            &system,
            AttackBudget {
                fake_users: 6,
                clicks_per_user: 10,
                observations: 8,
            },
        );
        let mut attack = InfluenceAttack::new(InfluenceConfig::default(), seed, log);
        while attack.steps_done() < attack.planned_steps() {
            attack.step(&guard, 2).unwrap();
        }
        (attack.poison().unwrap(), guard.usage().observations)
    }

    #[test]
    fn sweep_spends_one_query_per_round_and_returns_a_full_budget() {
        let (poison, spent) = run(3);
        assert_eq!(spent, InfluenceConfig::default().rounds as u64);
        assert_eq!(poison.len(), 6);
        assert!(poison.iter().all(|tr| tr.len() == 10));
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(3).0, run(3).0);
    }

    #[test]
    fn mix_fraction_controls_target_density() {
        let targets = vec![100, 101];
        let fillers = vec![1, 2, 3];
        let half = InfluenceAttack::mix(&targets, &fillers, 0.5, 2, 10);
        let on_target: usize = half.iter().flatten().filter(|&&i| i >= 100).count();
        assert_eq!(on_target, 10, "half the clicks at frac 0.5");
        let none = InfluenceAttack::mix(&targets, &fillers, 0.0, 2, 10);
        assert!(none.iter().flatten().all(|&i| i < 100));
    }

    #[test]
    fn exhausted_budget_is_a_typed_refusal() {
        let (system, log) = toy();
        let guard = GuardedSystem::new(
            &system,
            AttackBudget {
                fake_users: 6,
                clicks_per_user: 10,
                observations: 1,
            },
        );
        let mut attack = InfluenceAttack::new(InfluenceConfig::default(), 3, log);
        attack.step(&guard, 1).unwrap(); // surrogate, free
        attack.step(&guard, 1).unwrap(); // first probe
        match attack.step(&guard, 1) {
            Err(AttackError::Budget(v)) => assert_eq!(v.kind, BudgetKind::Observations),
            other => panic!("expected budget refusal, got {other:?}"),
        }
    }

    #[test]
    fn state_round_trips_mid_sweep() {
        let (system, log) = toy();
        let guard = GuardedSystem::new(
            &system,
            AttackBudget {
                fake_users: 6,
                clicks_per_user: 10,
                observations: 8,
            },
        );
        let mut attack = InfluenceAttack::new(InfluenceConfig::default(), 3, log.clone());
        attack.step(&guard, 1).unwrap();
        attack.step(&guard, 1).unwrap();
        let bytes = attack.state_bytes();
        let mut restored = InfluenceAttack::new(InfluenceConfig::default(), 3, log);
        restored.restore_state(&bytes, &guard).unwrap();
        assert_eq!(restored.state_bytes(), bytes);
        assert_eq!(restored.steps_done(), 2);
    }
}
