//! Algorithm 1: the outer PoisonRec training loop.
//!
//! Each training step samples `M` episodes from the policy, injects
//! every episode's trajectory set into the black-box system to observe
//! its RecNum reward, then runs `K` PPO epochs over random batches of
//! `B` stored examples with Eq. 8-normalized rewards.
//!
//! ## Threading
//!
//! [`PoisonRecTrainer::step`] is split into two phases. The *sample*
//! phase draws all `M` episodes sequentially — it owns the trainer's
//! RNG, and keeping it single-threaded keeps the policy's sampling
//! stream independent of thread count. The *scoring* phase hands the
//! sampled trajectory sets to [`ObservableSystem::observe_batch`], which
//! retrains up to [`PoisonRecConfig::threads`] system clones in
//! parallel. Observation seeds are fixed before dispatch, so a step's
//! rewards — and therefore the whole training run — are bit-identical
//! for every `threads` value.

use std::path::Path;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recsys::system::{ConfigError, ObservableSystem};
use recsys::Trajectory;
use telemetry::{Json, JsonlSink, Stopwatch};
use tensor::wire::Codec;

use crate::action::{ActionSpace, ActionSpaceKind};
use crate::checkpoint::{self, CheckpointError, TrainerState};
use crate::policy::{Episode, PolicyConfig, PolicyNetwork};
use crate::ppo::{normalize_rewards, PpoConfig, PpoUpdater};

/// Full PoisonRec configuration (paper defaults).
#[derive(Copy, Clone, Debug)]
pub struct PoisonRecConfig {
    pub policy: PolicyConfig,
    pub ppo: PpoConfig,
    pub action_space: ActionSpaceKind,
    pub seed: u64,
    /// Upper bound on concurrent system retrains per scoring phase.
    /// `1` (the default) keeps every observation on the calling
    /// thread; results are identical either way.
    pub threads: usize,
}

impl Default for PoisonRecConfig {
    fn default() -> Self {
        Self {
            policy: PolicyConfig::default(),
            ppo: PpoConfig::default(),
            action_space: ActionSpaceKind::BcbtPopular,
            seed: 1,
            threads: 1,
        }
    }
}

impl PoisonRecConfig {
    /// A validating builder seeded with the paper defaults.
    pub fn builder() -> PoisonRecConfigBuilder {
        PoisonRecConfigBuilder {
            cfg: Self::default(),
        }
    }
}

/// Builds a [`PoisonRecConfig`], rejecting degenerate values before
/// they turn into mid-training panics or silent no-op steps.
#[derive(Clone, Debug)]
pub struct PoisonRecConfigBuilder {
    cfg: PoisonRecConfig,
}

impl PoisonRecConfigBuilder {
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.cfg.policy = policy;
        self
    }

    pub fn ppo(mut self, ppo: PpoConfig) -> Self {
        self.cfg.ppo = ppo;
        self
    }

    pub fn action_space(mut self, action_space: ActionSpaceKind) -> Self {
        self.cfg.action_space = action_space;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PoisonRecConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.ppo.samples_per_step == 0 {
            return Err(ConfigError {
                field: "ppo.samples_per_step",
                message: "a step must sample at least one episode".into(),
            });
        }
        if cfg.ppo.batch == 0 {
            return Err(ConfigError {
                field: "ppo.batch",
                message: "PPO batches must contain at least one episode".into(),
            });
        }
        if cfg.policy.num_attackers == 0 {
            return Err(ConfigError {
                field: "policy.num_attackers",
                message: "an attack needs at least one fake account".into(),
            });
        }
        if cfg.threads == 0 {
            return Err(ConfigError {
                field: "threads",
                message: "at least one scoring thread is required".into(),
            });
        }
        Ok(cfg)
    }

    /// [`PoisonRecConfigBuilder::build`] plus checks against the target
    /// system: the policy must not sample more fake accounts than the
    /// system reserves, or every injection would be rejected at
    /// observation time.
    pub fn build_for(self, system: &dyn ObservableSystem) -> Result<PoisonRecConfig, ConfigError> {
        let reserve = system.config().reserve_attackers as usize;
        let cfg = self.build()?;
        if cfg.policy.num_attackers > reserve {
            return Err(ConfigError {
                field: "policy.num_attackers",
                message: format!(
                    "policy samples {} fake accounts but the system reserves only {reserve}",
                    cfg.policy.num_attackers
                ),
            });
        }
        Ok(cfg)
    }
}

/// Per-step training telemetry (drives Figure 4 and the run logs).
#[derive(Copy, Clone, Debug)]
pub struct StepStats {
    pub step: usize,
    /// Mean RecNum over the step's sampled episodes.
    pub mean_reward: f32,
    /// Best RecNum in the step.
    pub max_reward: f32,
    /// Mean fraction of clicks on target items (drives Figure 5).
    pub target_click_ratio: f64,
    /// Mean |weight| diagnostic from the PPO epochs.
    pub ppo_signal: f32,
    /// Wall-clock seconds of the *sample* phase: drawing the step's
    /// `M` episodes from the policy (sequential, owns the trainer RNG).
    pub sample_secs: f64,
    /// Wall-clock seconds of the *score* phase: the `M` black-box
    /// system retrains, fanned over [`PoisonRecConfig::threads`].
    pub score_secs: f64,
    /// Wall-clock seconds of the *update* phase: the `K` PPO epochs.
    pub update_secs: f64,
    /// Cumulative black-box observations this trainer has spent over
    /// its lifetime — the attack's query budget, `M` per step. After
    /// step `s` (0-based) this is exactly `M * (s + 1)`.
    pub observations: u64,
}

/// Streams one JSONL event line per [`PoisonRecTrainer::step`] into a
/// shared [`JsonlSink`], tagged with caller-supplied labels (dataset,
/// ranker, action-space design, ...) so many concurrent trainers can
/// interleave in one run log. See DESIGN.md §5b for the schema.
pub struct StepLogger {
    sink: Arc<JsonlSink>,
    labels: Vec<(String, Json)>,
}

impl StepLogger {
    pub fn new(sink: Arc<JsonlSink>) -> Self {
        Self {
            sink,
            labels: Vec::new(),
        }
    }

    /// Adds a constant label emitted on every step event.
    pub fn label(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.labels.push((key.to_string(), value.into()));
        self
    }

    fn log(&self, stats: &StepStats) {
        let mut line = Json::obj().field("type", "step");
        for (key, value) in &self.labels {
            line = line.field(key, value.clone());
        }
        let line = line
            .field("step", stats.step)
            .field("mean_reward", stats.mean_reward)
            .field("max_reward", stats.max_reward)
            .field("target_click_ratio", stats.target_click_ratio)
            .field("ppo_signal", stats.ppo_signal)
            .field("sample_secs", stats.sample_secs)
            .field("score_secs", stats.score_secs)
            .field("update_secs", stats.update_secs)
            .field("observations", stats.observations);
        self.sink.emit(&line).expect("telemetry sink write failed");
    }

    /// Emits a `checkpoint` event carrying the same labels as step
    /// events. The JSONL validator only requires non-`step` types to
    /// parse, so these lines never break a run log.
    fn log_checkpoint(&self, step: usize, path: &Path, bytes: u64) {
        let mut line = Json::obj().field("type", "checkpoint");
        for (key, value) in &self.labels {
            line = line.field(key, value.clone());
        }
        let line = line
            .field("step", step)
            .field("path", path.display().to_string())
            .field("bytes", bytes);
        self.sink.emit(&line).expect("telemetry sink write failed");
    }
}

/// The attack agent: policy + action space + PPO state + history.
pub struct PoisonRecTrainer {
    cfg: PoisonRecConfig,
    space: ActionSpace,
    policy: PolicyNetwork,
    updater: PpoUpdater,
    rng: StdRng,
    history: Vec<StepStats>,
    best: Option<Episode>,
    /// Lifetime observation spend (`M` per step); see
    /// [`StepStats::observations`].
    observations: u64,
    logger: Option<StepLogger>,
}

impl PoisonRecTrainer {
    /// Builds the agent against a system, using only the system's
    /// *public* information (item counts and crawled popularity).
    pub fn new(cfg: PoisonRecConfig, system: &dyn ObservableSystem) -> Self {
        let info = system.public_info();
        let space = ActionSpace::build(
            cfg.action_space,
            info.num_items,
            info.target_items.len() as u32,
            &info.popularity,
            cfg.seed,
        );
        let policy = PolicyNetwork::new(cfg.policy, &space, cfg.seed);
        let updater = PpoUpdater::new(cfg.ppo, &policy);
        Self {
            cfg,
            space,
            policy,
            updater,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xA11CE),
            history: Vec::new(),
            best: None,
            observations: 0,
            logger: None,
        }
    }

    /// Streams every future step's [`StepStats`] to `logger`'s JSONL
    /// sink. Telemetry is write-only: attaching a logger cannot change
    /// any sampled episode or reward.
    pub fn attach_logger(&mut self, logger: StepLogger) {
        self.logger = Some(logger);
    }

    pub fn config(&self) -> &PoisonRecConfig {
        &self.cfg
    }

    pub fn policy(&self) -> &PolicyNetwork {
        &self.policy
    }

    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    pub fn history(&self) -> &[StepStats] {
        &self.history
    }

    /// The highest-reward episode observed so far.
    pub fn best_episode(&self) -> Option<&Episode> {
        self.best.as_ref()
    }

    /// Re-binds the scoring/kernel thread budget. Training is
    /// thread-count invariant, so this only changes wall time — the
    /// zoo driver uses it to run one configured trainer at whatever
    /// parallelism the current cell asks for.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
    }

    /// The complete serializable trainer closure — what
    /// [`PoisonRecTrainer::save_checkpoint`] seals. Exposed so generic
    /// attack drivers can embed the trainer state in their own
    /// containers.
    pub fn export_state(&self) -> TrainerState {
        TrainerState {
            rng_state: self.rng.state(),
            observations: self.observations,
            params: self.policy.params().clone(),
            optimizer: self.updater.optimizer().clone(),
            best: self.best.clone(),
            history: self.history.clone(),
        }
    }

    /// One Algorithm 1 iteration. Costs `M` system retrains, fanned
    /// out over up to [`PoisonRecConfig::threads`] threads.
    pub fn step(&mut self, system: &dyn ObservableSystem) -> StepStats {
        let m = self.cfg.ppo.samples_per_step;
        // Let the tensor kernels use the same thread budget as the
        // scoring fan-out. Kernel results are bit-identical at any
        // thread count, so this only changes wall time.
        tensor::kernel::set_threads(self.cfg.threads);

        // Sample phase (sequential): the only consumer of the trainer
        // RNG, so the policy's sampling stream never depends on how
        // the scoring phase is scheduled.
        let sample_watch = Stopwatch::start();
        let sample_span = telemetry::trace::span("sample", "trainer");
        let mut episodes: Vec<Episode> = (0..m)
            .map(|_| self.policy.sample_episode(&self.space, &mut self.rng))
            .collect();
        drop(sample_span);
        let sample_secs = sample_watch.elapsed_secs();

        // Scoring phase (parallel): M independent system retrains.
        let score_watch = Stopwatch::start();
        let score_span = telemetry::trace::span("score", "trainer");
        let batch: Vec<&[Trajectory]> =
            episodes.iter().map(|e| e.trajectories.as_slice()).collect();
        let observations = system.observe_batch(&batch, self.cfg.threads);
        for (ep, obs) in episodes.iter_mut().zip(&observations) {
            ep.reward = obs.rec_num as f32;
        }
        drop(score_span);
        let score_secs = score_watch.elapsed_secs();
        self.observations += observations.len() as u64;

        // Track the step's champion by index; clone at most once per
        // step, and only when it beats the all-time best.
        let mut step_best: Option<usize> = None;
        for (i, ep) in episodes.iter().enumerate() {
            if step_best.is_none_or(|j| ep.reward > episodes[j].reward) {
                step_best = Some(i);
            }
        }
        if let Some(i) = step_best {
            if self
                .best
                .as_ref()
                .is_none_or(|b| episodes[i].reward > b.reward)
            {
                self.best = Some(episodes[i].clone());
            }
        }

        let update_watch = Stopwatch::start();
        let update_span = telemetry::trace::span("update", "trainer");
        let mut signal_sum = 0.0f32;
        for _ in 0..self.cfg.ppo.epochs {
            let mut idx: Vec<usize> = (0..episodes.len()).collect();
            idx.shuffle(&mut self.rng);
            idx.truncate(self.cfg.ppo.batch.min(episodes.len()));
            let batch: Vec<&Episode> = idx.iter().map(|&i| &episodes[i]).collect();
            let rewards: Vec<f32> = batch.iter().map(|e| e.reward).collect();
            let advantages = if self.cfg.ppo.normalize_rewards {
                normalize_rewards(&rewards)
            } else {
                rewards.clone()
            };
            signal_sum += self
                .updater
                .update_batch(&mut self.policy, &batch, &advantages);
        }

        drop(update_span);
        let update_secs = update_watch.elapsed_secs();

        let rewards: Vec<f32> = episodes.iter().map(|e| e.reward).collect();
        let num_items = system.public_info().num_items;
        let stats = StepStats {
            step: self.history.len(),
            mean_reward: tensor::util::mean(&rewards),
            max_reward: rewards.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            target_click_ratio: episodes
                .iter()
                .map(|e| e.target_click_ratio(num_items))
                .sum::<f64>()
                / episodes.len() as f64,
            ppo_signal: signal_sum / self.cfg.ppo.epochs.max(1) as f32,
            sample_secs,
            score_secs,
            update_secs,
            observations: self.observations,
        };
        telemetry::metrics::counter("trainer_steps_total").inc();
        for (name, secs) in [
            ("trainer_sample_seconds", sample_secs),
            ("trainer_score_seconds", score_secs),
            ("trainer_update_seconds", update_secs),
        ] {
            telemetry::metrics::histogram(name, &telemetry::TIME_BUCKETS).record(secs);
        }
        if let Some(logger) = &self.logger {
            logger.log(&stats);
        }
        self.history.push(stats);
        stats
    }

    /// Runs `steps` iterations; returns the accumulated history.
    pub fn train(&mut self, system: &dyn ObservableSystem, steps: usize) -> &[StepStats] {
        for _ in 0..steps {
            self.step(system);
        }
        &self.history
    }

    /// Samples a fresh attack (no injection) from the current policy —
    /// what the attacker deploys after training.
    pub fn sample_attack(&mut self) -> Episode {
        self.policy.sample_episode(&self.space, &mut self.rng)
    }

    /// Serializes the complete trainer state into the versioned
    /// [`checkpoint`] container and writes it to `path` atomically
    /// (tmp + rename — a crash mid-save never leaves a torn file).
    /// Emits a `checkpoint` telemetry event if a logger is attached.
    /// Returns the number of bytes written.
    ///
    /// A trainer resumed from the file continues **bit-identically** to
    /// this one, provided the caller rebuilds `system` from the same
    /// dataset and [`recsys::system::SystemConfig`].
    pub fn save_checkpoint(
        &self,
        system: &dyn ObservableSystem,
        path: impl AsRef<Path>,
    ) -> Result<u64, CheckpointError> {
        let path = path.as_ref();
        let body = self.export_state().to_bytes();
        let fingerprint = checkpoint::config_fingerprint(&self.cfg, system);
        let sealed = checkpoint::seal(fingerprint, &body);
        checkpoint::atomic_write(path, &sealed)?;
        telemetry::metrics::counter("trainer_checkpoints_total").inc();
        if let Some(logger) = &self.logger {
            logger.log_checkpoint(self.history.len(), path, sealed.len() as u64);
        }
        Ok(sealed.len() as u64)
    }

    /// Rebuilds a trainer from a checkpoint written by
    /// [`PoisonRecTrainer::save_checkpoint`]. Refuses — with a
    /// descriptive [`CheckpointError`], never a panic — corrupted or
    /// truncated files and checkpoints written under a different
    /// configuration (fingerprint mismatch). `cfg.threads` may differ
    /// from the saving run's: training is thread-count invariant.
    ///
    /// Also restores `system`'s observation seed stream, so `system`
    /// must be freshly built (zero observations spent); a rewind is
    /// refused. The resumed trainer's next [`PoisonRecTrainer::step`]
    /// produces exactly the bytes the interrupted run's would have.
    pub fn resume(
        path: impl AsRef<Path>,
        cfg: PoisonRecConfig,
        system: &dyn ObservableSystem,
    ) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path.as_ref())?;
        let (saved, body) = checkpoint::unseal(&bytes)?;
        let current = checkpoint::config_fingerprint(&cfg, system);
        if saved != current {
            return Err(CheckpointError::ConfigMismatch { saved, current });
        }
        let state = TrainerState::from_bytes(body)?;
        let mut trainer = Self::new(cfg, system);
        trainer.restore_state(state, system)?;
        Ok(trainer)
    }

    /// Overwrites this trainer's state with a decoded [`TrainerState`],
    /// validating shape agreement first so a mismatch surfaces here
    /// rather than as a panic deep inside a later step. Also
    /// fast-forwards `system`'s observation stream; see
    /// [`PoisonRecTrainer::resume`].
    pub fn restore_state(
        &mut self,
        state: TrainerState,
        system: &dyn ObservableSystem,
    ) -> Result<(), CheckpointError> {
        let malformed = |msg: String| Err(CheckpointError::Format(msg));
        let expected = self.policy.params();
        if state.params.len() != expected.len() {
            return malformed(format!(
                "checkpoint stores {} parameter matrices but this policy has {}",
                state.params.len(),
                expected.len()
            ));
        }
        for (id, matrix) in expected.iter() {
            let name = expected.name(id);
            if state.params.name(id) != name {
                return malformed(format!(
                    "parameter {} is named {:?} in the checkpoint, expected {name:?}",
                    id.index(),
                    state.params.name(id)
                ));
            }
            if state.params.get(id).shape() != matrix.shape() {
                return malformed(format!(
                    "parameter {name:?} has shape {:?} in the checkpoint, expected {:?}",
                    state.params.get(id).shape(),
                    matrix.shape()
                ));
            }
        }
        if !state.optimizer.tracks(&state.params) {
            return malformed("optimizer moments do not line up with the stored parameters".into());
        }
        if state.rng_state.iter().all(|&w| w == 0) {
            return malformed("stored RNG state is all zeros (invalid xoshiro256++ state)".into());
        }
        match state.history.last() {
            Some(last) if last.observations != state.observations => {
                return malformed(format!(
                    "observation count {} disagrees with the last history entry's {}",
                    state.observations, last.observations
                ));
            }
            None if state.observations != 0 => {
                return malformed(format!(
                    "checkpoint claims {} observations but an empty history",
                    state.observations
                ));
            }
            _ => {}
        }
        system
            .restore_observations_spent(state.observations)
            .map_err(|e| {
                CheckpointError::Format(format!(
                    "cannot restore the observation stream ({}): {}",
                    e.field, e.message
                ))
            })?;
        *self.policy.params_mut() = state.params;
        self.updater.restore_optimizer(state.optimizer);
        self.rng = StdRng::from_state(state.rng_state);
        self.best = state.best;
        self.observations = state.observations;
        self.history = state.history;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::{BlackBoxSystem, SystemConfig};

    fn tiny_system() -> BlackBoxSystem {
        let histories = (0..40u32)
            .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
            .collect();
        let data = Dataset::from_histories("tiny", histories, 60, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 24,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    fn tiny_cfg(kind: ActionSpaceKind) -> PoisonRecConfig {
        PoisonRecConfig {
            policy: PolicyConfig {
                dim: 8,
                num_attackers: 4,
                trajectory_len: 6,
                init_scale: 0.1,
            },
            ppo: PpoConfig {
                lr: 0.01,
                samples_per_step: 6,
                batch: 6,
                epochs: 2,
                ..PpoConfig::default()
            },
            action_space: kind,
            seed: 5,
            threads: 1,
        }
    }

    #[test]
    fn trainer_runs_and_records_history() {
        let system = tiny_system();
        let mut trainer = PoisonRecTrainer::new(tiny_cfg(ActionSpaceKind::BcbtPopular), &system);
        let history = trainer.train(&system, 3).to_vec();
        assert_eq!(history.len(), 3);
        assert!(trainer.best_episode().is_some());
        assert!(history.iter().all(|s| s.mean_reward >= 0.0));
        assert!(history
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.target_click_ratio)));
    }

    #[test]
    fn step_stats_track_phases_and_query_budget() {
        let system = tiny_system();
        let cfg = tiny_cfg(ActionSpaceKind::BcbtPopular);
        let m = cfg.ppo.samples_per_step as u64;
        let mut trainer = PoisonRecTrainer::new(cfg, &system);
        let history = trainer.train(&system, 3).to_vec();
        for (s, stats) in history.iter().enumerate() {
            assert_eq!(
                stats.observations,
                m * (s as u64 + 1),
                "each step costs exactly M observations"
            );
            for (phase, secs) in [
                ("sample", stats.sample_secs),
                ("score", stats.score_secs),
                ("update", stats.update_secs),
            ] {
                assert!(
                    secs.is_finite() && secs >= 0.0,
                    "{phase} phase duration invalid: {secs}"
                );
            }
        }
    }

    #[test]
    fn learns_to_attack_itempop() {
        // ItemPop on a tiny catalog: clicking targets repeatedly wins.
        // After a few steps the mean reward must clearly exceed the
        // first step's.
        let system = tiny_system();
        let mut trainer = PoisonRecTrainer::new(tiny_cfg(ActionSpaceKind::BcbtPopular), &system);
        let history = trainer.train(&system, 25).to_vec();
        let early: f32 = history[..5].iter().map(|s| s.mean_reward).sum::<f32>() / 5.0;
        let late: f32 = history[20..].iter().map(|s| s.mean_reward).sum::<f32>() / 5.0;
        assert!(
            late > early + 1.0,
            "no learning: early mean {early}, late mean {late}"
        );
    }

    #[test]
    fn all_action_spaces_run() {
        let system = tiny_system();
        for kind in ActionSpaceKind::ALL {
            let mut trainer = PoisonRecTrainer::new(tiny_cfg(kind), &system);
            let stats = trainer.step(&system);
            assert!(stats.mean_reward.is_finite(), "{kind}");
        }
    }

    #[test]
    fn training_is_thread_count_invariant() {
        // The scoring fan-out must not change a single bit of the run:
        // same per-step stats, same best episode.
        let run = |threads: usize| {
            let system = tiny_system();
            let cfg = PoisonRecConfig {
                threads,
                ..tiny_cfg(ActionSpaceKind::BcbtPopular)
            };
            let mut trainer = PoisonRecTrainer::new(cfg, &system);
            let history = trainer.train(&system, 4).to_vec();
            let best = trainer.best_episode().cloned().expect("ran steps");
            (history, best)
        };
        let (h1, b1) = run(1);
        let (h8, b8) = run(8);
        assert_eq!(h1.len(), h8.len());
        for (a, b) in h1.iter().zip(&h8) {
            assert_eq!(a.mean_reward, b.mean_reward);
            assert_eq!(a.max_reward, b.max_reward);
            assert_eq!(a.ppo_signal, b.ppo_signal);
        }
        assert_eq!(b1.reward, b8.reward);
        assert_eq!(b1.trajectories, b8.trajectories);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(PoisonRecConfig::builder().seed(9).build().is_ok());

        let zero_samples = PoisonRecConfig::builder()
            .ppo(PpoConfig {
                samples_per_step: 0,
                ..PpoConfig::default()
            })
            .build()
            .expect_err("zero samples per step");
        assert_eq!(zero_samples.field, "ppo.samples_per_step");

        let zero_threads = PoisonRecConfig::builder()
            .threads(0)
            .build()
            .expect_err("zero threads");
        assert_eq!(zero_threads.field, "threads");

        let system = tiny_system(); // reserves 8 attacker accounts
        let greedy = PoisonRecConfig::builder()
            .policy(PolicyConfig {
                num_attackers: 9,
                ..PolicyConfig::default()
            })
            .build_for(&system)
            .expect_err("more attackers than reserved");
        assert_eq!(greedy.field, "policy.num_attackers");
        assert!(PoisonRecConfig::builder()
            .policy(PolicyConfig {
                num_attackers: 8,
                ..PolicyConfig::default()
            })
            .build_for(&system)
            .is_ok());
    }
}
