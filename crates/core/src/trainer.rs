//! Algorithm 1: the outer PoisonRec training loop.
//!
//! Each training step samples `M` episodes from the policy, injects
//! every episode's trajectory set into the black-box system to observe
//! its RecNum reward, then runs `K` PPO epochs over random batches of
//! `B` stored examples with Eq. 8-normalized rewards.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recsys::system::BlackBoxSystem;

use crate::action::{ActionSpace, ActionSpaceKind};
use crate::policy::{Episode, PolicyConfig, PolicyNetwork};
use crate::ppo::{normalize_rewards, PpoConfig, PpoUpdater};

/// Full PoisonRec configuration (paper defaults).
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PoisonRecConfig {
    pub policy: PolicyConfig,
    pub ppo: PpoConfig,
    pub action_space: ActionSpaceKind,
    pub seed: u64,
}

impl Default for PoisonRecConfig {
    fn default() -> Self {
        Self {
            policy: PolicyConfig::default(),
            ppo: PpoConfig::default(),
            action_space: ActionSpaceKind::BcbtPopular,
            seed: 1,
        }
    }
}

/// Per-step training telemetry (drives Figure 4).
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct StepStats {
    pub step: usize,
    /// Mean RecNum over the step's sampled episodes.
    pub mean_reward: f32,
    /// Best RecNum in the step.
    pub max_reward: f32,
    /// Mean fraction of clicks on target items (drives Figure 5).
    pub target_click_ratio: f64,
    /// Mean |weight| diagnostic from the PPO epochs.
    pub ppo_signal: f32,
}

/// The attack agent: policy + action space + PPO state + history.
pub struct PoisonRecTrainer {
    cfg: PoisonRecConfig,
    space: ActionSpace,
    policy: PolicyNetwork,
    updater: PpoUpdater,
    rng: StdRng,
    history: Vec<StepStats>,
    best: Option<Episode>,
}

impl PoisonRecTrainer {
    /// Builds the agent against a system, using only the system's
    /// *public* information (item counts and crawled popularity).
    pub fn new(cfg: PoisonRecConfig, system: &BlackBoxSystem) -> Self {
        let info = system.public_info();
        let space = ActionSpace::build(
            cfg.action_space,
            info.num_items,
            info.target_items.len() as u32,
            &info.popularity,
            cfg.seed,
        );
        let policy = PolicyNetwork::new(cfg.policy, &space, cfg.seed);
        let updater = PpoUpdater::new(cfg.ppo, &policy);
        Self {
            cfg,
            space,
            policy,
            updater,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xA11CE),
            history: Vec::new(),
            best: None,
        }
    }

    pub fn config(&self) -> &PoisonRecConfig {
        &self.cfg
    }

    pub fn policy(&self) -> &PolicyNetwork {
        &self.policy
    }

    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    pub fn history(&self) -> &[StepStats] {
        &self.history
    }

    /// The highest-reward episode observed so far.
    pub fn best_episode(&self) -> Option<&Episode> {
        self.best.as_ref()
    }

    /// One Algorithm 1 iteration. Costs `M` system retrains.
    pub fn step(&mut self, system: &BlackBoxSystem) -> StepStats {
        let m = self.cfg.ppo.samples_per_step;
        let mut episodes: Vec<Episode> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut ep = self.policy.sample_episode(&self.space, &mut self.rng);
            ep.reward = system.inject_and_observe(&ep.trajectories) as f32;
            if self.best.as_ref().is_none_or(|b| ep.reward > b.reward) {
                self.best = Some(ep.clone());
            }
            episodes.push(ep);
        }

        let mut signal_sum = 0.0f32;
        for _ in 0..self.cfg.ppo.epochs {
            let mut idx: Vec<usize> = (0..episodes.len()).collect();
            idx.shuffle(&mut self.rng);
            idx.truncate(self.cfg.ppo.batch.min(episodes.len()));
            let batch: Vec<&Episode> = idx.iter().map(|&i| &episodes[i]).collect();
            let rewards: Vec<f32> = batch.iter().map(|e| e.reward).collect();
            let advantages = if self.cfg.ppo.normalize_rewards {
                normalize_rewards(&rewards)
            } else {
                rewards.clone()
            };
            signal_sum += self
                .updater
                .update_batch(&mut self.policy, &batch, &advantages);
        }

        let rewards: Vec<f32> = episodes.iter().map(|e| e.reward).collect();
        let num_items = system.public_info().num_items;
        let stats = StepStats {
            step: self.history.len(),
            mean_reward: tensor::util::mean(&rewards),
            max_reward: rewards.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            target_click_ratio: episodes
                .iter()
                .map(|e| e.target_click_ratio(num_items))
                .sum::<f64>()
                / episodes.len() as f64,
            ppo_signal: signal_sum / self.cfg.ppo.epochs.max(1) as f32,
        };
        self.history.push(stats);
        stats
    }

    /// Runs `steps` iterations; returns the accumulated history.
    pub fn train(&mut self, system: &BlackBoxSystem, steps: usize) -> &[StepStats] {
        for _ in 0..steps {
            self.step(system);
        }
        &self.history
    }

    /// Samples a fresh attack (no injection) from the current policy —
    /// what the attacker deploys after training.
    pub fn sample_attack(&mut self) -> Episode {
        self.policy.sample_episode(&self.space, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::SystemConfig;

    fn tiny_system() -> BlackBoxSystem {
        let histories = (0..40u32)
            .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
            .collect();
        let data = Dataset::from_histories("tiny", histories, 60, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 24,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    fn tiny_cfg(kind: ActionSpaceKind) -> PoisonRecConfig {
        PoisonRecConfig {
            policy: PolicyConfig {
                dim: 8,
                num_attackers: 4,
                trajectory_len: 6,
                init_scale: 0.1,
            },
            ppo: PpoConfig {
                lr: 0.01,
                samples_per_step: 6,
                batch: 6,
                epochs: 2,
                ..PpoConfig::default()
            },
            action_space: kind,
            seed: 5,
        }
    }

    #[test]
    fn trainer_runs_and_records_history() {
        let system = tiny_system();
        let mut trainer = PoisonRecTrainer::new(tiny_cfg(ActionSpaceKind::BcbtPopular), &system);
        let history = trainer.train(&system, 3).to_vec();
        assert_eq!(history.len(), 3);
        assert!(trainer.best_episode().is_some());
        assert!(history.iter().all(|s| s.mean_reward >= 0.0));
        assert!(history
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.target_click_ratio)));
    }

    #[test]
    fn learns_to_attack_itempop() {
        // ItemPop on a tiny catalog: clicking targets repeatedly wins.
        // After a few steps the mean reward must clearly exceed the
        // first step's.
        let system = tiny_system();
        let mut trainer = PoisonRecTrainer::new(tiny_cfg(ActionSpaceKind::BcbtPopular), &system);
        let history = trainer.train(&system, 25).to_vec();
        let early: f32 = history[..5].iter().map(|s| s.mean_reward).sum::<f32>() / 5.0;
        let late: f32 = history[20..].iter().map(|s| s.mean_reward).sum::<f32>() / 5.0;
        assert!(
            late > early + 1.0,
            "no learning: early mean {early}, late mean {late}"
        );
    }

    #[test]
    fn all_action_spaces_run() {
        let system = tiny_system();
        for kind in ActionSpaceKind::ALL {
            let mut trainer = PoisonRecTrainer::new(tiny_cfg(kind), &system);
            let stats = trainer.step(&system);
            assert!(stats.mean_reward.is_finite(), "{kind}");
        }
    }
}
