//! PPO model solving (paper §III-D): clipped surrogate objective
//! (Eq. 7 / Eq. 9 with BCBT) over batches of sampled episodes, with
//! batch reward normalization (Eq. 8).
//!
//! Implementation note: rather than building `exp`/`min`/`clip` nodes,
//! we use the standard identity that the clipped-surrogate gradient for
//! one decision is either `0` (when the ratio is clipped against the
//! advantage sign) or `Â · ratio · ∇ log π(a|s)`. Ratios are computed
//! eagerly from replayed log-probability values, turned into constant
//! per-decision weights, and applied to the log-probability columns.

use tensor::optim::{Adam, Optimizer};
use tensor::util::{mean, std_dev};
use tensor::{GradStore, GraphArena, Matrix};

use crate::policy::{Episode, PolicyNetwork};

/// PPO hyperparameters (paper defaults in parentheses).
#[derive(Copy, Clone, Debug)]
pub struct PpoConfig {
    /// Adam learning rate α (2e-3).
    pub lr: f32,
    /// Clip range ε (0.1).
    pub clip_eps: f32,
    /// Optimization epochs per training step, `K` (3).
    pub epochs: usize,
    /// Batch size `B` (32).
    pub batch: usize,
    /// Episodes sampled per training step, `M` (32).
    pub samples_per_step: usize,
    /// Apply Eq. 8 batch reward normalization (ablatable).
    pub normalize_rewards: bool,
    /// Use the clipped surrogate; `false` degrades to REINFORCE
    /// (ablation).
    pub use_clip: bool,
    /// Global gradient-norm clip (training stability guard).
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            lr: 2e-3,
            clip_eps: 0.1,
            epochs: 3,
            batch: 32,
            samples_per_step: 32,
            normalize_rewards: true,
            use_clip: true,
            max_grad_norm: 5.0,
        }
    }
}

/// Eq. 8: standardize a batch of rewards. A zero-variance batch maps to
/// all-zero advantages (no learning signal, no division blow-up).
pub fn normalize_rewards(rewards: &[f32]) -> Vec<f32> {
    let mu = mean(rewards);
    let sigma = std_dev(rewards);
    if sigma < 1e-6 {
        return vec![0.0; rewards.len()];
    }
    rewards.iter().map(|&r| (r - mu) / sigma).collect()
}

/// Stateful PPO optimizer over a [`PolicyNetwork`].
pub struct PpoUpdater {
    cfg: PpoConfig,
    opt: Adam,
    /// Replay-graph allocations recycled across `update_batch` calls
    /// (scratch only — never checkpointed, never affects results).
    arena: GraphArena,
    /// Gradient buffers recycled across calls (zeroed before each use).
    grads: Option<GradStore>,
}

impl PpoUpdater {
    pub fn new(cfg: PpoConfig, policy: &PolicyNetwork) -> Self {
        let opt = Adam::new(policy.params(), cfg.lr);
        Self {
            cfg,
            opt,
            arena: GraphArena::new(),
            grads: None,
        }
    }

    pub fn config(&self) -> &PpoConfig {
        &self.cfg
    }

    /// The Adam state (moments + step counter), for checkpointing.
    pub fn optimizer(&self) -> &Adam {
        &self.opt
    }

    /// Replaces the Adam state with one restored from a checkpoint.
    /// The caller (the checkpoint decoder) is responsible for having
    /// validated that `opt` matches the policy's parameter arity.
    pub(crate) fn restore_optimizer(&mut self, opt: Adam) {
        self.opt = opt;
    }

    /// One gradient step over a batch of `(episode, advantage)` pairs.
    /// Returns the mean absolute decision weight (a learning-signal
    /// diagnostic: 0 means everything was clipped or advantages were 0).
    pub fn update_batch(
        &mut self,
        policy: &mut PolicyNetwork,
        episodes: &[&Episode],
        advantages: &[f32],
    ) -> f32 {
        assert_eq!(episodes.len(), advantages.len());
        let mut grads = match self.grads.take() {
            Some(mut grads) => {
                grads.zero();
                grads
            }
            None => policy.zero_grads(),
        };
        let mut weight_mass = 0.0f32;
        let mut n_decisions = 0usize;

        for (ep, &adv) in episodes.iter().zip(advantages) {
            if adv == 0.0 {
                continue;
            }
            let total = ep.num_decisions().max(1) as f32;
            let (mut g, groups) = policy.replay_logps_in(ep, &mut self.arena);
            for (var, olds) in &groups {
                let col = g.value(*var).clone(); // K x 1 new logps
                let k = olds.len();
                let mut weights = Vec::with_capacity(k);
                for (r, &old) in olds.iter().enumerate() {
                    let ratio = (col.at(r, 0) - old).exp();
                    let w = if self.cfg.use_clip {
                        let clipped_out = (adv > 0.0 && ratio > 1.0 + self.cfg.clip_eps)
                            || (adv < 0.0 && ratio < 1.0 - self.cfg.clip_eps);
                        if clipped_out {
                            0.0
                        } else {
                            adv * ratio
                        }
                    } else {
                        adv
                    };
                    weight_mass += w.abs();
                    weights.push(w);
                }
                n_decisions += k;
                if weights.iter().all(|&w| w == 0.0) {
                    continue;
                }
                let w_in = g.input(Matrix::from_vec(k, 1, weights));
                let weighted = g.mul(*var, w_in);
                let obj = g.sum_all(weighted);
                // Maximize the surrogate: minimize its negation,
                // averaged over the episode's decisions and the batch.
                let scale = -1.0 / (total * episodes.len() as f32);
                g.backward_weighted(obj, scale, &mut grads);
            }
            g.retire(&mut self.arena);
        }

        grads.clip_global_norm(self.cfg.max_grad_norm);
        self.opt.step(policy.params_mut(), &grads);
        self.grads = Some(grads);
        if n_decisions == 0 {
            0.0
        } else {
            weight_mass / n_decisions as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSpace, ActionSpaceKind};
    use crate::policy::PolicyConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalization_matches_eq8() {
        let r = [1.0, 2.0, 3.0, 4.0];
        let n = normalize_rewards(&r);
        assert!((mean(&n)).abs() < 1e-6);
        assert!((std_dev(&n) - 1.0).abs() < 1e-5);
        // Order preserved.
        assert!(n[0] < n[1] && n[1] < n[2] && n[2] < n[3]);
    }

    #[test]
    fn zero_variance_rewards_give_zero_advantage() {
        assert_eq!(normalize_rewards(&[5.0, 5.0, 5.0]), vec![0.0; 3]);
    }

    fn setup() -> (PolicyNetwork, ActionSpace) {
        let popularity: Vec<u32> = (0..40).map(|i| 80 - i).collect();
        let space = ActionSpace::build(ActionSpaceKind::BcbtPopular, 40, 4, &popularity, 3);
        let cfg = PolicyConfig {
            dim: 8,
            num_attackers: 4,
            trajectory_len: 6,
            init_scale: 0.1,
        };
        let policy = PolicyNetwork::new(cfg, &space, 11);
        (policy, space)
    }

    /// Reward = number of clicks on target items. PPO must shift the
    /// policy toward targets.
    #[test]
    fn ppo_increases_rewarded_behavior() {
        let (mut policy, space) = setup();
        let ppo_cfg = PpoConfig {
            lr: 0.02,
            batch: 8,
            samples_per_step: 8,
            ..PpoConfig::default()
        };
        let mut updater = PpoUpdater::new(ppo_cfg, &policy);
        let mut rng = StdRng::seed_from_u64(4);

        let ratio_before = average_target_ratio(&policy, &space, &mut rng);
        for _ in 0..25 {
            let episodes: Vec<_> = (0..8)
                .map(|_| {
                    let mut ep = policy.sample_episode(&space, &mut rng);
                    ep.reward = ep
                        .trajectories
                        .iter()
                        .flatten()
                        .filter(|&&i| i >= 40)
                        .count() as f32;
                    ep
                })
                .collect();
            let rewards: Vec<f32> = episodes.iter().map(|e| e.reward).collect();
            let advs = normalize_rewards(&rewards);
            let refs: Vec<&Episode> = episodes.iter().collect();
            updater.update_batch(&mut policy, &refs, &advs);
        }
        let ratio_after = average_target_ratio(&policy, &space, &mut rng);
        assert!(
            ratio_after > ratio_before + 0.1,
            "target ratio did not improve: {ratio_before} -> {ratio_after}"
        );
    }

    fn average_target_ratio(policy: &PolicyNetwork, space: &ActionSpace, rng: &mut StdRng) -> f64 {
        let mut total = 0.0;
        for _ in 0..10 {
            let ep = policy.sample_episode(space, rng);
            total += ep.target_click_ratio(40);
        }
        total / 10.0
    }

    #[test]
    fn clipped_update_is_bounded() {
        let (mut policy, space) = setup();
        let mut updater = PpoUpdater::new(
            PpoConfig {
                lr: 0.01,
                ..PpoConfig::default()
            },
            &policy,
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut ep = policy.sample_episode(&space, &mut rng);
        ep.reward = 100.0;
        // Repeated updates on the same episode with a huge advantage:
        // the clip must keep ratios (and thus parameters) finite.
        for _ in 0..20 {
            let signal = updater.update_batch(&mut policy, &[&ep], &[3.0]);
            assert!(signal.is_finite());
        }
        assert!(!policy.params().has_non_finite(), "parameters blew up");
    }
}
