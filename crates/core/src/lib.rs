//! # poisonrec
//!
//! The paper's primary contribution: an adaptive, reinforcement-
//! learning data-poisoning framework for black-box recommender systems
//! (Song et al., ICDE 2020).
//!
//! * [`action`] — the four action-space designs (§III-C/E): Plain,
//!   BPlain, BCBT-Popular, BCBT-Random, including the Biased Complete
//!   Binary Tree construction and Algorithm 2 sampling.
//! * [`policy`] — the LSTM + DNN policy network π_θ (Eq. 5–6) with
//!   batched trajectory sampling and gradient replay.
//! * [`ppo`] — PPO with the clipped surrogate (Eq. 7/9) and batch
//!   reward normalization (Eq. 8).
//! * [`trainer`] — Algorithm 1: sample, inject, observe RecNum, update.
//! * [`checkpoint`] — versioned crash-safe trainer state snapshots;
//!   resumed runs continue bit-identically.
//! * [`zoo`] — the attack-zoo driver: any [`recsys::attack::Attack`]
//!   run with the same budget boundary, sealed checkpoints, and fault
//!   injection, plus [`zoo::PoisonRecAttack`] adapting Algorithm 1
//!   itself onto the trait.
//!
//! ```no_run
//! use poisonrec::{PoisonRecConfig, PoisonRecTrainer};
//! use recsys::rankers::RankerKind;
//! use recsys::system::{BlackBoxSystem, SystemConfig};
//! use recsys::data::{Dataset, LogView};
//!
//! # let histories = (0..200u32).map(|u| (0..8).map(|t| (u + t) % 100).collect()).collect();
//! let data = Dataset::from_histories("demo", histories, 100, 8);
//! let ranker = RankerKind::CoVisitation.build(&LogView::clean(&data), 64);
//! let system = BlackBoxSystem::build(data, ranker, SystemConfig::default());
//!
//! let mut trainer = PoisonRecTrainer::new(PoisonRecConfig::default(), &system);
//! trainer.train(&system, 10);
//! println!("best RecNum: {:?}", trainer.best_episode().map(|e| e.reward));
//! ```

pub mod action;
pub mod checkpoint;
pub mod policy;
pub mod ppo;
pub mod trainer;
pub mod zoo;

pub use action::{ActionSpace, ActionSpaceKind, Choice, ChoiceSet, ItemTree};
pub use checkpoint::CheckpointError;
pub use policy::{Episode, PolicyConfig, PolicyNetwork};
pub use ppo::{normalize_rewards, PpoConfig, PpoUpdater};
pub use trainer::{
    PoisonRecConfig, PoisonRecConfigBuilder, PoisonRecTrainer, StepLogger, StepStats,
};
pub use zoo::{run_attack, zoo_fingerprint, PoisonRecAttack, ZooConfig, ZooEvent, ZooRun};
