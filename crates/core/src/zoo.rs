//! The attack-zoo driver: one loop that runs **any**
//! [`recsys::attack::Attack`] against any [`ObservableSystem`] with
//! the same capability gate, budget boundary, sealed checkpoints,
//! fault injection, and telemetry hooks the original trainer earned in
//! PRs 1–3 — plus the [`PoisonRecAttack`] adapter that puts the RL
//! trainer itself behind the trait.
//!
//! ## Lifecycle
//!
//! ```text
//! capability gate → budget-vs-reserve gate → (resume?) →
//!   step loop (checkpoint_every → seal; fault.kill_if_due) →
//!   poison() → optional final guarded observation
//! ```
//!
//! Every observation any attack spends flows through one
//! [`GuardedSystem`] built here, so budget accounting is enforced at
//! the system boundary — not by trusting the attack — and the run's
//! [`ZooRun::usage`] ledger is authoritative.
//!
//! ## Checkpoints
//!
//! Zoo checkpoints reuse the sealed container of [`crate::checkpoint`]
//! (magic, format version, fingerprint, checksum, atomic write). The
//! fingerprint covers the attack name, the full budget, and the target
//! system's configuration and geometry — resuming a checkpoint against
//! a different cell is refused with a typed error. The body carries
//! the guard's usage ledger, the step history, the attack's own
//! [`Attack::state_bytes`] blob, and the victim's serialized defense
//! state (adaptive defenses calibrate online), so a resumed run
//! continues **bit-identically** (pinned per family by
//! `tests/attack_conformance.rs` and `tests/defense_conformance.rs`).

use std::path::PathBuf;
use std::sync::Arc;

use recsys::attack::{
    Attack, AttackBudget, AttackCaps, AttackError, AttackStepStats, BudgetKind, BudgetViolation,
    Codec, GuardedSystem, Reader, UsageSnapshot, Writer,
};
use recsys::system::{ConfigError, ObservableSystem};
use recsys::Trajectory;
use runtime::FaultPlan;

use crate::checkpoint::{self, TrainerState};
use crate::trainer::{PoisonRecConfig, PoisonRecTrainer};

/// How the zoo driver runs one attack × system × budget cell.
#[derive(Clone)]
pub struct ZooConfig {
    /// The declared spend limits, enforced by the guard.
    pub budget: AttackBudget,
    /// Scoring threads handed to [`Attack::step`].
    pub threads: usize,
    /// Step cap; `None` runs the attack's own [`Attack::planned_steps`].
    pub steps: Option<usize>,
    /// Seal a checkpoint every this many steps (0 = never).
    pub checkpoint_every: usize,
    /// Where checkpoints are written (and resumed from).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from `checkpoint_path` if the file exists.
    pub resume: bool,
    /// Scripted crash injection (`kill_if_due` after each step).
    pub fault: Option<Arc<FaultPlan>>,
    /// Spend one extra guarded observation evaluating the final poison.
    pub evaluate_final: bool,
}

impl ZooConfig {
    /// A plain run: no checkpoints, no faults, final poison evaluated.
    pub fn new(budget: AttackBudget) -> Self {
        Self {
            budget,
            threads: 1,
            steps: None,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume: false,
            fault: None,
            evaluate_final: true,
        }
    }
}

/// Progress callbacks out of [`run_attack`] (telemetry stays a
/// write-only side channel: observers cannot perturb the run).
pub enum ZooEvent<'a> {
    /// An [`Attack::step`] completed.
    Step(&'a AttackStepStats),
    /// A sealed checkpoint of `bytes` bytes was written after `step`.
    Checkpoint { step: usize, bytes: u64 },
    /// The run restarted from a checkpoint at `step`.
    Resumed { step: usize },
}

/// The outcome of one zoo cell.
#[derive(Clone, Debug)]
pub struct ZooRun {
    /// [`Attack::name`] of the family that ran.
    pub attack: String,
    /// Per-step stats in step order (prefix restored on resume).
    pub history: Vec<AttackStepStats>,
    /// The crafted `N × T` poison.
    pub poison: Vec<Trajectory>,
    /// RecNum of the final poison, if `evaluate_final` was set.
    pub final_rec_num: Option<u32>,
    /// What the attack actually spent, counted at the system boundary.
    pub usage: UsageSnapshot,
}

/// Fingerprints everything that decides a zoo cell's trajectory: the
/// attack family, the full budget, and the target system's
/// configuration and public geometry. Deliberately excludes `threads`
/// and the step cap — results are invariant to both (the cap only
/// truncates).
pub fn zoo_fingerprint(
    attack_name: &str,
    budget: &AttackBudget,
    system: &dyn ObservableSystem,
) -> u64 {
    let mut w = Writer::new();
    w.put_str("zoo-cell");
    w.put_str(attack_name);
    w.put_u64(u64::from(budget.fake_users));
    w.put_u64(budget.clicks_per_user as u64);
    w.put_u64(budget.observations);
    let sys_cfg = system.config();
    w.put_u64(sys_cfg.eval_users as u64);
    w.put_u64(sys_cfg.top_k as u64);
    w.put_u64(sys_cfg.n_candidates as u64);
    w.put_u64(sys_cfg.seed);
    w.put_u64(u64::from(sys_cfg.reserve_attackers));
    let info = system.public_info();
    w.put_u64(u64::from(info.num_items));
    w.put_u64(info.target_items.len() as u64);
    w.put_str(system.ranker_name());
    checkpoint::fnv1a64(&w.into_bytes())
}

/// Serialized per-cell checkpoint body (sealed by [`run_attack`]).
struct ZooState {
    attack: String,
    steps_done: u64,
    /// The *system's* lifetime observation spend at save time (restored
    /// verbatim so the next seed ordinal matches the uninterrupted run).
    system_spent: u64,
    usage: UsageSnapshot,
    history: Vec<AttackStepStats>,
    attack_state: Vec<u8>,
    /// The victim's serialized defense state (empty when undefended):
    /// an adaptive defense calibrates *online*, so resuming without it
    /// would replay the attack against a softer victim than the
    /// interrupted run faced.
    defense_state: Vec<u8>,
}

impl Codec for ZooState {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.attack);
        w.put_u64(self.steps_done);
        w.put_u64(self.system_spent);
        w.put_u64(self.usage.observations);
        w.put_u64(self.usage.feedback_events);
        w.put_u64(self.usage.peak_fake_users);
        w.put_u64(self.usage.peak_clicks_per_user);
        w.put_u64(self.history.len() as u64);
        for stats in &self.history {
            stats.encode(w);
        }
        w.put_u64(self.attack_state.len() as u64);
        for &b in &self.attack_state {
            w.put_u8(b);
        }
        w.put_u64(self.defense_state.len() as u64);
        for &b in &self.defense_state {
            w.put_u8(b);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, recsys::attack::WireError> {
        let attack = r.get_str("attack name")?;
        let steps_done = r.get_u64("steps done")?;
        let system_spent = r.get_u64("system observations")?;
        let usage = UsageSnapshot {
            observations: r.get_u64("usage observations")?,
            feedback_events: r.get_u64("usage feedback events")?,
            peak_fake_users: r.get_u64("usage peak fake users")?,
            peak_clicks_per_user: r.get_u64("usage peak clicks")?,
        };
        let steps = r.get_len(22, "history length")?;
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            history.push(AttackStepStats::decode(r)?);
        }
        let len = r.get_len(1, "attack state length")?;
        let mut attack_state = Vec::with_capacity(len);
        for _ in 0..len {
            attack_state.push(r.get_u8("attack state byte")?);
        }
        let len = r.get_len(1, "defense state length")?;
        let mut defense_state = Vec::with_capacity(len);
        for _ in 0..len {
            defense_state.push(r.get_u8("defense state byte")?);
        }
        Ok(Self {
            attack,
            steps_done,
            system_spent,
            usage,
            history,
            attack_state,
            defense_state,
        })
    }
}

fn state_err(context: &str, err: impl std::fmt::Display) -> AttackError {
    AttackError::State(format!("{context}: {err}"))
}

fn save_zoo_checkpoint(
    attack: &dyn Attack,
    guard: &GuardedSystem<'_>,
    history: &[AttackStepStats],
    fingerprint: u64,
    path: &std::path::Path,
) -> Result<u64, AttackError> {
    let state = ZooState {
        attack: attack.name().to_string(),
        steps_done: attack.steps_done() as u64,
        system_spent: guard.observations_spent(),
        usage: guard.usage(),
        history: history.to_vec(),
        attack_state: attack.state_bytes(),
        defense_state: guard.defense_state(),
    };
    let sealed = checkpoint::seal(fingerprint, &state.to_bytes());
    checkpoint::atomic_write(path, &sealed).map_err(|e| state_err("checkpoint write failed", e))?;
    Ok(sealed.len() as u64)
}

/// Runs one attack to completion under the zoo lifecycle (module
/// docs). All recoverable failures — capability mismatches, budget
/// overspends, corrupt checkpoints — come back as typed
/// [`AttackError`]s.
pub fn run_attack(
    attack: &mut dyn Attack,
    system: &dyn ObservableSystem,
    cfg: &ZooConfig,
    on_event: &mut dyn FnMut(ZooEvent<'_>),
) -> Result<ZooRun, AttackError> {
    // Capability gate: refuse impossible cells before spending anything.
    let caps = attack.caps();
    if caps.gradient_required && !system.caps().gradients {
        return Err(AttackError::Capability {
            attack: attack.name().to_string(),
            needs: "model gradients, which this black-box system does not expose",
        });
    }
    if cfg.threads == 0 {
        return Err(AttackError::Config(ConfigError {
            field: "threads",
            message: "at least one scoring thread is required".into(),
        }));
    }
    // Budget sanity against the victim: a budget the system's reserved
    // attacker rows cannot host would otherwise panic inside the
    // ranker's embedding tables mid-run.
    let reserve = system.config().reserve_attackers;
    if cfg.budget.fake_users > reserve {
        return Err(AttackError::Config(ConfigError {
            field: "fake_users",
            message: format!(
                "budget allows {} fake accounts but the system reserves only {reserve}",
                cfg.budget.fake_users
            ),
        }));
    }

    let fingerprint = zoo_fingerprint(attack.name(), &cfg.budget, system);
    let guard = GuardedSystem::new(system, cfg.budget);
    let mut history: Vec<AttackStepStats> = Vec::new();

    if cfg.resume {
        let path = cfg.checkpoint_path.as_ref().ok_or_else(|| {
            AttackError::State("resume requested without a checkpoint path".into())
        })?;
        if path.exists() {
            let bytes = std::fs::read(path).map_err(|e| state_err("checkpoint read failed", e))?;
            let (saved, body) =
                checkpoint::unseal(&bytes).map_err(|e| state_err("checkpoint rejected", e))?;
            if saved != fingerprint {
                return Err(AttackError::State(format!(
                    "checkpoint fingerprint {saved:#018x} does not match this cell \
                     ({fingerprint:#018x}); it was written for a different attack, budget, \
                     or system"
                )));
            }
            let state =
                ZooState::from_bytes(body).map_err(|e| state_err("checkpoint rejected", e))?;
            if state.attack != attack.name() {
                return Err(AttackError::State(format!(
                    "checkpoint belongs to attack {:?}, not {:?}",
                    state.attack,
                    attack.name()
                )));
            }
            system.restore_observations_spent(state.system_spent)?;
            system.restore_defense_state(&state.defense_state)?;
            guard.restore_usage(state.usage);
            attack.restore_state(&state.attack_state, &guard)?;
            if attack.steps_done() as u64 != state.steps_done {
                return Err(AttackError::State(format!(
                    "attack restored to step {} but the checkpoint was sealed at step {}",
                    attack.steps_done(),
                    state.steps_done
                )));
            }
            history = state.history;
            on_event(ZooEvent::Resumed {
                step: attack.steps_done(),
            });
        }
    }

    // Live spend attribution: every step's guard-ledger delta is
    // counted against this attack's label, so `/metrics` (and obs_top)
    // can show which zoo cell is spending the budget *while it runs*.
    // Pure observation of usage deltas — never touches the guard.
    let spend = telemetry::stream::counter_family("attack_guard_spend", &["attack", "resource"]);
    let attack_label = attack.name().to_string();
    let mut spent = guard.usage();

    let attribute_spend = |spent: &mut UsageSnapshot, now: UsageSnapshot| {
        let obs = now.observations.saturating_sub(spent.observations);
        if obs > 0 {
            spend.add(&[attack_label.as_str(), "observations"], obs);
        }
        let events = now.feedback_events.saturating_sub(spent.feedback_events);
        if events > 0 {
            spend.add(&[attack_label.as_str(), "feedback_events"], events);
        }
        *spent = now;
    };

    let total = cfg.steps.unwrap_or_else(|| attack.planned_steps());
    while attack.steps_done() < total {
        let stats = attack.step(&guard, cfg.threads)?;
        attribute_spend(&mut spent, guard.usage());
        history.push(stats);
        on_event(ZooEvent::Step(&stats));
        let done = attack.steps_done();
        if cfg.checkpoint_every > 0 && done.is_multiple_of(cfg.checkpoint_every) {
            if let Some(path) = &cfg.checkpoint_path {
                let bytes = save_zoo_checkpoint(attack, &guard, &history, fingerprint, path)?;
                on_event(ZooEvent::Checkpoint { step: done, bytes });
            }
        }
        if let Some(fault) = &cfg.fault {
            fault.kill_if_due(done as u64);
        }
    }

    let poison = attack.poison()?;
    let final_rec_num = if cfg.evaluate_final {
        let rec_num = guard.try_observe(&poison)?.rec_num;
        attribute_spend(&mut spent, guard.usage());
        Some(rec_num)
    } else {
        None
    };
    Ok(ZooRun {
        attack: attack.name().to_string(),
        history,
        poison,
        final_rec_num,
        usage: guard.usage(),
    })
}

/// The paper's own attack behind the zoo trait: Algorithm 1 as an
/// [`Attack`], with the policy's `N`/`T` taken from the cell's
/// [`AttackBudget`] at first step (so one configured adapter serves
/// the whole budget grid) and the trainer built lazily against the
/// guard's public info.
pub struct PoisonRecAttack {
    cfg: PoisonRecConfig,
    steps: usize,
    trainer: Option<PoisonRecTrainer>,
}

impl PoisonRecAttack {
    /// `cfg.policy.num_attackers` / `trajectory_len` are overridden by
    /// the budget when the attack first runs; everything else (action
    /// space, PPO, dim, seed) is taken as given.
    pub fn new(cfg: PoisonRecConfig, steps: usize) -> Self {
        Self {
            cfg,
            steps,
            trainer: None,
        }
    }

    fn trainer_cfg(&self, guard: &GuardedSystem<'_>) -> Result<PoisonRecConfig, AttackError> {
        let budget = guard.budget();
        let mut policy = self.cfg.policy;
        policy.num_attackers = budget.fake_users as usize;
        policy.trajectory_len = budget.clicks_per_user;
        PoisonRecConfig::builder()
            .policy(policy)
            .ppo(self.cfg.ppo)
            .action_space(self.cfg.action_space)
            .seed(self.cfg.seed)
            .threads(self.cfg.threads.max(1))
            .build_for(guard)
            .map_err(AttackError::from)
    }

    fn ensure_trainer(
        &mut self,
        guard: &GuardedSystem<'_>,
    ) -> Result<&mut PoisonRecTrainer, AttackError> {
        if self.trainer.is_none() {
            let cfg = self.trainer_cfg(guard)?;
            self.trainer = Some(PoisonRecTrainer::new(cfg, guard));
        }
        Ok(self.trainer.as_mut().expect("just built"))
    }
}

impl Attack for PoisonRecAttack {
    fn name(&self) -> &'static str {
        "PoisonRec"
    }

    fn caps(&self) -> AttackCaps {
        AttackCaps {
            queries_system: true,
            ..AttackCaps::default()
        }
    }

    fn planned_steps(&self) -> usize {
        self.steps
    }

    fn steps_done(&self) -> usize {
        self.trainer.as_ref().map_or(0, |t| t.history().len())
    }

    fn step(
        &mut self,
        system: &GuardedSystem<'_>,
        threads: usize,
    ) -> Result<AttackStepStats, AttackError> {
        // Pre-check the step's observation cost so an exhausted budget
        // is a typed refusal here, not a panic at the guard's hard
        // boundary once the trainer is mid-step.
        let m = self.cfg.ppo.samples_per_step as u64;
        if system.observations_left() < m {
            return Err(AttackError::Budget(BudgetViolation {
                kind: BudgetKind::Observations,
                requested: system.usage().observations + m,
                declared: system.budget().observations,
            }));
        }
        let trainer = self.ensure_trainer(system)?;
        trainer.set_threads(threads);
        let stats = trainer.step(system);
        let best_reward = trainer.best_episode().map(|e| e.reward);
        Ok(AttackStepStats {
            step: stats.step,
            reward: Some(stats.mean_reward),
            best_reward,
            observations: system.usage().observations,
        })
    }

    fn poison(&self) -> Result<Vec<Trajectory>, AttackError> {
        self.trainer
            .as_ref()
            .and_then(|t| t.best_episode())
            .map(|e| e.trajectories.clone())
            .ok_or_else(|| {
                AttackError::State("PoisonRec has not trained yet; run at least one step".into())
            })
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.trainer {
            None => w.put_u8(0),
            Some(trainer) => {
                w.put_u8(1);
                trainer.export_state().encode(&mut w);
            }
        }
        w.into_bytes()
    }

    fn restore_state(
        &mut self,
        bytes: &[u8],
        system: &GuardedSystem<'_>,
    ) -> Result<(), AttackError> {
        let mut r = Reader::new(bytes);
        match r.get_u8("trainer tag")? {
            0 => {
                self.trainer = None;
            }
            1 => {
                let state = TrainerState::decode(&mut r)?;
                self.trainer = None;
                let trainer = self.ensure_trainer(system)?;
                trainer
                    .restore_state(state, system)
                    .map_err(|e| state_err("trainer state rejected", e))?;
            }
            tag => {
                return Err(AttackError::State(format!(
                    "unknown PoisonRec state tag {tag}"
                )))
            }
        }
        r.expect_eof().map_err(AttackError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionSpaceKind;
    use crate::policy::PolicyConfig;
    use crate::ppo::PpoConfig;
    use recsys::data::Dataset;
    use recsys::rankers::ItemPop;
    use recsys::system::{BlackBoxSystem, SystemConfig};

    fn tiny_system() -> BlackBoxSystem {
        let histories = (0..40u32)
            .map(|u| (0..6).map(|t| (u * 3 + t * 7) % 60).collect())
            .collect();
        let data = Dataset::from_histories("tiny", histories, 60, 8);
        BlackBoxSystem::build(
            data,
            Box::new(ItemPop::new()),
            SystemConfig {
                eval_users: 24,
                reserve_attackers: 8,
                ..SystemConfig::default()
            },
        )
    }

    fn tiny_attack(steps: usize) -> PoisonRecAttack {
        PoisonRecAttack::new(
            PoisonRecConfig {
                policy: PolicyConfig {
                    dim: 8,
                    init_scale: 0.1,
                    ..PolicyConfig::default()
                },
                ppo: PpoConfig {
                    lr: 0.01,
                    samples_per_step: 4,
                    batch: 4,
                    epochs: 2,
                    ..PpoConfig::default()
                },
                action_space: ActionSpaceKind::BcbtPopular,
                seed: 5,
                threads: 1,
            },
            steps,
        )
    }

    fn budget(q: u64) -> AttackBudget {
        AttackBudget {
            fake_users: 4,
            clicks_per_user: 6,
            observations: q,
        }
    }

    #[test]
    fn poisonrec_runs_behind_the_trait() {
        let system = tiny_system();
        let mut attack = tiny_attack(2);
        let run = run_attack(
            &mut attack,
            &system,
            &ZooConfig::new(budget(9)),
            &mut |_| {},
        )
        .expect("runs");
        assert_eq!(run.attack, "PoisonRec");
        assert_eq!(run.history.len(), 2);
        assert_eq!(run.poison.len(), 4);
        assert!(run.poison.iter().all(|t| t.len() == 6));
        // 2 steps x 4 episodes + the final evaluation.
        assert_eq!(run.usage.observations, 9);
        assert_eq!(run.final_rec_num, Some(run.final_rec_num.unwrap()));
        assert!(run.history[0].reward.is_some());
    }

    #[test]
    fn exhausted_observation_budget_is_a_typed_refusal() {
        let system = tiny_system();
        let mut attack = tiny_attack(3);
        // Two full steps fit; the third must be refused, typed.
        let err = run_attack(
            &mut attack,
            &system,
            &ZooConfig {
                evaluate_final: false,
                ..ZooConfig::new(budget(8))
            },
            &mut |_| {},
        )
        .expect_err("third step overspends");
        match err {
            AttackError::Budget(v) => assert_eq!(v.kind, BudgetKind::Observations),
            other => panic!("expected budget refusal, got {other}"),
        }
        assert_eq!(attack.steps_done(), 2, "refusal came before the step ran");
    }

    #[test]
    fn oversized_budget_is_refused_before_any_query() {
        let system = tiny_system(); // reserves 8
        let mut attack = tiny_attack(1);
        let err = run_attack(
            &mut attack,
            &system,
            &ZooConfig::new(AttackBudget {
                fake_users: 9,
                clicks_per_user: 6,
                observations: 100,
            }),
            &mut |_| {},
        )
        .expect_err("budget exceeds reserve");
        match err {
            AttackError::Config(e) => assert_eq!(e.field, "fake_users"),
            other => panic!("expected config refusal, got {other}"),
        }
        assert_eq!(system.observations_spent(), 0);
    }

    struct NeedsGradients;

    impl Attack for NeedsGradients {
        fn name(&self) -> &'static str {
            "GradientProbe"
        }
        fn caps(&self) -> AttackCaps {
            AttackCaps {
                gradient_required: true,
                ..AttackCaps::default()
            }
        }
        fn planned_steps(&self) -> usize {
            1
        }
        fn steps_done(&self) -> usize {
            0
        }
        fn step(
            &mut self,
            _system: &GuardedSystem<'_>,
            _threads: usize,
        ) -> Result<AttackStepStats, AttackError> {
            unreachable!("the capability gate must fire first")
        }
        fn poison(&self) -> Result<Vec<Trajectory>, AttackError> {
            Ok(Vec::new())
        }
        fn state_bytes(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore_state(
            &mut self,
            _bytes: &[u8],
            _system: &GuardedSystem<'_>,
        ) -> Result<(), AttackError> {
            Ok(())
        }
    }

    #[test]
    fn gradient_required_against_black_box_is_a_typed_capability_error() {
        let system = tiny_system();
        let mut attack = NeedsGradients;
        let err = run_attack(
            &mut attack,
            &system,
            &ZooConfig::new(budget(4)),
            &mut |_| {},
        )
        .expect_err("black boxes expose no gradients");
        match err {
            AttackError::Capability { attack, .. } => assert_eq!(attack, "GradientProbe"),
            other => panic!("expected capability refusal, got {other}"),
        }
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        let dir = std::env::temp_dir().join(format!("zoo-resume-{}", std::process::id()));
        let path = dir.join("cell.ckpt");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference.
        let system = tiny_system();
        let reference = run_attack(
            &mut tiny_attack(4),
            &system,
            &ZooConfig::new(budget(17)),
            &mut |_| {},
        )
        .expect("reference run");

        // Partial run: stop after 2 steps, checkpointing each.
        let partial_system = tiny_system();
        let mut events = 0usize;
        run_attack(
            &mut tiny_attack(4),
            &partial_system,
            &ZooConfig {
                steps: Some(2),
                checkpoint_every: 1,
                checkpoint_path: Some(path.clone()),
                evaluate_final: false,
                ..ZooConfig::new(budget(17))
            },
            &mut |e| {
                if matches!(e, ZooEvent::Checkpoint { .. }) {
                    events += 1;
                }
            },
        )
        .expect("partial run");
        assert_eq!(events, 2, "one sealed checkpoint per step");

        // Resume on a fresh system + fresh attack instance.
        let resumed_system = tiny_system();
        let mut resumed_from = None;
        let resumed = run_attack(
            &mut tiny_attack(4),
            &resumed_system,
            &ZooConfig {
                checkpoint_every: 1,
                checkpoint_path: Some(path.clone()),
                resume: true,
                ..ZooConfig::new(budget(17))
            },
            &mut |e| {
                if let ZooEvent::Resumed { step } = e {
                    resumed_from = Some(step);
                }
            },
        )
        .expect("resumed run");
        assert_eq!(resumed_from, Some(2));
        assert_eq!(reference.history, resumed.history);
        assert_eq!(reference.poison, resumed.poison);
        assert_eq!(reference.final_rec_num, resumed.final_rec_num);
        assert_eq!(reference.usage, resumed.usage);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_for_a_different_cell_is_refused() {
        let dir = std::env::temp_dir().join(format!("zoo-mismatch-{}", std::process::id()));
        let path = dir.join("cell.ckpt");
        let _ = std::fs::remove_file(&path);

        let system = tiny_system();
        run_attack(
            &mut tiny_attack(1),
            &system,
            &ZooConfig {
                steps: Some(1),
                checkpoint_every: 1,
                checkpoint_path: Some(path.clone()),
                evaluate_final: false,
                ..ZooConfig::new(budget(17))
            },
            &mut |_| {},
        )
        .expect("seed checkpoint");

        // Same attack, different budget: the fingerprint must differ.
        let fresh = tiny_system();
        let err = run_attack(
            &mut tiny_attack(1),
            &fresh,
            &ZooConfig {
                checkpoint_path: Some(path.clone()),
                resume: true,
                ..ZooConfig::new(budget(18))
            },
            &mut |_| {},
        )
        .expect_err("mismatched cell");
        match err {
            AttackError::State(msg) => assert!(msg.contains("fingerprint"), "{msg}"),
            other => panic!("expected state refusal, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
