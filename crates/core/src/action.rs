//! Action-space designs of the paper (§III-C, §III-E):
//!
//! * **Plain** — sample directly from the flat multinomial over
//!   `I ∪ I_t` (Eq. 6). Simple, slow, and hard to train: the chance of
//!   hitting a target item is `|I_t| / (|I| + |I_t|)`.
//! * **BPlain** — a two-layer tree that first chooses between the
//!   target set `I_t` and the original set `I` (the *priori knowledge*
//!   bias), then samples flatly within the chosen set.
//! * **BCBT** — the paper's Biased Complete Binary Tree: the root
//!   chooses `I_t` vs `I`; below it each set is a complete binary tree
//!   whose leaves are items, sampled root-to-leaf with binary softmax
//!   decisions (Algorithm 2). `BCBT-Popular` orders leaves by item
//!   popularity (Assumption 1); `BCBT-Random` shuffles them (the
//!   ablation control).
//!
//! Every sampled item is described by a list of [`Choice`]s — the
//! decisions taken — so the PPO update (Eq. 9) can recompute their
//! log-probabilities under new parameters.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recsys::data::ItemId;
use tensor::util::{log_softmax, sample_categorical};
use tensor::Matrix;

/// Which rows of the action-embedding table a decision chose among.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChoiceSet {
    /// A binary tree decision between two embedding rows.
    Pair(u32, u32),
    /// A flat softmax over the contiguous rows `start..end`.
    Range(u32, u32),
}

impl ChoiceSet {
    /// Number of options.
    pub fn len(&self) -> usize {
        match self {
            ChoiceSet::Pair(..) => 2,
            ChoiceSet::Range(s, e) => (e - s) as usize,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One recorded decision: where we chose, what we chose, and how likely
/// it was under the parameters that sampled it (for the PPO ratio).
#[derive(Clone, Debug)]
pub struct Choice {
    pub set: ChoiceSet,
    /// Index *within* the choice set.
    pub chosen: u32,
    /// `log π_θ'(a|s)` at sampling time.
    pub old_logp: f32,
}

/// The four designs compared in §IV-B.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ActionSpaceKind {
    Plain,
    BPlain,
    BcbtPopular,
    BcbtRandom,
}

impl ActionSpaceKind {
    pub const ALL: [ActionSpaceKind; 4] = [
        ActionSpaceKind::Plain,
        ActionSpaceKind::BPlain,
        ActionSpaceKind::BcbtPopular,
        ActionSpaceKind::BcbtRandom,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ActionSpaceKind::Plain => "Plain",
            ActionSpaceKind::BPlain => "BPlain",
            ActionSpaceKind::BcbtPopular => "BCBT-Popular",
            ActionSpaceKind::BcbtRandom => "BCBT-Random",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for ActionSpaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A reference inside a binary tree: an internal node (indexing the
/// extra embedding rows) or a leaf (a real item id).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum NodeRef {
    Internal(u32),
    Leaf(ItemId),
}

/// A binary tree over items; internal nodes carry trainable embeddings
/// stored after the item rows of the action-embedding table.
#[derive(Clone, Debug)]
pub struct ItemTree {
    /// `children[i]` are the two children of internal node `i`.
    children: Vec<(NodeRef, NodeRef)>,
    root: NodeRef,
}

impl ItemTree {
    /// Builds a complete binary tree over `leaves` in order: every
    /// level is full except the last, which is left-aligned; adjacent
    /// leaves share the most ancestors.
    pub fn complete(leaves: &[ItemId]) -> Self {
        assert!(!leaves.is_empty(), "tree needs at least one leaf");
        let mut children = Vec::with_capacity(leaves.len().saturating_sub(1));
        let root = build_complete(leaves, &mut children);
        Self { children, root }
    }

    /// Merges two trees under a fresh root (the BCBT bias split).
    /// Internal-node indices of `right` are shifted.
    pub fn merge(left: ItemTree, right: ItemTree) -> Self {
        let shift = left.children.len() as u32;
        let mut children = left.children;
        let remap = |r: NodeRef| match r {
            NodeRef::Internal(i) => NodeRef::Internal(i + shift),
            leaf => leaf,
        };
        children.extend(
            right
                .children
                .into_iter()
                .map(|(a, b)| (remap(a), remap(b))),
        );
        let left_root = left.root;
        let right_root = remap(right.root);
        children.push((left_root, right_root));
        let root = NodeRef::Internal(children.len() as u32 - 1);
        Self { children, root }
    }

    /// Number of internal nodes (= extra embedding rows needed).
    pub fn num_internal(&self) -> usize {
        self.children.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.children.len() + 1
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn go(tree: &ItemTree, r: NodeRef) -> usize {
            match r {
                NodeRef::Leaf(_) => 0,
                NodeRef::Internal(i) => {
                    let (a, b) = tree.children[i as usize];
                    1 + go(tree, a).max(go(tree, b))
                }
            }
        }
        go(self, self.root)
    }

    /// In-order leaf sequence (tests: must equal the input order).
    pub fn leaves_in_order(&self) -> Vec<ItemId> {
        let mut out = Vec::with_capacity(self.num_leaves());
        fn go(tree: &ItemTree, r: NodeRef, out: &mut Vec<ItemId>) {
            match r {
                NodeRef::Leaf(item) => out.push(item),
                NodeRef::Internal(i) => {
                    let (a, b) = tree.children[i as usize];
                    go(tree, a, out);
                    go(tree, b, out);
                }
            }
        }
        go(self, self.root, &mut out);
        out
    }
}

/// Recursive complete-binary-tree construction. Returns the subtree
/// root; internal nodes are appended to `children`.
fn build_complete(leaves: &[ItemId], children: &mut Vec<(NodeRef, NodeRef)>) -> NodeRef {
    let n = leaves.len();
    if n == 1 {
        return NodeRef::Leaf(leaves[0]);
    }
    // Height d = ceil(log2 n); x leaves sit on the deepest level,
    // left-aligned. The left subtree takes min(x, h) deep leaves plus
    // (h - x)/2 shallow ones, where h = 2^(d-1).
    let d = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    let h = 1usize << (d - 1);
    let x = 2 * n - (1usize << d);
    let left_leaves = x.min(h) + h.saturating_sub(x) / 2;
    let left = build_complete(&leaves[..left_leaves], children);
    let right = build_complete(&leaves[left_leaves..], children);
    children.push((left, right));
    NodeRef::Internal(children.len() as u32 - 1)
}

/// A fully-specified action space over a catalog of
/// `num_items + num_targets` items (targets occupy the tail ids).
#[derive(Clone, Debug)]
pub struct ActionSpace {
    kind: ActionSpaceKind,
    num_items: u32,
    num_targets: u32,
    /// BCBT tree (None for Plain/BPlain).
    tree: Option<ItemTree>,
}

impl ActionSpace {
    /// Builds the action space. `popularity` (length ≥ `num_items`)
    /// orders BCBT-Popular leaves; `seed` shuffles BCBT-Random leaves.
    pub fn build(
        kind: ActionSpaceKind,
        num_items: u32,
        num_targets: u32,
        popularity: &[u32],
        seed: u64,
    ) -> Self {
        assert!(num_items > 0 && num_targets > 0);
        let tree = match kind {
            ActionSpaceKind::Plain | ActionSpaceKind::BPlain => None,
            ActionSpaceKind::BcbtPopular | ActionSpaceKind::BcbtRandom => {
                let mut items: Vec<ItemId> = (0..num_items).collect();
                match kind {
                    ActionSpaceKind::BcbtPopular => {
                        assert!(
                            popularity.len() >= num_items as usize,
                            "popularity vector too short for BCBT-Popular"
                        );
                        items.sort_by(|&a, &b| {
                            popularity[b as usize]
                                .cmp(&popularity[a as usize])
                                .then(a.cmp(&b))
                        });
                    }
                    _ => {
                        let mut rng = StdRng::seed_from_u64(seed);
                        items.shuffle(&mut rng);
                    }
                }
                let targets: Vec<ItemId> = (num_items..num_items + num_targets).collect();
                let target_tree = ItemTree::complete(&targets);
                let item_tree = ItemTree::complete(&items);
                Some(ItemTree::merge(target_tree, item_tree))
            }
        };
        Self {
            kind,
            num_items,
            num_targets,
            tree,
        }
    }

    pub fn kind(&self) -> ActionSpaceKind {
        self.kind
    }

    /// Catalog size `|I| + |I_t|`.
    pub fn catalog(&self) -> u32 {
        self.num_items + self.num_targets
    }

    /// Rows required in the action-embedding table: catalog items first
    /// (row = item id), then the space's extra nodes.
    pub fn table_rows(&self) -> usize {
        self.catalog() as usize + self.extra_rows()
    }

    /// Extra (non-item) embedding rows.
    pub fn extra_rows(&self) -> usize {
        match self.kind {
            ActionSpaceKind::Plain => 0,
            // Two set nodes: one for I_t, one for I.
            ActionSpaceKind::BPlain => 2,
            ActionSpaceKind::BcbtPopular | ActionSpaceKind::BcbtRandom => {
                self.tree.as_ref().expect("bcbt has tree").num_internal()
            }
        }
    }

    /// The embedding-table row of a tree node reference.
    fn row_of(&self, r: NodeRef) -> u32 {
        match r {
            NodeRef::Leaf(item) => item,
            NodeRef::Internal(i) => self.catalog() + i,
        }
    }

    /// Samples one item given `d = D(h_t)` (a row of length `|e|`) and
    /// the current action-embedding table. Returns the item and the
    /// decision trail.
    pub fn sample(&self, d: &[f32], emb: &Matrix, rng: &mut StdRng) -> (ItemId, Vec<Choice>) {
        debug_assert_eq!(d.len(), emb.cols());
        let dot = |row: u32| -> f32 {
            emb.row_slice(row as usize)
                .iter()
                .zip(d)
                .map(|(&a, &b)| a * b)
                .sum()
        };
        match self.kind {
            ActionSpaceKind::Plain => {
                let logits: Vec<f32> = (0..self.catalog()).map(dot).collect();
                let (idx, logp) = sample_categorical(&logits, rng);
                let choice = Choice {
                    set: ChoiceSet::Range(0, self.catalog()),
                    chosen: idx as u32,
                    old_logp: logp,
                };
                (idx as ItemId, vec![choice])
            }
            ActionSpaceKind::BPlain => {
                // Decision 1: I_t node (row catalog) vs I node (row catalog+1).
                let t_row = self.catalog();
                let i_row = self.catalog() + 1;
                let set_logits = [dot(t_row), dot(i_row)];
                let (set_idx, set_logp) = sample_categorical(&set_logits, rng);
                let set_choice = Choice {
                    set: ChoiceSet::Pair(t_row, i_row),
                    chosen: set_idx as u32,
                    old_logp: set_logp,
                };
                // Decision 2: flat softmax within the chosen set.
                let (start, end) = if set_idx == 0 {
                    (self.num_items, self.catalog())
                } else {
                    (0, self.num_items)
                };
                let logits: Vec<f32> = (start..end).map(dot).collect();
                let (idx, logp) = sample_categorical(&logits, rng);
                let item_choice = Choice {
                    set: ChoiceSet::Range(start, end),
                    chosen: idx as u32,
                    old_logp: logp,
                };
                (start + idx as u32, vec![set_choice, item_choice])
            }
            ActionSpaceKind::BcbtPopular | ActionSpaceKind::BcbtRandom => {
                // Algorithm 2: walk root → leaf with binary decisions.
                let tree = self.tree.as_ref().expect("bcbt has tree");
                let mut choices = Vec::with_capacity(16);
                let mut node = tree.root;
                loop {
                    match node {
                        NodeRef::Leaf(item) => return (item, choices),
                        NodeRef::Internal(i) => {
                            let (l, r) = tree.children[i as usize];
                            let (lr, rr) = (self.row_of(l), self.row_of(r));
                            let logits = [dot(lr), dot(rr)];
                            let (idx, logp) = sample_categorical(&logits, rng);
                            choices.push(Choice {
                                set: ChoiceSet::Pair(lr, rr),
                                chosen: idx as u32,
                                old_logp: logp,
                            });
                            node = if idx == 0 { l } else { r };
                        }
                    }
                }
            }
        }
    }

    /// Log-probability of a recorded decision trail under the current
    /// embedding table, computed *by value* (no gradients). The PPO
    /// update recomputes the same quantity with gradients.
    pub fn trail_logp(&self, d: &[f32], emb: &Matrix, trail: &[Choice]) -> f32 {
        let dot = |row: u32| -> f32 {
            emb.row_slice(row as usize)
                .iter()
                .zip(d)
                .map(|(&a, &b)| a * b)
                .sum()
        };
        trail
            .iter()
            .map(|c| {
                let logits: Vec<f32> = match c.set {
                    ChoiceSet::Pair(a, b) => vec![dot(a), dot(b)],
                    ChoiceSet::Range(s, e) => (s..e).map(dot).collect(),
                };
                log_softmax(&logits)[c.chosen as usize]
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn complete_tree_shapes() {
        for n in 1..=64usize {
            let leaves: Vec<ItemId> = (0..n as u32).collect();
            let tree = ItemTree::complete(&leaves);
            assert_eq!(tree.num_leaves(), n, "n={n}");
            assert_eq!(tree.leaves_in_order(), leaves, "order broken for n={n}");
            let expect_depth = (n as f64).log2().ceil() as usize;
            assert_eq!(tree.depth(), expect_depth, "depth for n={n}");
        }
    }

    #[test]
    fn merged_tree_keeps_both_sides() {
        let t = ItemTree::complete(&[100, 101]);
        let i = ItemTree::complete(&[0, 1, 2]);
        let m = ItemTree::merge(t, i);
        assert_eq!(m.num_leaves(), 5);
        assert_eq!(m.leaves_in_order(), vec![100, 101, 0, 1, 2]);
    }

    fn toy_space(kind: ActionSpaceKind) -> ActionSpace {
        let popularity: Vec<u32> = (0..20).map(|i| 100 - i).collect();
        ActionSpace::build(kind, 20, 4, &popularity, 7)
    }

    #[test]
    fn sampling_covers_catalog_and_logps_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in ActionSpaceKind::ALL {
            let space = toy_space(kind);
            let emb = Matrix::uniform(space.table_rows(), 8, 0.3, &mut rng);
            let d: Vec<f32> = (0..8).map(|_| rng.gen_range(-0.3..0.3)).collect();
            let mut seen_target = false;
            let mut seen_original = false;
            for _ in 0..300 {
                let (item, trail) = space.sample(&d, &emb, &mut rng);
                assert!(item < 24, "item {item} out of catalog");
                assert!(!trail.is_empty());
                let total: f32 = trail.iter().map(|c| c.old_logp).sum();
                assert!(total <= 0.0 && total.is_finite());
                // trail_logp must agree with the sampling-time logps.
                let recomputed = space.trail_logp(&d, &emb, &trail);
                assert!(
                    (recomputed - total).abs() < 1e-4,
                    "{kind}: {recomputed} vs {total}"
                );
                if item >= 20 {
                    seen_target = true;
                } else {
                    seen_original = true;
                }
            }
            assert!(seen_original, "{kind} never sampled an original item");
            if kind != ActionSpaceKind::Plain {
                // Biased designs hit targets roughly half the time.
                assert!(seen_target, "{kind} never sampled a target");
            }
        }
    }

    #[test]
    fn biased_designs_oversample_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = toy_space(ActionSpaceKind::BcbtPopular);
        // Near-zero embeddings: every decision is a coin flip, so the
        // root bias alone should put ~50% of samples on targets.
        let emb = Matrix::zeros(space.table_rows(), 8);
        let d = vec![0.0; 8];
        let mut target_hits = 0;
        for _ in 0..2000 {
            let (item, _) = space.sample(&d, &emb, &mut rng);
            if item >= 20 {
                target_hits += 1;
            }
        }
        let frac = target_hits as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.06, "target fraction {frac}");
    }

    #[test]
    fn plain_rarely_samples_targets_at_init() {
        let mut rng = StdRng::seed_from_u64(3);
        let space = toy_space(ActionSpaceKind::Plain);
        let emb = Matrix::zeros(space.table_rows(), 8);
        let d = vec![0.0; 8];
        let mut target_hits = 0;
        for _ in 0..2000 {
            let (item, _) = space.sample(&d, &emb, &mut rng);
            if item >= 20 {
                target_hits += 1;
            }
        }
        let frac = target_hits as f64 / 2000.0;
        // Uniform over 24 items: 4/24 ≈ 0.167.
        assert!((frac - 4.0 / 24.0).abs() < 0.05, "target fraction {frac}");
    }

    #[test]
    fn bcbt_depth_is_logarithmic() {
        let popularity: Vec<u32> = (0..5000).map(|i| 5000 - i).collect();
        let space = ActionSpace::build(ActionSpaceKind::BcbtPopular, 5000, 8, &popularity, 7);
        let tree = space.tree.as_ref().expect("tree");
        // ceil(log2 5000) = 13, +3 for the target side, +1 root merge.
        assert!(tree.depth() <= 14, "depth {}", tree.depth());
        assert_eq!(tree.num_leaves(), 5008);
    }

    #[test]
    fn bcbt_popular_orders_leaves_by_popularity() {
        let popularity: Vec<u32> = vec![5, 50, 10, 40, 30];
        let space = ActionSpace::build(ActionSpaceKind::BcbtPopular, 5, 2, &popularity, 7);
        let tree = space.tree.as_ref().expect("tree");
        let leaves = tree.leaves_in_order();
        // Targets first (merged left), then items by descending popularity.
        assert_eq!(leaves, vec![5, 6, 1, 3, 4, 2, 0]);
    }
}
