//! Durable checkpoint/resume for [`crate::PoisonRecTrainer`].
//!
//! PoisonRec's outer loop is expensive by construction — every step
//! retrains the victim recommender `M` times — so paper-scale runs are
//! long-running jobs that must survive crashes. This module gives the
//! trainer a versioned, zero-dependency on-disk format holding *all*
//! state the next step depends on, such that a run killed at any step
//! boundary and resumed from its last checkpoint continues
//! **bit-identically** to the uninterrupted run (proved by
//! `tests/checkpoint_resume.rs` and the fault-injection CI stage).
//!
//! ## Container layout (all integers little-endian)
//!
//! | bytes | field |
//! |------:|-------|
//! | 8     | magic `b"PRECKPT\0"` |
//! | 4     | format version (`u32`, currently 1) |
//! | 8     | config fingerprint (`u64`, FNV-1a over the run config) |
//! | 8     | body length `L` (`u64`) |
//! | `L`   | body ([`TrainerState`] via [`tensor::wire`]) |
//! | 8     | checksum (`u64`, FNV-1a over every preceding byte) |
//!
//! Decoding rejects — with a descriptive [`CheckpointError`], never a
//! panic — wrong magic, versions newer than this build, truncated or
//! oversized containers, checksum mismatches, and bodies whose shapes
//! disagree with the trainer being restored. The fingerprint refuses
//! resumption under a different [`PoisonRecConfig`] or
//! [`recsys::system::SystemConfig`] (the `threads` knob is deliberately
//! excluded: training is thread-count-invariant, so resuming at a
//! different thread count is safe and allowed).
//!
//! ## What is captured
//!
//! Policy [`ParamSet`], Adam first/second moments and step counter, the
//! trainer's RNG state, the per-step [`StepStats`] history (which also
//! encodes the step index), the best episode, and the observation
//! spend that drives the black-box system's seed stream. Reward
//! normalization (Eq. 8) is stateless per batch, so it needs no
//! persisted state beyond the config flag covered by the fingerprint.
//! *Not* captured: the dataset, the fitted ranker, and the telemetry
//! sink — callers rebuild the system deterministically from its config
//! and reattach loggers.
//!
//! ## Atomic writes
//!
//! [`atomic_write`] writes to a `.tmp` sibling, fsyncs, then renames
//! over the destination. A crash mid-write leaves either the previous
//! complete checkpoint or a stray `.tmp` — never a torn file that a
//! resume could half-trust.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use recsys::system::ObservableSystem;
use tensor::optim::Adam;
use tensor::wire::{Codec, Reader, WireError, Writer};
use tensor::ParamSet;

use crate::action::{ActionSpaceKind, Choice, ChoiceSet};
use crate::policy::Episode;
use crate::trainer::{PoisonRecConfig, StepStats};

/// First bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"PRECKPT\0";

/// Current container format version. Bump on any layout change; older
/// readers refuse newer versions instead of misparsing them.
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open/read/write/rename).
    Io(io::Error),
    /// The file is not a checkpoint this build can read: bad magic,
    /// newer version, truncation, checksum mismatch, or a body that
    /// does not decode.
    Format(String),
    /// The file is a valid checkpoint of a *different* run
    /// configuration; resuming it would silently change the science.
    ConfigMismatch { saved: u64, current: u64 },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(err) => write!(f, "checkpoint I/O error: {err}"),
            CheckpointError::Format(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::ConfigMismatch { saved, current } => write!(
                f,
                "checkpoint was written under a different configuration \
                 (saved fingerprint {saved:#018x}, current {current:#018x}); \
                 refusing to resume"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(err: io::Error) -> Self {
        CheckpointError::Io(err)
    }
}

impl From<WireError> for CheckpointError {
    fn from(err: WireError) -> Self {
        CheckpointError::Format(err.to_string())
    }
}

/// 64-bit FNV-1a over `bytes` — the container's fingerprint and
/// checksum hash. Not cryptographic; it guards against corruption and
/// accidental config drift, not adversaries with filesystem access.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps a serialized body in the versioned container: magic, version,
/// fingerprint, length-prefixed body, trailing FNV-1a checksum.
pub fn seal(fingerprint: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 36);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates a sealed container and returns `(fingerprint, body)`.
/// Every malformation maps to a descriptive [`CheckpointError::Format`].
pub fn unseal(bytes: &[u8]) -> Result<(u64, &[u8]), CheckpointError> {
    const HEADER: usize = 8 + 4 + 8 + 8;
    let malformed = |msg: String| Err(CheckpointError::Format(msg));
    if bytes.len() < HEADER + 8 {
        return malformed(format!(
            "file too short to be a checkpoint: {} byte(s), need at least {}",
            bytes.len(),
            HEADER + 8
        ));
    }
    if bytes[..8] != MAGIC {
        return malformed(format!(
            "bad magic {:02x?}; expected {:02x?} — not a PoisonRec checkpoint",
            &bytes[..8],
            MAGIC
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version > FORMAT_VERSION {
        return malformed(format!(
            "format version {version} is newer than this build's {FORMAT_VERSION}; \
             upgrade before resuming this checkpoint"
        ));
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let body_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let expected_total = (HEADER as u64)
        .checked_add(body_len)
        .and_then(|n| n.checked_add(8));
    if expected_total != Some(bytes.len() as u64) {
        return malformed(format!(
            "container length mismatch: header claims a {body_len}-byte body, \
             but the file holds {} byte(s) (truncated or trailing garbage)",
            bytes.len()
        ));
    }
    let body_end = HEADER + body_len as usize;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let computed = fnv1a64(&bytes[..body_end]);
    if stored != computed {
        return malformed(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x} \
             (the file is corrupt)"
        ));
    }
    Ok((fingerprint, &bytes[HEADER..body_end]))
}

/// Fingerprints everything that decides a run's trajectory: the full
/// [`PoisonRecConfig`] (minus `threads` — results are thread-count
/// invariant), the target system's [`recsys::system::SystemConfig`],
/// and the public item/target geometry. Two runs with equal
/// fingerprints and equal step counts produce bit-identical histories.
pub fn config_fingerprint(cfg: &PoisonRecConfig, system: &dyn ObservableSystem) -> u64 {
    let mut w = Writer::new();
    w.put_u64(cfg.policy.dim as u64);
    w.put_u64(cfg.policy.num_attackers as u64);
    w.put_u64(cfg.policy.trajectory_len as u64);
    w.put_f32(cfg.policy.init_scale);
    w.put_f32(cfg.ppo.lr);
    w.put_f32(cfg.ppo.clip_eps);
    w.put_u64(cfg.ppo.epochs as u64);
    w.put_u64(cfg.ppo.batch as u64);
    w.put_u64(cfg.ppo.samples_per_step as u64);
    w.put_u8(cfg.ppo.normalize_rewards as u8);
    w.put_u8(cfg.ppo.use_clip as u8);
    w.put_f32(cfg.ppo.max_grad_norm);
    let kind = ActionSpaceKind::ALL
        .iter()
        .position(|&k| k == cfg.action_space)
        .expect("every kind is in ALL");
    w.put_u8(kind as u8);
    w.put_u64(cfg.seed);

    let sys_cfg = system.config();
    w.put_u64(sys_cfg.eval_users as u64);
    w.put_u64(sys_cfg.top_k as u64);
    w.put_u64(sys_cfg.n_candidates as u64);
    w.put_u64(sys_cfg.seed);
    w.put_u64(u64::from(sys_cfg.reserve_attackers));

    let info = system.public_info();
    w.put_u64(u64::from(info.num_items));
    w.put_u64(info.target_items.len() as u64);
    w.put_str(system.ranker_name());
    fnv1a64(&w.into_bytes())
}

/// Writes `bytes` to `path` atomically: `.tmp` sibling, fsync, rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)
}

/// The complete serializable trainer state. Field-for-field, this is
/// everything [`crate::PoisonRecTrainer`] owns that the next training
/// step reads; see the module docs for the capture contract.
pub struct TrainerState {
    /// The trainer's sampling/shuffling RNG (xoshiro256++ state words).
    pub rng_state: [u64; 4],
    /// Lifetime black-box observation spend; also restored into the
    /// target system's seed stream on resume.
    pub observations: u64,
    /// Policy parameters (embeddings, LSTM, DNN).
    pub params: ParamSet,
    /// Adam moments + step counter.
    pub optimizer: Adam,
    /// Best episode observed so far, if any.
    pub best: Option<Episode>,
    /// Per-step stats; `history.len()` is the next step index.
    pub history: Vec<StepStats>,
}

impl Codec for TrainerState {
    fn encode(&self, w: &mut Writer) {
        for word in self.rng_state {
            w.put_u64(word);
        }
        w.put_u64(self.observations);
        self.params.encode(w);
        self.optimizer.encode(w);
        match &self.best {
            None => w.put_u8(0),
            Some(ep) => {
                w.put_u8(1);
                ep.encode(w);
            }
        }
        w.put_u64(self.history.len() as u64);
        for stats in &self.history {
            stats.encode(w);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64("rng state word")?;
        }
        let observations = r.get_u64("observation count")?;
        let params = ParamSet::decode(r)?;
        let optimizer = Adam::decode(r)?;
        let best = match r.get_u8("best-episode tag")? {
            0 => None,
            1 => Some(Episode::decode(r)?),
            other => {
                return Err(WireError::new(
                    0,
                    format!("best-episode tag must be 0 or 1, got {other}"),
                ))
            }
        };
        // Each StepStats entry is 60 bytes.
        let n = r.get_len(60, "history length")?;
        let history = (0..n)
            .map(|_| StepStats::decode(r))
            .collect::<Result<Vec<_>, _>>()?;
        for (i, stats) in history.iter().enumerate() {
            if stats.step != i {
                return Err(WireError::new(
                    0,
                    format!("history entry {i} claims step {}", stats.step),
                ));
            }
        }
        Ok(Self {
            rng_state,
            observations,
            params,
            optimizer,
            best,
            history,
        })
    }
}

impl Codec for StepStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.step as u64);
        w.put_f32(self.mean_reward);
        w.put_f32(self.max_reward);
        w.put_f64(self.target_click_ratio);
        w.put_f32(self.ppo_signal);
        w.put_f64(self.sample_secs);
        w.put_f64(self.score_secs);
        w.put_f64(self.update_secs);
        w.put_u64(self.observations);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        Ok(Self {
            step: r.get_u64("step index")? as usize,
            mean_reward: r.get_f32("mean reward")?,
            max_reward: r.get_f32("max reward")?,
            target_click_ratio: r.get_f64("target click ratio")?,
            ppo_signal: r.get_f32("ppo signal")?,
            sample_secs: r.get_f64("sample secs")?,
            score_secs: r.get_f64("score secs")?,
            update_secs: r.get_f64("update secs")?,
            observations: r.get_u64("step observations")?,
        })
    }
}

impl Codec for Episode {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.trajectories.len() as u64);
        for trajectory in &self.trajectories {
            w.put_u64(trajectory.len() as u64);
            for &item in trajectory {
                w.put_u32(item);
            }
        }
        w.put_u64(self.trails.len() as u64);
        for trail in &self.trails {
            w.put_u64(trail.len() as u64);
            for step in trail {
                w.put_u64(step.len() as u64);
                for choice in step {
                    choice.encode(w);
                }
            }
        }
        w.put_f32(self.reward);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let n = r.get_len(8, "trajectory count")?;
        let mut trajectories = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.get_len(4, "trajectory length")?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(r.get_u32("trajectory item")?);
            }
            trajectories.push(items);
        }
        let n = r.get_len(8, "trail count")?;
        let mut trails = Vec::with_capacity(n);
        for _ in 0..n {
            let steps = r.get_len(8, "trail step count")?;
            let mut trail = Vec::with_capacity(steps);
            for _ in 0..steps {
                // Each Choice is 17 bytes: tag + 3×u32 + f32.
                let choices = r.get_len(17, "choice count")?;
                let mut step = Vec::with_capacity(choices);
                for _ in 0..choices {
                    step.push(Choice::decode(r)?);
                }
                trail.push(step);
            }
            trails.push(trail);
        }
        let reward = r.get_f32("episode reward")?;
        Ok(Self {
            trajectories,
            trails,
            reward,
        })
    }
}

impl Codec for Choice {
    fn encode(&self, w: &mut Writer) {
        let (tag, a, b) = match self.set {
            ChoiceSet::Pair(l, right) => (0u8, l, right),
            ChoiceSet::Range(s, e) => (1u8, s, e),
        };
        w.put_u8(tag);
        w.put_u32(a);
        w.put_u32(b);
        w.put_u32(self.chosen);
        w.put_f32(self.old_logp);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let tag = r.get_u8("choice-set tag")?;
        let a = r.get_u32("choice-set bound")?;
        let b = r.get_u32("choice-set bound")?;
        let set = match tag {
            0 => ChoiceSet::Pair(a, b),
            1 => ChoiceSet::Range(a, b),
            other => {
                return Err(WireError::new(
                    0,
                    format!("choice-set tag must be 0 (pair) or 1 (range), got {other}"),
                ))
            }
        };
        Ok(Self {
            set,
            chosen: r.get_u32("chosen index")?,
            old_logp: r.get_f32("old logp")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let body = vec![1u8, 2, 3, 4, 5];
        let sealed = seal(0xFEED_FACE, &body);
        let (fp, back) = unseal(&sealed).expect("round-trips");
        assert_eq!(fp, 0xFEED_FACE);
        assert_eq!(back, &body[..]);
    }

    #[test]
    fn unseal_rejects_every_malformation_descriptively() {
        let sealed = seal(7, b"payload");

        let err = unseal(&sealed[..10]).expect_err("short file");
        assert!(err.to_string().contains("too short"), "{err}");

        let mut wrong_magic = sealed.clone();
        wrong_magic[0] ^= 0xFF;
        let err = unseal(&wrong_magic).expect_err("bad magic");
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut future = sealed.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = unseal(&future).expect_err("future version");
        assert!(err.to_string().contains("newer than"), "{err}");

        let err = unseal(&sealed[..sealed.len() - 1]).expect_err("truncated");
        assert!(err.to_string().contains("length mismatch"), "{err}");

        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        let err = unseal(&flipped).expect_err("bad checksum");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        let mut corrupt_body = sealed.clone();
        corrupt_body[30] ^= 0x40;
        let err = unseal(&corrupt_body).expect_err("corrupt body");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("ckpt-atomic-{}", std::process::id()));
        let path = dir.join("state.ckpt");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("overwrite");
        assert_eq!(fs::read(&path).expect("read"), b"second");
        let tmp_siblings: Vec<_> = fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(tmp_siblings.is_empty(), "stray tmp files: {tmp_siblings:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn choice_and_episode_round_trip() {
        let ep = Episode {
            trajectories: vec![vec![1, 2, 3], vec![9, 8]],
            trails: vec![vec![vec![
                Choice {
                    set: ChoiceSet::Pair(4, 5),
                    chosen: 1,
                    old_logp: -0.7,
                },
                Choice {
                    set: ChoiceSet::Range(0, 10),
                    chosen: 3,
                    old_logp: -2.25,
                },
            ]]],
            reward: 42.5,
        };
        let back = Episode::from_bytes(&ep.to_bytes()).expect("decodes");
        assert_eq!(back.trajectories, ep.trajectories);
        assert_eq!(back.reward, ep.reward);
        assert_eq!(back.trails.len(), 1);
        assert_eq!(back.trails[0][0].len(), 2);
        assert_eq!(back.trails[0][0][1].set, ChoiceSet::Range(0, 10));
        assert_eq!(back.trails[0][0][0].old_logp.to_bits(), (-0.7f32).to_bits());
    }
}
