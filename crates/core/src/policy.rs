//! The PoisonRec policy network π_θ (paper §III-C):
//!
//! * an **LSTM** embeds the variable-length state
//!   `s_t = {u, a_0, …, a_{t-1}}` into `h_t` (Eq. 5);
//! * a 2-layer ReLU **DNN** maps `h_t` to `D(h_t)`;
//! * the next action is sampled from the action space using inner
//!   products between `D(h_t)` and candidate embeddings (Eq. 6 /
//!   Algorithm 2).
//!
//! All `N` attackers share the network; sampling batches them through
//! the LSTM. Trajectory sampling is gradient-free (values only); the
//! PPO update replays stored trajectories through a fresh graph to get
//! gradients of every decision's log-probability.

use rand::rngs::StdRng;
use rand::SeedableRng;
use recsys::data::Trajectory;
use tensor::nn::{Activation, LstmCell, Mlp};
use tensor::{GradStore, Graph, GraphArena, Matrix, ParamId, ParamSet, Var};

use crate::action::{ActionSpace, Choice, ChoiceSet};

/// Policy hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct PolicyConfig {
    /// Embedding / hidden width `|e|` (paper: 64).
    pub dim: usize,
    /// Number of attackers `N` (paper: 20).
    pub num_attackers: usize,
    /// Trajectory length `T` (paper: 20).
    pub trajectory_len: usize,
    pub init_scale: f32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            num_attackers: 20,
            trajectory_len: 20,
            init_scale: 0.1,
        }
    }
}

/// One sampled episode: the N trajectories, the decision trails that
/// produced them, and (once observed) the RecNum reward.
#[derive(Clone, Debug)]
pub struct Episode {
    /// `trajectories[n][t]` = item clicked by attacker `n` at step `t`.
    pub trajectories: Vec<Trajectory>,
    /// `trails[n][t]` = decisions behind that click.
    pub trails: Vec<Vec<Vec<Choice>>>,
    /// RecNum after injection (filled by the trainer).
    pub reward: f32,
}

impl Episode {
    /// Total number of elementary decisions.
    pub fn num_decisions(&self) -> usize {
        self.trails.iter().flatten().map(Vec::len).sum()
    }

    /// Fraction of clicks landing on target items.
    pub fn target_click_ratio(&self, num_items: u32) -> f64 {
        let total: usize = self.trajectories.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let on_target: usize = self
            .trajectories
            .iter()
            .flatten()
            .filter(|&&i| i >= num_items)
            .count();
        on_target as f64 / total as f64
    }
}

/// The LSTM + DNN policy network with its embedding tables.
pub struct PolicyNetwork {
    cfg: PolicyConfig,
    params: ParamSet,
    /// One embedding row per attacker slot.
    user_emb: ParamId,
    /// Rows `0..catalog` are item embeddings (LSTM inputs *and* leaf
    /// embeddings); rows past that are the action space's extra nodes.
    action_emb: ParamId,
    lstm: LstmCell,
    dnn: Mlp,
}

impl PolicyNetwork {
    pub fn new(cfg: PolicyConfig, space: &ActionSpace, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let user_emb = params.add(
            "user_emb",
            Matrix::uniform(cfg.num_attackers, cfg.dim, cfg.init_scale, &mut rng),
        );
        let action_emb = params.add(
            "action_emb",
            Matrix::uniform(space.table_rows(), cfg.dim, cfg.init_scale, &mut rng),
        );
        let lstm = LstmCell::new(&mut params, "lstm", cfg.dim, cfg.dim, &mut rng);
        // Two hidden ReLU layers of width |e| (paper §III-C).
        let dnn = Mlp::new(
            &mut params,
            "dnn",
            &[cfg.dim, cfg.dim, cfg.dim],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        Self {
            cfg,
            params,
            user_emb,
            action_emb,
            lstm,
            dnn,
        }
    }

    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// The current action-embedding table (used by analysis tools).
    pub fn action_embeddings(&self) -> &Matrix {
        self.params.get(self.action_emb)
    }

    /// Samples a full episode (no reward yet). Gradient-free.
    pub fn sample_episode(&self, space: &ActionSpace, rng: &mut StdRng) -> Episode {
        let n = self.cfg.num_attackers;
        let t_len = self.cfg.trajectory_len;
        let mut trajectories: Vec<Trajectory> = vec![Vec::with_capacity(t_len); n];
        let mut trails: Vec<Vec<Vec<Choice>>> = vec![Vec::with_capacity(t_len); n];

        let mut g = Graph::new(&self.params);
        let mut state = self.lstm.zero_state(&mut g, n);
        // Step 0 input: the attacker embeddings.
        let user_rows: Vec<u32> = (0..n as u32).collect();
        let mut x = g.gather(self.user_emb, &user_rows);
        let emb = self.params.get(self.action_emb);

        for _ in 0..t_len {
            state = self.lstm.step(&mut g, x, state);
            let d = self.dnn.forward(&mut g, state.h);
            let d_vals = g.value(d).clone();
            let mut step_items: Vec<u32> = Vec::with_capacity(n);
            for a in 0..n {
                let (item, trail) = space.sample(d_vals.row_slice(a), emb, rng);
                trajectories[a].push(item);
                trails[a].push(trail);
                step_items.push(item);
            }
            // Next input: embeddings of the freshly clicked items.
            x = g.gather(self.action_emb, &step_items);
        }
        Episode {
            trajectories,
            trails,
            reward: 0.0,
        }
    }

    /// Reproducible sample for qualitative analysis: same policy state
    /// and seed always yield the same episode.
    pub fn seeded_episode(&self, space: &ActionSpace, seed: u64) -> Episode {
        let mut rng = StdRng::seed_from_u64(seed);
        self.sample_episode(space, &mut rng)
    }

    /// Replays an episode under the *current* parameters, building the
    /// graph nodes for every decision's log-probability.
    ///
    /// Returns the graph plus groups of `(logp_column, old_logps)`:
    /// each group's node is a `K x 1` column of new log-probabilities
    /// whose rows align with the sampling-time `old_logps`. Grouping
    /// keeps the tape small — the PPO update weights whole columns.
    pub fn replay_logps<'p>(&'p self, episode: &Episode) -> (Graph<'p>, Vec<(Var, Vec<f32>)>) {
        self.replay_logps_in(episode, &mut GraphArena::new())
    }

    /// Like [`PolicyNetwork::replay_logps`] but draws the graph's
    /// allocations from `arena` (retire the graph back into it after
    /// the backward sweeps so the next replay reuses the buffers).
    pub fn replay_logps_in<'p>(
        &'p self,
        episode: &Episode,
        arena: &mut GraphArena,
    ) -> (Graph<'p>, Vec<(Var, Vec<f32>)>) {
        let n = self.cfg.num_attackers.min(episode.trajectories.len());
        let t_len = self.cfg.trajectory_len;
        let mut g = Graph::new_in(&self.params, arena);
        let mut state = self.lstm.zero_state(&mut g, n);
        let user_rows: Vec<u32> = (0..n as u32).collect();
        let mut x = g.gather(self.user_emb, &user_rows);

        // Forward the LSTM over the stored trajectories, collecting the
        // per-step D(h_t) matrices.
        let mut d_steps: Vec<Var> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            state = self.lstm.step(&mut g, x, state);
            let d = self.dnn.forward(&mut g, state.h);
            d_steps.push(d);
            let step_items: Vec<u32> = (0..n).map(|a| episode.trajectories[a][t]).collect();
            x = g.gather(self.action_emb, &step_items);
        }

        // Stack the per-step D(h_t) matrices into one (T·N x e) block so
        // decisions from every step batch together; the decision of
        // attacker `a` at step `t` reads row `t*n + a`.
        let mut d_all = d_steps[0];
        for &d in &d_steps[1..] {
            d_all = g.concat_rows(d_all, d);
        }

        // All binary (tree) decisions form one pipeline; flat-softmax
        // decisions form one pipeline per distinct range. The softmax
        // over `|I ∪ I_t|` rows is what makes Plain slow — by design
        // (paper §III-F).
        let mut pair_rows: Vec<u32> = Vec::new();
        let mut left_rows: Vec<u32> = Vec::new();
        let mut right_rows: Vec<u32> = Vec::new();
        let mut pair_chosen: Vec<u32> = Vec::new();
        let mut pair_old: Vec<f32> = Vec::new();
        // (start, end) -> (d rows, chosen, old_logps)
        type RangeGroup = (Vec<u32>, Vec<u32>, Vec<f32>);
        let mut ranges: std::collections::BTreeMap<(u32, u32), RangeGroup> =
            std::collections::BTreeMap::new();
        for t in 0..t_len {
            for a in 0..n {
                let d_row = (t * n + a) as u32;
                for c in &episode.trails[a][t] {
                    match c.set {
                        ChoiceSet::Pair(l, r) => {
                            pair_rows.push(d_row);
                            left_rows.push(l);
                            right_rows.push(r);
                            pair_chosen.push(c.chosen);
                            pair_old.push(c.old_logp);
                        }
                        ChoiceSet::Range(s, e) => {
                            let entry = ranges.entry((s, e)).or_default();
                            entry.0.push(d_row);
                            entry.1.push(c.chosen);
                            entry.2.push(c.old_logp);
                        }
                    }
                }
            }
        }

        let mut groups: Vec<(Var, Vec<f32>)> = Vec::new();
        if !pair_rows.is_empty() {
            let dk = g.gather_var(d_all, &pair_rows); // (K x e)
            let el = g.gather(self.action_emb, &left_rows);
            let er = g.gather(self.action_emb, &right_rows);
            let pl = g.mul(dk, el);
            let pr = g.mul(dk, er);
            let ones = g.input(Matrix::full(self.cfg.dim, 1, 1.0));
            let ll = g.matmul(pl, ones); // (K x 1) left logits
            let lr = g.matmul(pr, ones);
            let logits = g.concat_cols(ll, lr); // (K x 2)
            let picked = g.log_softmax_pick(logits, &pair_chosen); // (K x 1)
            groups.push((picked, pair_old));
        }
        for ((start, end), (rows, chosen, olds)) in ranges {
            let table_rows: Vec<u32> = (start..end).collect();
            let dk = g.gather_var(d_all, &rows); // (K x e)
            let table = g.gather(self.action_emb, &table_rows); // (R x e)
            let logits = g.matmul_t(dk, table); // (K x R)
            let picked = g.log_softmax_pick(logits, &chosen);
            groups.push((picked, olds));
        }
        (g, groups)
    }

    /// Fresh gradient buffers for this network.
    pub fn zero_grads(&self) -> GradStore {
        GradStore::zeros_like(&self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionSpaceKind;

    fn setup(kind: ActionSpaceKind) -> (PolicyNetwork, ActionSpace) {
        let popularity: Vec<u32> = (0..30).map(|i| 60 - i).collect();
        let space = ActionSpace::build(kind, 30, 4, &popularity, 3);
        let cfg = PolicyConfig {
            dim: 8,
            num_attackers: 3,
            trajectory_len: 5,
            init_scale: 0.1,
        };
        let policy = PolicyNetwork::new(cfg, &space, 11);
        (policy, space)
    }

    #[test]
    fn episode_shape_is_n_by_t() {
        let (policy, space) = setup(ActionSpaceKind::BcbtPopular);
        let mut rng = StdRng::seed_from_u64(5);
        let ep = policy.sample_episode(&space, &mut rng);
        assert_eq!(ep.trajectories.len(), 3);
        assert!(ep.trajectories.iter().all(|t| t.len() == 5));
        assert!(ep.trajectories.iter().flatten().all(|&i| i < 34));
        assert!(ep.num_decisions() >= 15);
    }

    #[test]
    fn replay_matches_sampling_logps() {
        for kind in ActionSpaceKind::ALL {
            let (policy, space) = setup(kind);
            let mut rng = StdRng::seed_from_u64(9);
            let ep = policy.sample_episode(&space, &mut rng);
            let (g, groups) = policy.replay_logps(&ep);
            let total: usize = groups.iter().map(|(_, o)| o.len()).sum();
            assert_eq!(total, ep.num_decisions(), "{kind}");
            // Parameters unchanged ⇒ replayed logps equal sampled ones.
            for (var, olds) in &groups {
                let col = g.value(*var);
                assert_eq!(col.rows(), olds.len());
                for (r, &o) in olds.iter().enumerate() {
                    let new = col.at(r, 0);
                    assert!(
                        (new - o).abs() < 1e-4,
                        "{kind}: replay {new} vs sampled {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn target_click_ratio_counts_targets() {
        let ep = Episode {
            trajectories: vec![vec![0, 30, 31], vec![1, 2, 3]],
            trails: vec![vec![], vec![]],
            reward: 0.0,
        };
        let ratio = ep.target_click_ratio(30);
        assert!((ratio - 2.0 / 6.0).abs() < 1e-9);
    }
}
