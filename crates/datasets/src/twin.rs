//! Synthetic statistical twins of the paper's four evaluation datasets.
//!
//! The real datasets (Steam, MovieLens-1m, Amazon Phone / Clothing)
//! cannot be downloaded in this offline reproduction, so each is
//! replaced by a generator that matches the distributional properties
//! the attack dynamics depend on (see DESIGN.md §4):
//!
//! * **Scale** — user / item / interaction counts of Table II.
//! * **Popularity skew** — truncated-Zipf item popularity; MovieLens is
//!   generated *dense* (high popularity floor), reproducing the paper's
//!   observation that its high average item frequency (~254) makes
//!   ItemPop unpoisonable within the N·T = 400 click budget.
//! * **Collaborative structure** — users belong to latent taste
//!   clusters that modulate item choice, giving MF/NeuMF/AutoRec/NGCF
//!   real signal.
//! * **Sequential structure** — a Markov term makes consecutive clicks
//!   correlated, giving CoVisitation/GRU4Rec real signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recsys::data::{Dataset, ItemId};

use crate::alias::AliasTable;

/// The four evaluation datasets of the paper (Table II).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    Steam,
    MovieLens,
    Phone,
    Clothing,
}

impl PaperDataset {
    pub const ALL: [PaperDataset; 4] = [
        PaperDataset::Steam,
        PaperDataset::MovieLens,
        PaperDataset::Phone,
        PaperDataset::Clothing,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Steam => "Steam",
            PaperDataset::MovieLens => "MovieLens",
            PaperDataset::Phone => "Phone",
            PaperDataset::Clothing => "Clothing",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|d| d.name().eq_ignore_ascii_case(s))
    }

    /// The generator specification tuned for this dataset.
    pub fn spec(self) -> TwinSpec {
        match self {
            // Steam: mid-size, strong popularity skew, long sessions.
            PaperDataset::Steam => TwinSpec {
                name: "Steam",
                users: 6_506,
                items: 5_134,
                interactions: 180_721,
                zipf_exponent: 0.95,
                popularity_floor: 0.02,
                clusters: 24,
                cluster_boost: 6.0,
                markov_prob: 0.45,
                markov_fanout: 6,
                head_fraction: 0.0,
                head_boost: 1.0,
            },
            // MovieLens-1m: small dense catalog — every movie has many
            // ratings, so no single item is cheap to out-popularity.
            PaperDataset::MovieLens => TwinSpec {
                name: "MovieLens",
                users: 5_999,
                items: 3_706,
                interactions: 943_317,
                zipf_exponent: 0.25,
                popularity_floor: 40.0,
                clusters: 18,
                cluster_boost: 4.0,
                markov_prob: 0.3,
                markov_fanout: 8,
                // ~15% of movies hold >90% of the ratings: the 10th-
                // highest count among 92 random candidates lands in the
                // head (>1000 clicks), far above the N*T = 400 budget —
                // reproducing the paper's RecNum = 0 row for ItemPop.
                head_fraction: 0.15,
                head_boost: 60.0,
            },
            // Amazon Phone: large sparse catalog, short sessions.
            PaperDataset::Phone => TwinSpec {
                name: "Phone",
                users: 27_879,
                items: 10_429,
                interactions: 166_560,
                zipf_exponent: 0.9,
                popularity_floor: 0.05,
                clusters: 32,
                cluster_boost: 6.0,
                markov_prob: 0.4,
                markov_fanout: 6,
                head_fraction: 0.0,
                head_boost: 1.0,
            },
            // Amazon Clothing: the largest and sparsest.
            PaperDataset::Clothing => TwinSpec {
                name: "Clothing",
                users: 39_387,
                items: 23_033,
                interactions: 239_290,
                zipf_exponent: 0.85,
                popularity_floor: 0.05,
                clusters: 40,
                cluster_boost: 6.0,
                markov_prob: 0.4,
                markov_fanout: 6,
                head_fraction: 0.0,
                head_boost: 1.0,
            },
        }
    }

    /// Generates the twin at full Table II scale.
    pub fn generate(self, seed: u64) -> Dataset {
        self.spec().generate(seed)
    }

    /// Generates a proportionally shrunk twin (`0 < scale <= 1`);
    /// user, item, and interaction counts all scale, so density and
    /// popularity shape are preserved.
    pub fn generate_scaled(self, scale: f64, seed: u64) -> Dataset {
        self.spec().scaled(scale).generate(seed)
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generator parameters for one dataset twin.
#[derive(Clone, Debug)]
pub struct TwinSpec {
    pub name: &'static str,
    pub users: usize,
    pub items: usize,
    pub interactions: usize,
    /// Zipf exponent of the popularity curve (`w_r ∝ r^-s`).
    pub zipf_exponent: f64,
    /// Additive popularity floor relative to the max-rank weight; high
    /// values flatten the curve (dense datasets like MovieLens).
    pub popularity_floor: f64,
    /// Latent user taste clusters.
    pub clusters: usize,
    /// Multiplier applied to in-cluster item weights.
    pub cluster_boost: f64,
    /// Probability that a click continues a Markov chain from the
    /// previous item instead of a fresh popularity draw.
    pub markov_prob: f64,
    /// Successor candidates per item in the Markov chain.
    pub markov_fanout: usize,
    /// Fraction of top-ranked items forming a boosted "head" segment.
    pub head_fraction: f64,
    /// Weight multiplier for head items (1.0 = no head segment).
    pub head_boost: f64,
}

/// Number of target items (`|I_t|`), fixed to 8 as in the paper.
pub const NUM_TARGETS: u32 = 8;

impl TwinSpec {
    /// Proportionally shrinks the spec.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        self.users = ((self.users as f64 * scale) as usize).max(50);
        self.items = ((self.items as f64 * scale) as usize).max(120);
        self.interactions = ((self.interactions as f64 * scale) as usize).max(self.users * 4);
        self
    }

    /// Expected clicks per user.
    pub fn mean_session(&self) -> f64 {
        self.interactions as f64 / self.users as f64
    }

    /// Generates the dataset. Deterministic in `(spec, seed)`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.items;

        // Popularity weights over popularity rank r (item id == rank:
        // id 0 is the most popular; the BCBT sorts by popularity anyway).
        // Zipf body + additive floor, with an optional boosted "head"
        // segment that concentrates mass in the top items (MovieLens).
        let head_items = ((n as f64) * self.head_fraction).round() as usize;
        let weights: Vec<f64> = (0..n)
            .map(|r| {
                let z = 1.0 / ((r + 1) as f64).powf(self.zipf_exponent);
                let base = z + self.popularity_floor / n as f64;
                if r < head_items {
                    base * self.head_boost
                } else {
                    base
                }
            })
            .collect();

        // Cluster assignment: interleave so every cluster spans the
        // whole popularity range.
        let item_cluster: Vec<usize> = (0..n).map(|i| i % self.clusters).collect();

        // Per-cluster alias tables with boosted in-cluster weights.
        let tables: Vec<AliasTable> = (0..self.clusters)
            .map(|c| {
                let w: Vec<f64> = weights
                    .iter()
                    .zip(&item_cluster)
                    .map(|(&w, &ic)| if ic == c { w * self.cluster_boost } else { w })
                    .collect();
                AliasTable::new(&w)
            })
            .collect();

        // Markov successors: each item links to a few items of similar
        // popularity rank in the same cluster (Assumption 1 of the
        // paper: close popularity ⇒ similar behavior).
        let successors: Vec<Vec<ItemId>> = (0..n)
            .map(|i| {
                let mut succ = Vec::with_capacity(self.markov_fanout);
                for k in 1..=self.markov_fanout {
                    // Jump within a window of similar rank.
                    let delta = (k * self.clusters) as isize * if k % 2 == 0 { 1 } else { -1 };
                    let j = (i as isize + delta).rem_euclid(n as isize) as usize;
                    succ.push(j as ItemId);
                }
                succ
            })
            .collect();

        // Session lengths: geometric-ish around the mean, floor 3
        // (the paper filters users with < 3 behaviors).
        let mean_len = self.mean_session();
        let mut histories = Vec::with_capacity(self.users);
        for u in 0..self.users {
            let cluster = u % self.clusters;
            let len = sample_session_len(mean_len, &mut rng);
            let mut h: Vec<ItemId> = Vec::with_capacity(len);
            let mut prev: Option<ItemId> = None;
            for _ in 0..len {
                let item = match prev {
                    Some(p) if rng.gen_bool(self.markov_prob) => {
                        let succ = &successors[p as usize];
                        succ[rng.gen_range(0..succ.len())]
                    }
                    _ => tables[cluster].sample(&mut rng) as ItemId,
                };
                h.push(item);
                prev = Some(item);
            }
            histories.push(h);
        }

        Dataset::from_histories(self.name, histories, n as u32, NUM_TARGETS)
    }
}

/// Session length ≈ 3 + Exp(mean - 3), clamped to a sane tail.
fn sample_session_len(mean: f64, rng: &mut StdRng) -> usize {
    let extra_mean = (mean - 3.0).max(0.5);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let extra = -extra_mean * u.ln();
    (3.0 + extra).round().min(mean * 12.0).max(3.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_twin_matches_table2_shape() {
        // Scale 0.1 keeps the test fast while checking proportions.
        let d = PaperDataset::Steam.generate_scaled(0.1, 7);
        let spec = PaperDataset::Steam.spec().scaled(0.1);
        let users = d.num_users() as f64;
        assert!(
            (users - spec.users as f64).abs() / (spec.users as f64) < 0.05,
            "user count {users} vs spec {}",
            spec.users
        );
        let inter = d.num_interactions() as f64 + 2.0 * users; // add back the two held-out events per user
        let expect = spec.interactions as f64;
        assert!(
            (inter - expect).abs() / expect < 0.2,
            "interactions {inter} vs spec {expect}"
        );
        assert_eq!(d.num_targets(), NUM_TARGETS);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Phone.generate_scaled(0.05, 3);
        let b = PaperDataset::Phone.generate_scaled(0.05, 3);
        assert_eq!(a.num_users(), b.num_users());
        assert_eq!(a.sequence(5), b.sequence(5));
        let c = PaperDataset::Phone.generate_scaled(0.05, 4);
        assert_ne!(a.sequence(5), c.sequence(5));
    }

    #[test]
    fn popularity_is_skewed_except_movielens() {
        let steam = PaperDataset::Steam.generate_scaled(0.1, 7);
        let pop = steam.popularity();
        let ranked = steam.items_by_popularity();
        let top = pop[ranked[0] as usize] as f64;
        let median = pop[ranked[ranked.len() / 2] as usize] as f64;
        assert!(
            top > 10.0 * median.max(1.0),
            "Steam skew too flat: top {top} median {median}"
        );
    }

    #[test]
    fn movielens_is_dense() {
        let ml = PaperDataset::MovieLens.generate_scaled(0.1, 7);
        let pop = ml.popularity();
        let n = ml.num_items() as usize;
        let mean = pop[..n].iter().map(|&c| c as f64).sum::<f64>() / n as f64;
        // Average item frequency should be far above the per-target
        // attack budget at the same scale.
        assert!(mean > 25.0, "mean item frequency {mean}");
    }

    #[test]
    fn sequences_have_markov_structure() {
        let d = PaperDataset::Steam.generate_scaled(0.1, 7);
        // Count how often consecutive clicks are "related" (within the
        // Markov jump distance) vs a shuffled control.
        let spec = PaperDataset::Steam.spec().scaled(0.1);
        let window = (spec.markov_fanout * spec.clusters) as i64;
        let mut close_pairs = 0usize;
        let mut total = 0usize;
        for u in 0..d.num_users().min(500) {
            for pair in d.sequence(u).windows(2) {
                let delta = (pair[0] as i64 - pair[1] as i64).abs();
                if delta <= window && delta > 0 {
                    close_pairs += 1;
                }
                total += 1;
            }
        }
        let frac = close_pairs as f64 / total.max(1) as f64;
        assert!(frac > 0.25, "sequential correlation too weak: {frac}");
    }

    #[test]
    fn all_paper_datasets_generate_without_panic() {
        for which in PaperDataset::ALL {
            let d = which.generate_scaled(0.03, 1);
            assert!(d.num_users() > 0);
            assert!(d.num_interactions() > 0);
            assert_eq!(d.num_targets(), 8);
        }
    }

    #[test]
    fn parse_round_trips() {
        for d in PaperDataset::ALL {
            assert_eq!(PaperDataset::parse(d.name()), Some(d));
        }
        assert_eq!(PaperDataset::parse("Netflix"), None);
    }
}
