//! # datasets
//!
//! Synthetic statistical twins of the four evaluation datasets of the
//! PoisonRec paper (Table II): Steam, MovieLens-1m, and the Amazon
//! Phone / Clothing categories. The real datasets are unavailable in
//! this offline reproduction; the twins match the distributional
//! properties the attack dynamics depend on — scale, popularity skew,
//! collaborative clusters, and sequential (Markov) correlation. See
//! DESIGN.md §4 for the substitution argument.
//!
//! ```
//! use datasets::PaperDataset;
//!
//! // A 5%-scale Steam twin for quick experiments.
//! let data = PaperDataset::Steam.generate_scaled(0.05, 42);
//! assert_eq!(data.num_targets(), 8);
//! ```

mod alias;
mod twin;

pub use alias::AliasTable;
pub use twin::{PaperDataset, TwinSpec, NUM_TARGETS};
