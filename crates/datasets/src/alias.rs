//! Walker alias method for O(1) sampling from a fixed discrete
//! distribution. The dataset generators draw hundreds of thousands of
//! items from heavily skewed popularity distributions; the alias table
//! makes that linear in the number of interactions.

use rand::Rng;

/// Precomputed alias table over `0..n`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are certain events.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 4.0, 8.0, 0.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 5];
        let draws = 150_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[4], 0, "zero-weight outcome sampled");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (expect - got).abs() < 0.01,
                "outcome {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let table = AliasTable::new(&[1.0; 64]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 64];
        for _ in 0..64_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 200.0, "count {c}");
        }
    }
}
