//! `stream::set_enabled` pins, isolated in their own test binary: the
//! kill switch is process-global, so flipping it would race any other
//! test that exercises an `enabled()`-gated record path.

use telemetry::stream;
use telemetry::{CusumConfig, WindowSpec, WindowedCounter, WindowedHistogram};

#[test]
fn disabling_the_plane_drops_records_without_panicking() {
    let counter = WindowedCounter::new(WindowSpec::new(1000, 4));
    let hist = WindowedHistogram::new(WindowSpec::new(1000, 4), &[1.0]);
    let family = telemetry::CounterFamily::new("toggle_fam", &["k"], WindowSpec::new(1000, 4), 4);
    let detector = telemetry::DriftDetector::new(CusumConfig::default());

    assert!(stream::enabled(), "the plane starts enabled");
    counter.add(1);
    hist.record(0.5);
    family.add(&["a"], 1);
    detector.observe(1.0);
    assert_eq!(counter.window_secs(4.0).count, 1);
    assert_eq!(hist.window_secs(4.0).count, 1);
    assert_eq!(family.series_snapshot().len(), 1);
    assert_eq!(detector.state().observations, 1);

    stream::set_enabled(false);
    assert!(!stream::enabled());
    counter.add(10);
    hist.record(0.5);
    family.add(&["a"], 10);
    family.add(&["b"], 10); // no new series while disabled either
    detector.observe(2.0);

    assert_eq!(
        counter.window_secs(4.0).count,
        1,
        "disabled add must be a no-op"
    );
    assert_eq!(hist.window_secs(4.0).count, 1);
    let series = family.series_snapshot();
    assert_eq!(series.len(), 1);
    assert_eq!(
        series[0].1, 1,
        "cumulative family total frozen while disabled"
    );
    assert_eq!(detector.state().observations, 1);

    stream::set_enabled(true);
    counter.add(2);
    assert_eq!(
        counter.window_secs(4.0).count,
        3,
        "re-enabling resumes recording"
    );
}
