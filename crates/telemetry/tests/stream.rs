//! Integration pins for the streaming plane (`telemetry::stream`):
//!
//! * window rotation under **concurrent** recording loses no committed
//!   sample — every `add_at` either commits (visible in the window
//!   until its bucket rotates out) or reports stale, and the final
//!   window equals a serial replay of the per-bucket commit counts;
//! * windowed histogram quantiles are **exactly** the offline answer:
//!   the same in-window samples pushed through the cumulative
//!   registry's bucket math produce bit-identical p50/p95/p99;
//! * the Prometheus exposition of a deterministic registry pair
//!   matches the checked-in golden file byte for byte
//!   (`UPDATE_GOLDEN=1 cargo test -p telemetry --test stream`
//!   regenerates it).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use telemetry::metrics::{quantile_from_buckets, Registry};
use telemetry::stream::{StreamRegistry, WindowSpec, WindowedCounter, WindowedHistogram};
use telemetry::{CusumConfig, Ewma};

/// Hammer one counter from several drifting threads, then check the
/// final window against per-bucket commit counts: rotation may *reject*
/// a racing record (stale), but it must never tear one — committed
/// means counted until the bucket leaves the ring.
#[test]
fn concurrent_rotation_loses_no_committed_sample() {
    const THREADS: u64 = 4;
    const STEPS: u64 = 96;
    const ADDS_PER_STEP: u64 = 25;
    const BUCKETS: usize = 8;

    let counter = Arc::new(WindowedCounter::new(WindowSpec::new(1000, BUCKETS)));
    // Per-bucket commit ledger, shared by all threads.
    let committed: Arc<Vec<AtomicU64>> = Arc::new((0..STEPS).map(|_| AtomicU64::new(0)).collect());
    let rejected = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let counter = Arc::clone(&counter);
        let committed = Arc::clone(&committed);
        let rejected = Arc::clone(&rejected);
        handles.push(std::thread::spawn(move || {
            for idx in 0..STEPS {
                // Odd threads lag behind the clock by more than the
                // ring, exercising the stale-rejection path against
                // live rotation.
                let idx = if t % 2 == 1 {
                    idx.saturating_sub(BUCKETS as u64 + 1)
                } else {
                    idx
                };
                for _ in 0..ADDS_PER_STEP {
                    if counter.add_at(idx, 1) {
                        committed[idx as usize].fetch_add(1, Ordering::Relaxed);
                    } else {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    // Serial replay of the commit ledger must reproduce the window.
    let replay = WindowedCounter::new(WindowSpec::new(1000, BUCKETS));
    for idx in 0..STEPS {
        let n = committed[idx as usize].load(Ordering::Relaxed);
        if n > 0 {
            assert!(replay.add_at(idx, n), "serial replay can never be stale");
        }
    }
    let live = counter.window_at(STEPS - 1);
    let replayed = replay.window_at(STEPS - 1);
    assert_eq!(live.count, replayed.count);
    assert_eq!(live.sum, replayed.sum);

    // Every add is accounted for: committed into some bucket or
    // explicitly rejected as stale — nothing vanished.
    let total_committed: u64 = committed.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(
        total_committed + rejected.load(Ordering::Relaxed),
        THREADS * STEPS * ADDS_PER_STEP
    );
    assert_eq!(counter.stale_records(), rejected.load(Ordering::Relaxed));
}

/// The windowed quantile must be *the same math* as the cumulative
/// registry's: replay exactly the in-window samples into a cumulative
/// histogram with the same bounds and demand bit-identical quantiles.
#[test]
fn windowed_quantiles_equal_offline_replay() {
    let bounds = [0.001, 0.01, 0.1, 1.0, 10.0];
    let spec = WindowSpec::new(1000, 16);
    let hist = WindowedHistogram::new(spec, &bounds);

    // A deterministic spread: indices 0..40 so the first 24 buckets
    // rotate out of the 16-bucket window ending at idx 39.
    let mut samples: Vec<(u64, f64)> = Vec::new();
    for idx in 0..40u64 {
        for k in 0..20u64 {
            let value = 0.0004 * ((idx * 20 + k) % 97 + 1) as f64;
            samples.push((idx, value));
        }
    }
    for &(idx, value) in &samples {
        assert!(hist.record_at(idx, value));
    }

    let last = 39u64;
    let view = hist.window_at(last);
    let span = view.window_secs; // seconds == buckets at 1000 ms each
    let in_window = |idx: u64| (last - idx) as f64 * 1.0 < span;

    // Offline replay: only the in-window samples, cumulative math.
    let reg = Registry::new();
    let offline = reg.histogram("offline", &bounds);
    let mut replayed = 0u64;
    for &(idx, value) in &samples {
        if in_window(idx) {
            offline.record(value);
            replayed += 1;
        }
    }
    assert!(
        replayed < samples.len() as u64,
        "window must actually narrow"
    );
    assert_eq!(view.count, replayed);

    let snap = reg.snapshot();
    let entry = snap.get("offline").unwrap();
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(view.quantile(q), entry.quantile(q), "quantile {q} diverged");
    }

    // And both agree with the raw bucket math on the view itself.
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(
            view.quantile(q),
            quantile_from_buckets(&view.buckets, view.count, q)
        );
    }
}

/// Byte-for-byte golden pin of the Prometheus exposition: every shape
/// the renderer emits (cumulative counter/gauge/histogram, windowed
/// counter/histogram, labeled family with overflow, drift detector).
#[test]
fn prom_exposition_matches_golden_file() {
    let reg = Registry::new();
    reg.counter("serve_requests_total").add(42);
    reg.gauge("system_generation").set(3);
    let lat = reg.histogram("trainer_step_secs", &[0.01, 0.1, 1.0]);
    for v in [0.004, 0.02, 0.02, 0.3, 5.0] {
        lat.record(v);
    }
    lat.record(f64::NAN);

    let sreg = StreamRegistry::new();
    let events = sreg.windowed_counter("serve_feedback_trajectories", WindowSpec::new(1000, 60));
    events.add_at(0, 30);
    let secs = sreg.windowed_histogram(
        "serve_request_secs",
        WindowSpec::new(1000, 60),
        &[0.001, 0.01, 0.1],
    );
    for v in [0.0004, 0.002, 0.002, 0.05, 0.5] {
        secs.record_at(0, v);
    }
    let fam = sreg.counter_family(
        "serve_requests",
        &["route", "status"],
        WindowSpec::new(1000, 60),
        2,
    );
    fam.add(&["healthz", "200"], 5);
    fam.add(&["recommend", "200"], 7);
    fam.add(&["feedback", "400"], 1); // over the cap of 2 -> overflow
    let drift = sreg.detector("serve_feedback_pop_drift", CusumConfig::default());
    for i in 0..8 {
        drift.observe(10.0 + (i % 2) as f64);
    }

    let text = telemetry::prom::render(&reg.snapshot(), &sreg.snapshot(None));

    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        text, want,
        "prom exposition drifted from tests/golden/metrics.prom \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

/// The EWMA smoother is deterministic state — same stream, same value.
#[test]
fn ewma_replay_is_deterministic() {
    let a = Ewma::new(0.2);
    let b = Ewma::new(0.2);
    for i in 0..100 {
        let v = (i as f64 * 0.37).sin();
        a.observe(v);
        b.observe(v);
    }
    assert_eq!(a.value(), b.value());
}
