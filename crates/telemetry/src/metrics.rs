//! Process-wide metrics: counters, gauges, and fixed-bucket histograms
//! behind a named registry.
//!
//! Instruments are plain atomics — incrementing a counter or recording
//! a histogram sample is a handful of `Relaxed` atomic ops, safe to
//! leave in per-observation hot paths. Name lookup takes the registry
//! lock, so hot callers should resolve their handle once (an
//! `OnceLock<Arc<Counter>>` next to the call site) and reuse it;
//! cold callers can just call [`counter`]/[`gauge`]/[`histogram`]
//! inline.
//!
//! [`snapshot`] copies every instrument's current value into a plain
//! [`Snapshot`], which renders to JSON for the run-log sink.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Monotone event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Instantaneous signed level (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Default histogram bounds for durations in seconds: 10 µs – 2 min,
/// roughly logarithmic. Fine enough to separate a per-item score from
/// a full retrain from a whole experiment cell.
pub const TIME_BUCKETS: [f64; 12] = [
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
];

/// Fixed-bucket histogram: one atomic count per bucket plus a running
/// sum and total count. Bounds are upper bounds, ascending; samples
/// above the last bound land in an implicit overflow bucket. NaN
/// samples are quarantined in [`Histogram::nan_count`] — they never
/// reach a bucket or the sum, so `sum` stays finite no matter what a
/// broken producer records.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    nan_count: AtomicU64,
    /// Sum of samples, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            nan_count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    pub fn record(&self, v: f64) {
        if v.is_nan() {
            // NaN compares false against every bound, so without this
            // guard it would land in the overflow bucket and — worse —
            // poison `sum` permanently through the CAS loop below.
            self.nan_count.fetch_add(1, Relaxed);
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        let mut cur = self.sum_bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Finite samples recorded (NaNs excluded).
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// NaN samples rejected by [`Histogram::record`].
    pub fn nan_count(&self) -> u64 {
        self.nan_count.load(Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Relaxed))
    }

    /// `(upper_bound, count)` per bucket; the final entry is the
    /// overflow bucket with bound `+∞`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.buckets.iter().map(|b| b.load(Relaxed)))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the bucket holding the target rank —
    /// the Prometheus `histogram_quantile` scheme. The first bucket
    /// interpolates from 0; a target in the overflow bucket returns
    /// the last finite bound (the histogram cannot see further).
    /// `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.buckets(), self.count(), q)
    }
}

/// Quantile estimation over `(upper_bound, count)` buckets; shared by
/// live [`Histogram`]s and [`MetricValue::Histogram`] snapshots.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], count: u64, q: f64) -> Option<f64> {
    if count == 0 || buckets.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let target = q * count as f64;
    let mut cumulative = 0u64;
    let mut lower = 0.0f64;
    for (i, &(le, n)) in buckets.iter().enumerate() {
        let reached = cumulative + n;
        if reached as f64 >= target {
            if le.is_infinite() {
                // Overflow bucket: report the largest finite bound.
                return Some(lower);
            }
            if n == 0 {
                return Some(le);
            }
            let into = (target - cumulative as f64) / n as f64;
            let base = if i == 0 { 0.0 } else { lower };
            return Some(base + (le - base) * into.clamp(0.0, 1.0));
        }
        cumulative = reached;
        if le.is_finite() {
            lower = le;
        }
    }
    Some(lower)
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time copy of one instrument's value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram {
        count: u64,
        nan_count: u64,
        sum: f64,
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricValue {
    /// Quantile estimate for histogram values, `None` otherwise.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            MetricValue::Histogram { count, buckets, .. } => {
                quantile_from_buckets(buckets, *count, q)
            }
            _ => None,
        }
    }
}

/// A point-in-time copy of a whole registry, in name order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub entries: Vec<(&'static str, MetricValue)>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Convenience for tests and reports: the value of a counter, or
    /// `None` if absent / not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the snapshot as one JSON object keyed by metric name
    /// (counters/gauges as numbers, histograms as
    /// `{count, nan_count, sum, p50, p95, p99, buckets: [{le, count}]}`
    /// — quantiles pre-computed here so `trace_report`/`perf_diff`
    /// never re-derive them from raw buckets; they render as `null`
    /// on an empty histogram).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in &self.entries {
            let v = match value {
                MetricValue::Counter(c) => Json::U64(*c),
                MetricValue::Gauge(g) => Json::I64(*g),
                MetricValue::Histogram {
                    count,
                    nan_count,
                    sum,
                    buckets,
                } => {
                    let bucket_objs: Vec<Json> = buckets
                        .iter()
                        .map(|&(le, n)| Json::obj().field("le", le).field("count", n))
                        .collect();
                    let quantile = |q: f64| -> Json {
                        quantile_from_buckets(buckets, *count, q).map_or(Json::Null, Json::F64)
                    };
                    Json::obj()
                        .field("count", *count)
                        .field("nan_count", *nan_count)
                        .field("sum", *sum)
                        .field("p50", quantile(0.50))
                        .field("p95", quantile(0.95))
                        .field("p99", quantile(0.99))
                        .field("buckets", Json::Arr(bucket_objs))
                }
            };
            obj = obj.field(name, v);
        }
        obj
    }
}

/// A named set of instruments. Most code uses the process-wide
/// [`global`] registry through the free functions below; tests build
/// private registries to assert in isolation.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<&'static str, Instrument>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name`, registering it on first use.
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is registered as a non-counter"),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is registered as a non-gauge"),
        }
    }

    /// Returns the histogram `name`, registering it with `bounds` on
    /// first use (later callers inherit the first registration's
    /// bounds).
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is registered as a non-histogram"),
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            entries: inner
                .iter()
                .map(|(&name, inst)| {
                    let value = match inst {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram {
                            count: h.count(),
                            nan_count: h.nan_count(),
                            sum: h.sum(),
                            buckets: h.buckets(),
                        },
                    };
                    (name, value)
                })
                .collect(),
        }
    }
}

/// The process-wide registry every crate in the workspace records into.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the [`global`] registry.
pub fn counter(name: &'static str) -> Arc<Counter> {
    global().counter(name)
}

/// [`Registry::gauge`] on the [`global`] registry.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    global().gauge(name)
}

/// [`Registry::histogram`] on the [`global`] registry.
pub fn histogram(name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
    global().histogram(name, bounds)
}

/// [`Registry::snapshot`] of the [`global`] registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same instrument.
        assert_eq!(reg.counter("jobs").get(), 5);

        let g = reg.gauge("depth");
        g.add(7);
        g.sub(3);
        assert_eq!(g.get(), 4);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[0.1, 1.0]);
        for v in [0.05, 0.5, 0.5, 50.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 51.05).abs() < 1e-9);
        assert_eq!(
            h.buckets().iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            vec![1, 2, 1]
        );
    }

    #[test]
    fn snapshot_copies_current_values() {
        let reg = Registry::new();
        reg.counter("a").add(3);
        reg.gauge("b").set(9);
        reg.histogram("c", &TIME_BUCKETS).record(0.2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.get("b"), Some(&MetricValue::Gauge(9)));
        match snap.get("c") {
            Some(MetricValue::Histogram { count, .. }) => assert_eq!(*count, 1),
            other => panic!("unexpected {other:?}"),
        }
        // BTreeMap backing: snapshot entries come out name-ordered.
        let names: Vec<_> = snap.entries.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        // Mutating after the snapshot does not retroactively change it.
        reg.counter("a").inc();
        assert_eq!(snap.counter("a"), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn nan_samples_are_quarantined_not_summed() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[0.1, 1.0]);
        h.record(0.5);
        h.record(f64::NAN);
        h.record(0.5);
        // Regression: NaN used to land in the overflow bucket and turn
        // `sum` into NaN forever via the CAS loop.
        assert_eq!(h.count(), 2);
        assert_eq!(h.nan_count(), 1);
        assert!(h.sum().is_finite());
        assert!((h.sum() - 1.0).abs() < 1e-12);
        assert_eq!(
            h.buckets().iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            vec![0, 2, 0],
            "NaN must not occupy any bucket"
        );
        match reg.snapshot().get("lat") {
            Some(MetricValue::Histogram {
                count, nan_count, ..
            }) => {
                assert_eq!((*count, *nan_count), (2, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 10 samples in (1, 2]: the whole distribution lives in bucket 2.
        for _ in 0..10 {
            h.record(1.5);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(
            (1.0..=2.0).contains(&p50),
            "p50 {p50} must interpolate inside its bucket"
        );
        assert!((p50 - 1.5).abs() < 0.51); // midpoint of [1, 2]
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 2.0 && p99 >= p50);

        // Overflow-bucket mass clamps to the last finite bound.
        let o = reg.histogram("over", &[1.0]);
        o.record(100.0);
        assert_eq!(o.quantile(0.5), Some(1.0));

        // Snapshot JSON carries the pre-computed quantiles.
        let snap = reg.snapshot();
        let doc = snap.to_json();
        let lat = doc.get("lat").unwrap();
        let json_p50 = lat.get("p50").and_then(Json::as_f64).unwrap();
        assert!((json_p50 - p50).abs() < 1e-12);
        assert!(lat.get("p95").and_then(Json::as_f64).is_some());
        assert!(lat.get("p99").and_then(Json::as_f64).is_some());
        assert_eq!(lat.get("nan_count").and_then(Json::as_u64), Some(0));
        assert_eq!(snap.get("lat").unwrap().quantile(0.5), Some(p50));
    }

    /// Pinned: a quantile target landing in the overflow bucket
    /// reports the largest *finite* bound — the histogram cannot see
    /// further, and `+Inf` (or interpolation toward it) would be a
    /// lie. Both the live instrument and the shared bucket math agree.
    #[test]
    fn quantile_in_overflow_bucket_is_clamped_to_last_finite_bound() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0]);
        // All mass beyond the last finite bound.
        for v in [5.0, 9.0, 100.0] {
            h.record(v);
        }
        for q in [0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(2.0), "q={q}");
        }
        assert_eq!(
            quantile_from_buckets(&h.buckets(), h.count(), 0.5),
            Some(2.0)
        );

        // Mixed mass: only targets that actually land in the overflow
        // bucket clamp; finite-bucket targets still interpolate.
        let m = reg.histogram("mixed", &[1.0, 2.0]);
        for v in [0.5, 1.5, 50.0] {
            m.record(v);
        }
        assert_eq!(m.quantile(1.0), Some(2.0), "overflow target clamps");
        let p25 = m.quantile(0.25).unwrap();
        assert!(p25 < 1.0, "finite target still interpolates, got {p25}");
    }

    /// Pinned: quantile edge cases — `None` on empty histograms and
    /// out-of-range `q`, never a panic or a fabricated number.
    #[test]
    fn quantile_edge_cases_return_none() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram");
        h.record(0.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(quantile_from_buckets(&[], 3, 0.5), None, "no buckets");
        assert_eq!(
            MetricValue::Counter(3).quantile(0.5),
            None,
            "non-histogram values have no quantiles"
        );
    }
}
