//! Streaming observability plane: sliding-window instruments, EWMA
//! smoothers, CUSUM drift detectors, and labeled metric families.
//!
//! The cumulative registry in [`crate::metrics`] answers "how much since
//! process start"; this module answers "what is happening *right now*".
//! Every instrument here is built from the same primitives as the
//! cumulative layer — fixed-size atomics, no allocation on the record
//! path — so the serve event loop can record into it without taking a
//! lock or touching the heap.
//!
//! # Window mechanics
//!
//! A windowed instrument owns a fixed ring of `buckets` slots, each
//! covering `bucket_millis` of wall time. Sample time is quantised to a
//! *bucket index* `idx = elapsed_millis / bucket_millis` (monotonic,
//! process-epoch based), and a sample for index `idx` lands in slot
//! `idx % buckets`. A slot is *rotated* (zeroed and re-tagged) the first
//! time a sample for a newer index claims it; there is no background
//! ticker thread.
//!
//! ## Rotation protocol (lock-free, torn-write-free)
//!
//! Each slot carries a `tag` (`AtomicU64`) identifying which bucket
//! index currently owns it, plus an `active` recorder refcount:
//!
//! * `TAG_EMPTY`     — slot has never been used
//! * `TAG_RESETTING` — a rotator is zeroing the slot
//! * `idx + TAG_BASE` — slot holds data for bucket index `idx`
//!
//! Recorder: `active.fetch_add(1)` → load `tag` → if it matches the
//! wanted index, add the sample and release `active` (committed). If the
//! slot still belongs to an older index, the recorder parks the tag at
//! `TAG_RESETTING` (CAS), waits for in-flight recorders to drain
//! (`active == 1`, itself), zeroes the slot, then publishes the new tag
//! with `Release` ordering. A recorder that finds a *newer* tag is late
//! — its bucket already rotated out — and gives up, counted in `stale`.
//! Because the rotator waits out every in-flight `active` guard before
//! zeroing, a slot can never be zeroed underneath a half-finished add:
//! either the add committed entirely before the wipe, or the recorder
//! observed `TAG_RESETTING`/a newer tag and never touched the counters.
//!
//! Reads (`WindowView`) are racy-but-consistent-enough snapshots: each
//! slot is skipped unless its tag still names an index inside the
//! requested window at load time.
//!
//! # Cardinality
//!
//! [`CounterFamily`] caps the number of live label sets (default
//! [`DEFAULT_FAMILY_CAP`]). Past the cap, records are folded into a
//! reserved `__overflow__` series and counted in `overflow_events`, so
//! a label leak degrades into one visible, typed bucket instead of an
//! unbounded map.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::json::Json;
use crate::metrics::quantile_from_buckets;

/// Slot tag for "never used".
const TAG_EMPTY: u64 = 0;
/// Slot tag while a rotator is zeroing the slot.
const TAG_RESETTING: u64 = 1;
/// Offset added to a bucket index to form its slot tag.
const TAG_BASE: u64 = 2;

/// Default label-set cap for [`CounterFamily`].
pub const DEFAULT_FAMILY_CAP: usize = 64;

/// Label value recorded for series folded past the cardinality cap.
pub const OVERFLOW_LABEL: &str = "__overflow__";

/// Global kill switch for the streaming plane. When disabled, record
/// paths return immediately (used to measure plane overhead in bench).
static STREAM_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable every stream record path process-wide.
pub fn set_enabled(on: bool) {
    STREAM_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the streaming plane is currently recording.
pub fn enabled() -> bool {
    STREAM_ENABLED.load(Ordering::Relaxed)
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Milliseconds since the process epoch (first use of this module).
pub fn now_millis() -> u64 {
    process_epoch().elapsed().as_millis() as u64
}

/// Shape of a sliding window: `buckets` ring slots of `bucket_millis`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    pub bucket_millis: u64,
    pub buckets: usize,
}

impl WindowSpec {
    pub const fn new(bucket_millis: u64, buckets: usize) -> Self {
        Self {
            bucket_millis,
            buckets,
        }
    }

    /// Total span of the window in seconds.
    pub fn span_secs(&self) -> f64 {
        (self.bucket_millis as f64 / 1000.0) * self.buckets as f64
    }

    fn bucket_index(&self, millis: u64) -> u64 {
        millis / self.bucket_millis.max(1)
    }
}

/// 60 one-second buckets: quantiles/rates over the last minute.
pub const DEFAULT_WINDOW: WindowSpec = WindowSpec::new(1000, 60);

/// One ring slot: a tag naming the owning bucket index, an in-flight
/// recorder refcount, and the slot's counters (count, sum-bits, and one
/// cell per histogram bound; counters-only instruments use none).
struct Slot {
    tag: AtomicU64,
    active: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
    cells: Vec<AtomicU64>,
}

impl Slot {
    fn new(cells: usize) -> Self {
        Self {
            tag: AtomicU64::new(TAG_EMPTY),
            active: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            cells: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
        for c in &self.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Fixed ring of slots shared by windowed counters and histograms.
struct Ring {
    spec: WindowSpec,
    slots: Vec<Slot>,
    /// Records that arrived for a bucket index already rotated out.
    stale: AtomicU64,
}

enum Claim<'a> {
    /// Slot is tagged for our index; `active` guard is held.
    Ready(&'a Slot),
    /// Our bucket already rotated out of the ring.
    Stale,
}

impl Ring {
    fn new(spec: WindowSpec, cells: usize) -> Self {
        let slots = (0..spec.buckets.max(1)).map(|_| Slot::new(cells)).collect();
        Self {
            spec,
            slots,
            stale: AtomicU64::new(0),
        }
    }

    /// Claim the slot for bucket index `idx`, rotating it if it still
    /// holds an older bucket. On `Ready`, the caller MUST add its sample
    /// and then `release` the slot.
    fn claim(&self, idx: u64) -> Claim<'_> {
        let want = idx + TAG_BASE;
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        loop {
            slot.active.fetch_add(1, Ordering::AcqRel);
            let tag = slot.tag.load(Ordering::Acquire);
            if tag == want {
                return Claim::Ready(slot);
            }
            slot.active.fetch_sub(1, Ordering::AcqRel);
            if tag == TAG_RESETTING {
                std::hint::spin_loop();
                continue;
            }
            if tag > want {
                // A newer bucket owns this slot: our sample is older
                // than the whole ring. Drop it, visibly.
                self.stale.fetch_add(1, Ordering::Relaxed);
                return Claim::Stale;
            }
            // Older bucket (or empty): try to become the rotator.
            if slot
                .tag
                .compare_exchange(tag, TAG_RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Wait out in-flight recorders of the old bucket, then
                // zero and publish the new tag.
                while slot.active.load(Ordering::Acquire) != 0 {
                    std::hint::spin_loop();
                }
                slot.zero();
                slot.tag.store(want, Ordering::Release);
            }
            // Lost the race (or finished rotating): retry the claim.
        }
    }

    fn release(slot: &Slot) {
        slot.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Visit every slot whose tag still names a bucket index in
    /// `[from_idx, to_idx]` at load time.
    fn visit_window(&self, from_idx: u64, to_idx: u64, mut f: impl FnMut(&Slot)) {
        for slot in &self.slots {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag < TAG_BASE {
                continue;
            }
            let idx = tag - TAG_BASE;
            if idx >= from_idx && idx <= to_idx {
                f(slot);
            }
        }
    }

    fn stale_records(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }
}

/// Read-side snapshot of a window: totals plus (for histograms) the
/// merged per-bound bucket counts, in the same `(upper_bound, count)`
/// shape [`crate::metrics::Histogram`] exposes — so windowed quantiles
/// go through the exact same [`quantile_from_buckets`] math as the
/// cumulative layer (and as any offline replay of the same samples).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowView {
    /// Seconds actually covered by the view (window span).
    pub window_secs: f64,
    pub count: u64,
    pub sum: f64,
    /// `(upper_bound, count)` per bound; empty for plain counters.
    pub buckets: Vec<(f64, u64)>,
}

impl WindowView {
    /// Events per second over the window span.
    pub fn rate(&self) -> f64 {
        if self.window_secs <= 0.0 {
            return 0.0;
        }
        self.count as f64 / self.window_secs
    }

    /// Windowed quantile (same estimator as the cumulative histogram).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.buckets, self.count, q)
    }

    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Sliding-window event counter (rates over the last N seconds).
pub struct WindowedCounter {
    ring: Ring,
}

impl WindowedCounter {
    pub fn new(spec: WindowSpec) -> Self {
        Self {
            ring: Ring::new(spec, 0),
        }
    }

    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// Count `n` events now. Returns `false` if the sample was dropped
    /// (plane disabled, or the bucket already rotated out).
    pub fn add(&self, n: u64) -> bool {
        if !enabled() {
            return false;
        }
        self.add_at(self.ring.spec.bucket_index(now_millis()), n)
    }

    /// Deterministic hook: count `n` events in explicit bucket `idx`.
    #[doc(hidden)]
    pub fn add_at(&self, idx: u64, n: u64) -> bool {
        match self.ring.claim(idx) {
            Claim::Ready(slot) => {
                slot.count.fetch_add(n, Ordering::Relaxed);
                Ring::release(slot);
                true
            }
            Claim::Stale => false,
        }
    }

    pub fn window(&self) -> WindowView {
        self.window_at(self.ring.spec.bucket_index(now_millis()))
    }

    /// View narrowed to roughly the last `secs` seconds (clamped to
    /// one bucket .. the full ring).
    pub fn window_secs(&self, secs: f64) -> WindowView {
        let spec = self.ring.spec;
        let to_idx = spec.bucket_index(now_millis());
        let span = narrowed_span(spec, secs);
        self.window_span(to_idx, span)
    }

    /// Deterministic hook: view the full window ending at bucket `idx`.
    #[doc(hidden)]
    pub fn window_at(&self, to_idx: u64) -> WindowView {
        self.window_span(to_idx, self.ring.spec.buckets)
    }

    fn window_span(&self, to_idx: u64, span: usize) -> WindowView {
        let spec = self.ring.spec;
        let from = to_idx.saturating_sub(span.saturating_sub(1) as u64);
        let mut count = 0u64;
        self.ring.visit_window(from, to_idx, |slot| {
            count += slot.count.load(Ordering::Relaxed);
        });
        WindowView {
            window_secs: (spec.bucket_millis as f64 / 1000.0) * span as f64,
            count,
            sum: count as f64,
            buckets: Vec::new(),
        }
    }

    pub fn stale_records(&self) -> u64 {
        self.ring.stale_records()
    }
}

/// Bucket span covering roughly `secs` seconds, clamped to the ring.
fn narrowed_span(spec: WindowSpec, secs: f64) -> usize {
    ((secs * 1000.0 / spec.bucket_millis.max(1) as f64).ceil() as usize).clamp(1, spec.buckets)
}

/// Sliding-window histogram: per-slot bound counts merged at read time.
///
/// Bounds are fixed ascending upper bounds, same contract as the
/// cumulative [`crate::metrics::Histogram`]. NaN samples are quarantined
/// in `nan_count` rather than recorded.
pub struct WindowedHistogram {
    bounds: Vec<f64>,
    ring: Ring,
    nan_count: AtomicU64,
}

impl WindowedHistogram {
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending (same contract as the cumulative histogram).
    pub fn new(spec: WindowSpec, bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "windowed histogram needs at least one bound"
        );
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        // One cell per finite bound plus the +Inf overflow cell.
        Self {
            bounds: bounds.to_vec(),
            ring: Ring::new(spec, bounds.len() + 1),
            nan_count: AtomicU64::new(0),
        }
    }

    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one sample now. Returns `false` if dropped (plane
    /// disabled, NaN, or bucket rotated out).
    pub fn record(&self, value: f64) -> bool {
        if !enabled() {
            return false;
        }
        self.record_at(self.ring.spec.bucket_index(now_millis()), value)
    }

    /// Deterministic hook: record in explicit bucket `idx`.
    #[doc(hidden)]
    pub fn record_at(&self, idx: u64, value: f64) -> bool {
        if value.is_nan() {
            self.nan_count.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match self.ring.claim(idx) {
            Claim::Ready(slot) => {
                let cell = self
                    .bounds
                    .iter()
                    .position(|&b| value <= b)
                    .unwrap_or(self.bounds.len());
                slot.cells[cell].fetch_add(1, Ordering::Relaxed);
                slot.count.fetch_add(1, Ordering::Relaxed);
                // CAS f64-bits accumulate, same discipline as the
                // cumulative histogram's sum.
                let mut cur = slot.sum_bits.load(Ordering::Relaxed);
                loop {
                    let next = f64::from_bits(cur) + value;
                    match slot.sum_bits.compare_exchange_weak(
                        cur,
                        next.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
                Ring::release(slot);
                true
            }
            Claim::Stale => false,
        }
    }

    pub fn window(&self) -> WindowView {
        self.window_at(self.ring.spec.bucket_index(now_millis()))
    }

    /// View narrowed to roughly the last `secs` seconds (clamped to
    /// one bucket .. the full ring).
    pub fn window_secs(&self, secs: f64) -> WindowView {
        let spec = self.ring.spec;
        let to_idx = spec.bucket_index(now_millis());
        self.window_span(to_idx, narrowed_span(spec, secs))
    }

    /// Deterministic hook: view the full window ending at bucket `idx`.
    #[doc(hidden)]
    pub fn window_at(&self, to_idx: u64) -> WindowView {
        self.window_span(to_idx, self.ring.spec.buckets)
    }

    fn window_span(&self, to_idx: u64, span: usize) -> WindowView {
        let spec = self.ring.spec;
        let from = to_idx.saturating_sub(span.saturating_sub(1) as u64);
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut merged = vec![0u64; self.bounds.len() + 1];
        self.ring.visit_window(from, to_idx, |slot| {
            count += slot.count.load(Ordering::Relaxed);
            sum += f64::from_bits(slot.sum_bits.load(Ordering::Relaxed));
            for (m, c) in merged.iter_mut().zip(&slot.cells) {
                *m += c.load(Ordering::Relaxed);
            }
        });
        let mut buckets: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .copied()
            .zip(merged.iter().copied())
            .collect();
        buckets.push((f64::INFINITY, merged[self.bounds.len()]));
        WindowView {
            window_secs: (spec.bucket_millis as f64 / 1000.0) * span as f64,
            count,
            sum,
            buckets,
        }
    }

    pub fn nan_count(&self) -> u64 {
        self.nan_count.load(Ordering::Relaxed)
    }

    pub fn stale_records(&self) -> u64 {
        self.ring.stale_records()
    }
}

/// Exponentially-weighted moving average of a scalar signal.
///
/// Stored as f64 bits in a single atomic; NaN bits mean "uninitialised"
/// (the first observation seeds the mean directly).
pub struct Ewma {
    alpha: f64,
    bits: AtomicU64,
}

impl Ewma {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        Self {
            alpha,
            bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let prev = f64::from_bits(cur);
            let next = if prev.is_nan() {
                value
            } else {
                prev + self.alpha * (value - prev)
            };
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current smoothed value, `None` until the first observation.
    pub fn value(&self) -> Option<f64> {
        let v = f64::from_bits(self.bits.load(Ordering::Relaxed));
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }
}

/// CUSUM drift-detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct CusumConfig {
    /// Slack in standard deviations: deviations below `k` don't
    /// accumulate (filters noise).
    pub k: f64,
    /// Alarm threshold on the cumulative sum, in standard deviations.
    pub h: f64,
    /// EWMA factor for the running mean/variance reference.
    pub alpha: f64,
    /// Observations consumed calibrating the reference before the
    /// cumulative sums start accumulating.
    pub warmup: u64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        Self {
            k: 0.5,
            h: 8.0,
            alpha: 0.05,
            warmup: 32,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct CusumState {
    n: u64,
    mean: f64,
    var: f64,
    s_pos: f64,
    s_neg: f64,
    alarms: u64,
    last_alarm: u64,
}

/// Published detector state, all fields exported as metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftState {
    pub observations: u64,
    pub mean: f64,
    /// Standard deviation of the EWMA reference.
    pub dev: f64,
    pub s_pos: f64,
    pub s_neg: f64,
    pub alarms: u64,
    /// True if an alarm fired within the last `warmup` observations.
    pub drifted: bool,
}

/// Two-sided CUSUM drift detector over a scalar stream.
///
/// The reference distribution is tracked with EWMA mean/variance
/// (West's update): `mean += a·δ`, `var = (1−a)·(var + a·δ²)` where
/// `δ = x − mean_old`. Each observation is standardised against the
/// reference, `z = (x − mean) / dev`, and fed into the classic
/// two-sided cumulative sums `s⁺ = max(0, s⁺ + z − k)`,
/// `s⁻ = max(0, s⁻ − z − k)`. Crossing `h` raises an alarm and resets
/// both sums. During warmup only the reference calibrates.
pub struct DriftDetector {
    cfg: CusumConfig,
    state: Mutex<CusumState>,
}

impl DriftDetector {
    pub fn new(cfg: CusumConfig) -> Self {
        assert!(cfg.k >= 0.0 && cfg.h > 0.0, "CUSUM needs k >= 0 and h > 0");
        assert!(
            cfg.alpha > 0.0 && cfg.alpha <= 1.0,
            "CUSUM alpha must be in (0, 1]"
        );
        Self {
            cfg,
            state: Mutex::new(CusumState::default()),
        }
    }

    pub fn config(&self) -> CusumConfig {
        self.cfg
    }

    /// Feed one observation. Returns `true` iff this observation raised
    /// an alarm. NaN observations are ignored.
    pub fn observe(&self, x: f64) -> bool {
        if x.is_nan() || !enabled() {
            return false;
        }
        let mut st = self.state.lock().unwrap();
        st.n += 1;
        if st.n == 1 {
            st.mean = x;
            st.var = 0.0;
            return false;
        }
        let a = self.cfg.alpha;
        let delta = x - st.mean;
        st.mean += a * delta;
        st.var = (1.0 - a) * (st.var + a * delta * delta);
        if st.n <= self.cfg.warmup {
            return false;
        }
        let dev = st.var.sqrt().max(1e-12);
        let z = delta / dev;
        st.s_pos = (st.s_pos + z - self.cfg.k).max(0.0);
        st.s_neg = (st.s_neg - z - self.cfg.k).max(0.0);
        if st.s_pos > self.cfg.h || st.s_neg > self.cfg.h {
            st.s_pos = 0.0;
            st.s_neg = 0.0;
            st.alarms += 1;
            st.last_alarm = st.n;
            true
        } else {
            false
        }
    }

    pub fn state(&self) -> DriftState {
        let st = self.state.lock().unwrap();
        DriftState {
            observations: st.n,
            mean: st.mean,
            dev: st.var.sqrt(),
            s_pos: st.s_pos,
            s_neg: st.s_neg,
            alarms: st.alarms,
            drifted: st.alarms > 0 && st.n - st.last_alarm < self.cfg.warmup.max(1),
        }
    }
}

/// One series of a [`CounterFamily`]: a cumulative total plus a
/// windowed counter for rates.
pub struct LabeledSeries {
    total: AtomicU64,
    windowed: WindowedCounter,
}

impl LabeledSeries {
    fn new(spec: WindowSpec) -> Self {
        Self {
            total: AtomicU64::new(0),
            windowed: WindowedCounter::new(spec),
        }
    }

    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub fn window(&self) -> WindowView {
        self.windowed.window()
    }
}

/// Labeled counter family with a hard cardinality cap.
///
/// `label_names` is fixed at registration; every `add` supplies exactly
/// that many values. Once `cap` distinct label sets exist, further new
/// sets fold into a single reserved series whose values are all
/// [`OVERFLOW_LABEL`], and each folded event bumps `overflow_events`.
pub struct CounterFamily {
    name: &'static str,
    label_names: &'static [&'static str],
    spec: WindowSpec,
    cap: usize,
    series: RwLock<BTreeMap<Vec<String>, Arc<LabeledSeries>>>,
    overflow_events: AtomicU64,
}

impl CounterFamily {
    pub fn new(
        name: &'static str,
        label_names: &'static [&'static str],
        spec: WindowSpec,
        cap: usize,
    ) -> Self {
        assert!(!label_names.is_empty(), "a family needs at least one label");
        assert!(cap >= 1, "family cap must be at least 1");
        Self {
            name,
            label_names,
            spec,
            cap,
            series: RwLock::new(BTreeMap::new()),
            overflow_events: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn label_names(&self) -> &'static [&'static str] {
        self.label_names
    }

    /// Count `n` events against the series for `values`.
    ///
    /// Panics if `values.len() != label_names.len()` — a code bug, same
    /// contract as the registry's kind-mismatch panic.
    pub fn add(&self, values: &[&str], n: u64) {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "family {}: got {} label values, expected {}",
            self.name,
            values.len(),
            self.label_names.len()
        );
        if !enabled() {
            return;
        }
        let series = self.series_for(values);
        series.total.fetch_add(n, Ordering::Relaxed);
        series.windowed.add(n);
    }

    fn series_for(&self, values: &[&str]) -> Arc<LabeledSeries> {
        {
            let map = self.series.read().unwrap();
            // Allocation-free probe would need a borrowed key; a Vec
            // probe only allocates on the first sighting of a label set
            // because the hit path below returns the existing Arc.
            let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            if let Some(s) = map.get(&key) {
                return Arc::clone(s);
            }
        }
        let mut map = self.series.write().unwrap();
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        if let Some(s) = map.get(&key) {
            return Arc::clone(s);
        }
        if map.len() >= self.cap {
            self.overflow_events.fetch_add(1, Ordering::Relaxed);
            let overflow_key: Vec<String> = self
                .label_names
                .iter()
                .map(|_| OVERFLOW_LABEL.to_string())
                .collect();
            if let Some(s) = map.get(&overflow_key) {
                return Arc::clone(s);
            }
            let s = Arc::new(LabeledSeries::new(self.spec));
            map.insert(overflow_key, Arc::clone(&s));
            return s;
        }
        let s = Arc::new(LabeledSeries::new(self.spec));
        map.insert(key, Arc::clone(&s));
        s
    }

    /// Events folded into the overflow series because the cap was hit.
    pub fn overflow_events(&self) -> u64 {
        self.overflow_events.load(Ordering::Relaxed)
    }

    /// Snapshot every live series: `(label_values, cumulative_total,
    /// window_view)`, sorted by label values.
    pub fn series_snapshot(&self) -> Vec<(Vec<String>, u64, WindowView)> {
        let map = self.series.read().unwrap();
        map.iter()
            .map(|(k, s)| (k.clone(), s.total(), s.window()))
            .collect()
    }
}

/// A streaming instrument held by the registry.
enum StreamInstrument {
    Counter(Arc<WindowedCounter>),
    Histogram(Arc<WindowedHistogram>),
    Family(Arc<CounterFamily>),
    Detector(Arc<DriftDetector>),
}

impl StreamInstrument {
    fn kind(&self) -> &'static str {
        match self {
            StreamInstrument::Counter(_) => "windowed_counter",
            StreamInstrument::Histogram(_) => "windowed_histogram",
            StreamInstrument::Family(_) => "counter_family",
            StreamInstrument::Detector(_) => "drift_detector",
        }
    }
}

/// Registry of streaming instruments, `&'static str`-keyed like the
/// cumulative [`crate::metrics::Registry`]. Same contract: re-fetching
/// an existing name with a different kind panics (code bug).
#[derive(Default)]
pub struct StreamRegistry {
    instruments: Mutex<BTreeMap<&'static str, StreamInstrument>>,
}

macro_rules! fetch_or_insert {
    ($self:ident, $name:ident, $variant:ident, $make:expr) => {{
        let mut map = $self.instruments.lock().unwrap();
        match map
            .entry($name)
            .or_insert_with(|| StreamInstrument::$variant($make))
        {
            StreamInstrument::$variant(x) => Arc::clone(x),
            other => panic!(
                "stream metric {:?} already registered as {}, requested {}",
                $name,
                other.kind(),
                stringify!($variant)
            ),
        }
    }};
}

impl StreamRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn windowed_counter(&self, name: &'static str, spec: WindowSpec) -> Arc<WindowedCounter> {
        fetch_or_insert!(self, name, Counter, Arc::new(WindowedCounter::new(spec)))
    }

    pub fn windowed_histogram(
        &self,
        name: &'static str,
        spec: WindowSpec,
        bounds: &[f64],
    ) -> Arc<WindowedHistogram> {
        fetch_or_insert!(
            self,
            name,
            Histogram,
            Arc::new(WindowedHistogram::new(spec, bounds))
        )
    }

    pub fn counter_family(
        &self,
        name: &'static str,
        label_names: &'static [&'static str],
        spec: WindowSpec,
        cap: usize,
    ) -> Arc<CounterFamily> {
        fetch_or_insert!(
            self,
            name,
            Family,
            Arc::new(CounterFamily::new(name, label_names, spec, cap))
        )
    }

    pub fn detector(&self, name: &'static str, cfg: CusumConfig) -> Arc<DriftDetector> {
        fetch_or_insert!(self, name, Detector, Arc::new(DriftDetector::new(cfg)))
    }

    /// Read-only snapshot of every instrument. `window_secs` trims the
    /// windowed views to the most recent `ceil(secs / bucket)` buckets
    /// (clamped to the ring size); `None` uses each instrument's full
    /// window.
    pub fn snapshot(&self, window_secs: Option<f64>) -> StreamSnapshot {
        let map = self.instruments.lock().unwrap();
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        let mut families = Vec::new();
        let mut detectors = Vec::new();
        for (name, inst) in map.iter() {
            match inst {
                StreamInstrument::Counter(c) => {
                    let view = match window_secs {
                        None => c.window(),
                        Some(secs) => c.window_secs(secs),
                    };
                    counters.push(StreamCounterSnapshot {
                        name,
                        view,
                        stale_records: c.stale_records(),
                    });
                }
                StreamInstrument::Histogram(h) => {
                    let view = match window_secs {
                        None => h.window(),
                        Some(secs) => h.window_secs(secs),
                    };
                    histograms.push(StreamHistogramSnapshot {
                        name,
                        view,
                        nan_count: h.nan_count(),
                        stale_records: h.stale_records(),
                    });
                }
                StreamInstrument::Family(f) => {
                    families.push(StreamFamilySnapshot {
                        name,
                        label_names: f.label_names(),
                        series: f.series_snapshot(),
                        overflow_events: f.overflow_events(),
                    });
                }
                StreamInstrument::Detector(d) => {
                    detectors.push(StreamDetectorSnapshot {
                        name,
                        state: d.state(),
                    });
                }
            }
        }
        StreamSnapshot {
            counters,
            histograms,
            families,
            detectors,
        }
    }
}

/// Snapshot structs — all fields public so exposition layers (JSON,
/// Prometheus, golden tests) can be built outside this module.
pub struct StreamCounterSnapshot {
    pub name: &'static str,
    pub view: WindowView,
    pub stale_records: u64,
}

pub struct StreamHistogramSnapshot {
    pub name: &'static str,
    pub view: WindowView,
    pub nan_count: u64,
    pub stale_records: u64,
}

pub struct StreamFamilySnapshot {
    pub name: &'static str,
    pub label_names: &'static [&'static str],
    pub series: Vec<(Vec<String>, u64, WindowView)>,
    pub overflow_events: u64,
}

pub struct StreamDetectorSnapshot {
    pub name: &'static str,
    pub state: DriftState,
}

#[derive(Default)]
pub struct StreamSnapshot {
    pub counters: Vec<StreamCounterSnapshot>,
    pub histograms: Vec<StreamHistogramSnapshot>,
    pub families: Vec<StreamFamilySnapshot>,
    pub detectors: Vec<StreamDetectorSnapshot>,
}

impl StreamSnapshot {
    pub fn to_json(&self) -> Json {
        let mut root = Vec::new();
        let mut counters = Vec::new();
        for c in &self.counters {
            counters.push((
                c.name.to_string(),
                Json::Obj(vec![
                    ("window_secs".to_string(), Json::from(c.view.window_secs)),
                    ("count".to_string(), Json::from(c.view.count as f64)),
                    ("rate".to_string(), Json::from(c.view.rate())),
                    (
                        "stale_records".to_string(),
                        Json::from(c.stale_records as f64),
                    ),
                ]),
            ));
        }
        root.push(("counters".to_string(), Json::Obj(counters)));
        let mut hists = Vec::new();
        for h in &self.histograms {
            let mut obj = vec![
                ("window_secs".to_string(), Json::from(h.view.window_secs)),
                ("count".to_string(), Json::from(h.view.count as f64)),
                ("sum".to_string(), Json::from(h.view.sum)),
                ("rate".to_string(), Json::from(h.view.rate())),
                ("nan_count".to_string(), Json::from(h.nan_count as f64)),
                (
                    "stale_records".to_string(),
                    Json::from(h.stale_records as f64),
                ),
            ];
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                if let Some(v) = h.view.quantile(q) {
                    obj.push((label.to_string(), Json::from(v)));
                }
            }
            hists.push((h.name.to_string(), Json::Obj(obj)));
        }
        root.push(("histograms".to_string(), Json::Obj(hists)));
        let mut fams = Vec::new();
        for f in &self.families {
            let mut series = Vec::new();
            for (values, total, view) in &f.series {
                let label = f
                    .label_names
                    .iter()
                    .zip(values.iter())
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(",");
                series.push((
                    label,
                    Json::Obj(vec![
                        ("total".to_string(), Json::from(*total as f64)),
                        ("rate".to_string(), Json::from(view.rate())),
                    ]),
                ));
            }
            fams.push((
                f.name.to_string(),
                Json::Obj(vec![
                    (
                        "labels".to_string(),
                        Json::Arr(
                            f.label_names
                                .iter()
                                .map(|l| Json::Str(l.to_string()))
                                .collect(),
                        ),
                    ),
                    ("series".to_string(), Json::Obj(series)),
                    (
                        "overflow_events".to_string(),
                        Json::from(f.overflow_events as f64),
                    ),
                ]),
            ));
        }
        root.push(("families".to_string(), Json::Obj(fams)));
        let mut dets = Vec::new();
        for d in &self.detectors {
            dets.push((
                d.name.to_string(),
                Json::Obj(vec![
                    (
                        "observations".to_string(),
                        Json::from(d.state.observations as f64),
                    ),
                    ("mean".to_string(), Json::from(d.state.mean)),
                    ("dev".to_string(), Json::from(d.state.dev)),
                    ("s_pos".to_string(), Json::from(d.state.s_pos)),
                    ("s_neg".to_string(), Json::from(d.state.s_neg)),
                    ("alarms".to_string(), Json::from(d.state.alarms as f64)),
                    ("drifted".to_string(), Json::Bool(d.state.drifted)),
                ]),
            ));
        }
        root.push(("detectors".to_string(), Json::Obj(dets)));
        Json::Obj(root)
    }
}

fn global() -> &'static StreamRegistry {
    static GLOBAL: OnceLock<StreamRegistry> = OnceLock::new();
    GLOBAL.get_or_init(StreamRegistry::new)
}

/// Fetch/register a windowed counter in the global stream registry
/// (default one-minute window).
pub fn windowed_counter(name: &'static str) -> Arc<WindowedCounter> {
    global().windowed_counter(name, DEFAULT_WINDOW)
}

/// Fetch/register a windowed histogram in the global stream registry.
pub fn windowed_histogram(name: &'static str, bounds: &[f64]) -> Arc<WindowedHistogram> {
    global().windowed_histogram(name, DEFAULT_WINDOW, bounds)
}

/// Fetch/register a labeled counter family (default cap).
pub fn counter_family(
    name: &'static str,
    label_names: &'static [&'static str],
) -> Arc<CounterFamily> {
    global().counter_family(name, label_names, DEFAULT_WINDOW, DEFAULT_FAMILY_CAP)
}

/// Fetch/register a labeled counter family with an explicit cap.
pub fn counter_family_with_cap(
    name: &'static str,
    label_names: &'static [&'static str],
    cap: usize,
) -> Arc<CounterFamily> {
    global().counter_family(name, label_names, DEFAULT_WINDOW, cap)
}

/// Fetch/register a drift detector in the global stream registry.
pub fn detector(name: &'static str, cfg: CusumConfig) -> Arc<DriftDetector> {
    global().detector(name, cfg)
}

/// Snapshot the global stream registry.
pub fn snapshot(window_secs: Option<f64>) -> StreamSnapshot {
    global().snapshot(window_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_window_counts_recent_buckets_only() {
        let c = WindowedCounter::new(WindowSpec::new(100, 4));
        assert!(c.add_at(0, 3));
        assert!(c.add_at(1, 2));
        assert!(c.add_at(2, 1));
        assert_eq!(c.window_at(2).count, 6);
        // Ring holds 4 buckets; at idx 5 only idx 2..=5 survive — and
        // idx 0 and 1 were rotated out when 4 and 5 claimed the slots.
        assert!(c.add_at(4, 10));
        assert!(c.add_at(5, 20));
        assert_eq!(c.window_at(5).count, 31);
    }

    #[test]
    fn stale_record_is_dropped_and_counted() {
        let c = WindowedCounter::new(WindowSpec::new(100, 2));
        assert!(c.add_at(5, 1));
        assert!(
            !c.add_at(1, 1),
            "bucket 1 already rotated out of a 2-slot ring"
        );
        assert_eq!(c.stale_records(), 1);
        assert_eq!(c.window_at(5).count, 1);
    }

    #[test]
    fn histogram_window_quantiles_match_cumulative_math() {
        let bounds = [1.0, 2.0, 4.0];
        let h = WindowedHistogram::new(WindowSpec::new(1000, 8), &bounds);
        for v in [0.5, 1.5, 1.5, 3.0, 10.0] {
            assert!(h.record_at(3, v));
        }
        let view = h.window_at(3);
        assert_eq!(view.count, 5);
        let cumulative = crate::metrics::Registry::new().histogram("h", &bounds);
        for v in [0.5, 1.5, 1.5, 3.0, 10.0] {
            cumulative.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(view.quantile(q), cumulative.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_nan_is_quarantined() {
        let h = WindowedHistogram::new(WindowSpec::new(1000, 2), &[1.0]);
        assert!(!h.record_at(0, f64::NAN));
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.window_at(0).count, 0);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(20.0);
        assert_eq!(e.value(), Some(15.0));
    }

    #[test]
    fn cusum_quiet_on_stationary_stream() {
        let d = DriftDetector::new(CusumConfig::default());
        // Deterministic pseudo-noise around 10.0.
        let mut x = 7u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            d.observe(10.0 + noise);
        }
        assert_eq!(d.state().alarms, 0, "stationary stream must not alarm");
        assert!(!d.state().drifted);
    }

    #[test]
    fn cusum_fires_on_level_shift() {
        let d = DriftDetector::new(CusumConfig::default());
        let mut x = 7u64;
        let mut noise = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..200 {
            d.observe(10.0 + noise());
        }
        assert_eq!(d.state().alarms, 0);
        let mut fired = false;
        for _ in 0..100 {
            if d.observe(25.0 + noise()) {
                fired = true;
                // "Recent alarm" flag is up right when the alarm fires;
                // it decays once the EWMA reference re-adapts.
                assert!(d.state().drifted);
                break;
            }
        }
        assert!(fired, "5x-sigma level shift must raise a CUSUM alarm");
        assert!(d.state().alarms >= 1);
    }

    #[test]
    fn family_caps_cardinality_into_overflow_series() {
        let f = CounterFamily::new("t", &["who"], WindowSpec::new(1000, 4), 2);
        f.add(&["a"], 1);
        f.add(&["b"], 2);
        f.add(&["c"], 3); // over cap: folds into __overflow__
        f.add(&["d"], 4);
        f.add(&["a"], 5); // existing series still works past the cap
        assert_eq!(f.overflow_events(), 2);
        let snap = f.series_snapshot();
        let totals: BTreeMap<String, u64> =
            snap.iter().map(|(k, t, _)| (k[0].clone(), *t)).collect();
        assert_eq!(totals.get("a"), Some(&6));
        assert_eq!(totals.get("b"), Some(&2));
        assert_eq!(totals.get(OVERFLOW_LABEL), Some(&7));
        assert_eq!(totals.get("c"), None);
    }

    #[test]
    #[should_panic(expected = "label values")]
    fn family_panics_on_wrong_label_arity() {
        let f = CounterFamily::new("t", &["a", "b"], WindowSpec::new(1000, 4), 4);
        f.add(&["only-one"], 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_panics_on_kind_mismatch() {
        let r = StreamRegistry::new();
        r.windowed_counter("x", DEFAULT_WINDOW);
        r.windowed_histogram("x", DEFAULT_WINDOW, &[1.0]);
    }

    // NOTE: set_enabled() toggling is covered in tests/stream_toggle.rs
    // (its own binary) — flipping the process-global flag here would
    // race the other unit tests in this process.

    #[test]
    fn narrowed_window_excludes_old_histogram_buckets() {
        let h = WindowedHistogram::new(WindowSpec::new(100, 10), &[1.0]);
        assert!(h.record_at(0, 0.5));
        assert!(h.record_at(9, 0.5));
        assert_eq!(h.window_at(9).count, 2);
        let narrow = h.window_span(9, 1);
        assert_eq!(narrow.count, 1, "narrow window must exclude bucket 0");
        assert!((narrow.window_secs - 0.1).abs() < 1e-12);
    }
}
