//! Flamegraph-style text report over a Chrome trace file captured with
//! `--trace` (see DESIGN.md §5d).
//!
//! ```text
//! trace_report trace.json [--top N]
//! ```
//!
//! Prints two tables:
//!
//! 1. **Span aggregation** — per span name: invocation count, total
//!    wall time (including children) and self time (excluding child
//!    spans), with self time as a share of traced wall time (the
//!    summed duration of root spans — self times partition it, so the
//!    full table always accounts for 100%).
//! 2. **Op table** — the embedded `"opProfile"` (per tensor-`Op`-kind
//!    forward/backward wall time, calls, elements, FLOP estimates),
//!    top N rows by self time, with the share of total op time the
//!    shown rows cover.
//!
//! The trace is validated first; a malformed file exits 1.

use std::process::ExitCode;

use telemetry::json::{self, Json};
use telemetry::trace;

fn fail(msg: String) -> ExitCode {
    eprintln!("trace_report: {msg}");
    ExitCode::FAILURE
}

fn human_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail("usage: trace_report <trace.json> [--top N]".into());
    };
    let mut top = 10usize;
    while let Some(flag) = args.next() {
        match (flag.as_str(), args.next().and_then(|v| v.parse().ok())) {
            ("--top", Some(n)) => top = n,
            (other, _) => return fail(format!("bad flag or value: {other}")),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => return fail(format!("cannot read {path}: {err}")),
    };
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(err) => return fail(format!("{path}: {err}")),
    };
    let stats = match trace::validate_chrome(&doc) {
        Ok(stats) => stats,
        Err(err) => return fail(format!("{path}: invalid trace: {err}")),
    };
    let (aggs, root_ns) = match trace::aggregate_chrome(&doc) {
        Ok(out) => out,
        Err(err) => return fail(format!("{path}: {err}")),
    };

    println!(
        "trace: {} span(s) on {} track(s), traced wall time {} ms",
        stats.spans,
        stats.tracks,
        human_ms(root_ns)
    );
    let dropped = doc.get("droppedEvents").and_then(Json::as_u64).unwrap_or(0);
    let unmatched = doc
        .get("unmatchedEvents")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if dropped + unmatched > 0 {
        println!("note: {dropped} event(s) dropped by ring wrap, {unmatched} unmatched");
    }

    println!();
    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>7}",
        "span", "count", "total_ms", "self_ms", "self%"
    );
    let mut shown_self = 0u64;
    for agg in aggs.iter().take(top) {
        shown_self += agg.self_ns;
        let share = if root_ns > 0 {
            100.0 * agg.self_ns as f64 / root_ns as f64
        } else {
            0.0
        };
        println!(
            "{:<24} {:>8} {:>12} {:>12} {:>6.1}%",
            format!("{}/{}", agg.cat, agg.name),
            agg.count,
            human_ms(agg.total_ns),
            human_ms(agg.self_ns),
            share
        );
    }
    if root_ns > 0 {
        println!(
            "top {} of {} span name(s) cover {:.1}% of traced wall time",
            top.min(aggs.len()),
            aggs.len(),
            100.0 * shown_self as f64 / root_ns as f64
        );
    }

    let Some(profile_json) = doc.get("opProfile") else {
        println!();
        println!("no opProfile embedded in this trace");
        return ExitCode::SUCCESS;
    };
    // The bin must not depend on `tensor` (dependency direction), so it
    // reads the opProfile rows structurally.
    let Json::Arr(rows) = profile_json else {
        return fail("opProfile is not an array".into());
    };
    struct OpRow {
        op: String,
        fwd_calls: u64,
        fwd_ns: u64,
        bwd_calls: u64,
        bwd_ns: u64,
        elems: u64,
        flops: u64,
    }
    let mut ops = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let field = |key: &str| row.get(key).and_then(Json::as_u64);
        let (Some(op), Some(fwd_calls), Some(fwd_ns), Some(bwd_calls), Some(bwd_ns)) = (
            row.get("op").and_then(Json::as_str),
            field("fwd_calls"),
            field("fwd_ns"),
            field("bwd_calls"),
            field("bwd_ns"),
        ) else {
            return fail(format!("opProfile[{i}]: missing fields"));
        };
        ops.push(OpRow {
            op: op.to_string(),
            fwd_calls,
            fwd_ns,
            bwd_calls,
            bwd_ns,
            elems: field("elems").unwrap_or(0),
            // Forward + backward FLOP estimates (bwd_flops is absent
            // in pre-PR7 traces; treat as 0).
            flops: field("flops").unwrap_or(0) + field("bwd_flops").unwrap_or(0),
        });
    }
    ops.sort_by_key(|row| std::cmp::Reverse(row.fwd_ns + row.bwd_ns));
    let total_op_ns: u64 = ops.iter().map(|r| r.fwd_ns + r.bwd_ns).sum();

    println!();
    println!(
        "{:<16} {:>9} {:>11} {:>9} {:>11} {:>12} {:>12} {:>7}",
        "op", "fwd_calls", "fwd_ms", "bwd_calls", "bwd_ms", "elems", "mflops", "self%"
    );
    let mut shown_op_ns = 0u64;
    for row in ops.iter().take(top) {
        let self_ns = row.fwd_ns + row.bwd_ns;
        shown_op_ns += self_ns;
        let share = if total_op_ns > 0 {
            100.0 * self_ns as f64 / total_op_ns as f64
        } else {
            0.0
        };
        println!(
            "{:<16} {:>9} {:>11} {:>9} {:>11} {:>12} {:>12.1} {:>6.1}%",
            row.op,
            row.fwd_calls,
            human_ms(row.fwd_ns),
            row.bwd_calls,
            human_ms(row.bwd_ns),
            row.elems,
            row.flops as f64 / 1e6,
            share
        );
    }
    if total_op_ns > 0 {
        let covered = 100.0 * shown_op_ns as f64 / total_op_ns as f64;
        println!(
            "top {} of {} op kind(s) cover {covered:.1}% of op time \
             ({} ms op time = {:.1}% of traced wall time)",
            top.min(ops.len()),
            ops.len(),
            human_ms(total_op_ns),
            if root_ns > 0 {
                100.0 * total_op_ns as f64 / root_ns as f64
            } else {
                0.0
            },
        );
        // The acceptance gate for this table: the printed rows must
        // explain at least 90% of measured op self time.
        if covered < 90.0 {
            eprintln!(
                "trace_report: top-{top} op rows cover only {covered:.1}% (<90%) of op time; \
                 re-run with a larger --top"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
