//! Validates a telemetry run log (JSONL) against the workspace schema;
//! the CI smoke stage runs this so the sink can never silently rot.
//!
//! Checks:
//! * the file is non-empty and every line parses as a JSON object with
//!   a string `type` field;
//! * the first line is the run manifest;
//! * per cell (`ranker` × `design` labels), `step` events count up from
//!   0 with no gaps, their phase durations are finite and non-negative,
//!   and the cumulative `observations` equals
//!   `episodes × (step + 1)` (episodes read from the manifest);
//! * with `--expect-steps N`, every cell logged exactly `N` steps;
//!   with `--expect-cells N`, exactly `N` cells logged steps.
//!
//! Exit code 0 on success, 1 with a diagnostic on the first violation.

use std::collections::BTreeMap;
use std::process::ExitCode;

use telemetry::json::{self, Json};

struct CellState {
    next_step: u64,
    observations: u64,
}

fn fail(msg: String) -> ExitCode {
    eprintln!("validate_jsonl: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail(
            "usage: validate_jsonl <run.jsonl> [--expect-steps N] [--expect-cells N]".into(),
        );
    };
    let mut expect_steps: Option<u64> = None;
    let mut expect_cells: Option<usize> = None;
    while let Some(flag) = args.next() {
        let value = args.next().and_then(|v| v.parse().ok());
        match (flag.as_str(), value) {
            ("--expect-steps", Some(v)) => expect_steps = Some(v),
            ("--expect-cells", Some(v)) => expect_cells = Some(v as usize),
            (other, _) => return fail(format!("bad flag or value: {other}")),
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => return fail(format!("cannot read {path}: {err}")),
    };
    if text.lines().next().is_none() {
        return fail(format!("{path} is empty"));
    }

    let mut episodes: Option<u64> = None;
    let mut cells: BTreeMap<String, CellState> = BTreeMap::new();
    let mut events = 0u64;

    for (lineno, line) in text.lines().enumerate() {
        let value = match json::parse(line) {
            Ok(value) => value,
            Err(err) => return fail(format!("line {}: {err}", lineno + 1)),
        };
        let Some(kind) = value.get("type").and_then(Json::as_str) else {
            return fail(format!("line {}: no string `type` field", lineno + 1));
        };
        if lineno == 0 {
            if kind != "manifest" {
                return fail(format!("first line has type `{kind}`, expected `manifest`"));
            }
            episodes = value.get("episodes").and_then(Json::as_u64);
            continue;
        }
        events += 1;
        if kind != "step" {
            continue; // observation/metrics/... lines only need to parse
        }

        // Cells are whatever label combination the producer attached;
        // numeric labels (e.g. a `threads` tag) render as themselves.
        let cell = ["dataset", "ranker", "design", "threads"]
            .iter()
            .filter_map(|k| value.get(k))
            .map(|v| match v {
                Json::Str(s) => s.clone(),
                other => other.render(),
            })
            .collect::<Vec<_>>()
            .join("|");
        let Some(step) = value.get("step").and_then(Json::as_u64) else {
            return fail(format!("line {}: step event without `step`", lineno + 1));
        };
        let state = cells.entry(cell.clone()).or_insert(CellState {
            next_step: 0,
            observations: 0,
        });
        if step != state.next_step {
            return fail(format!(
                "line {}: cell `{cell}` logged step {step}, expected {} (steps must be monotone, gap-free)",
                lineno + 1,
                state.next_step
            ));
        }
        state.next_step += 1;

        for field in ["sample_secs", "score_secs", "update_secs"] {
            match value.get(field).and_then(Json::as_f64) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {}
                other => {
                    return fail(format!(
                        "line {}: step event `{field}` invalid: {other:?}",
                        lineno + 1
                    ))
                }
            }
        }

        let Some(observations) = value.get("observations").and_then(Json::as_u64) else {
            return fail(format!(
                "line {}: step event without `observations`",
                lineno + 1
            ));
        };
        if observations <= state.observations {
            return fail(format!(
                "line {}: cell `{cell}` observations not increasing ({} -> {observations})",
                lineno + 1,
                state.observations
            ));
        }
        state.observations = observations;
        if let Some(m) = episodes {
            let expected = m * (step + 1);
            if observations != expected {
                return fail(format!(
                    "line {}: cell `{cell}` step {step} observations = {observations}, \
                     expected episodes x (step+1) = {expected}",
                    lineno + 1
                ));
            }
        }
    }

    if let Some(want) = expect_steps {
        for (cell, state) in &cells {
            if state.next_step != want {
                return fail(format!(
                    "cell `{cell}` logged {} steps, expected {want}",
                    state.next_step
                ));
            }
        }
    }
    if let Some(want) = expect_cells {
        if cells.len() != want {
            return fail(format!(
                "{} cells logged steps, expected {want}",
                cells.len()
            ));
        }
    }

    println!(
        "validate_jsonl: OK — {} event line(s), {} cell(s){}",
        events,
        cells.len(),
        episodes.map_or(String::new(), |m| format!(", {m} episodes/step")),
    );
    ExitCode::SUCCESS
}
