//! Validates a telemetry run log (JSONL) against the workspace schema;
//! the CI smoke stage runs this so the sink can never silently rot.
//!
//! Checks:
//! * the file is non-empty and every line parses as a JSON object with
//!   a string `type` field;
//! * the first line is the run manifest;
//! * per cell (`ranker` × `design` labels), `step` events count up from
//!   0 with no gaps, their phase durations are finite and non-negative,
//!   and the cumulative `observations` equals
//!   `episodes × (step + 1)` (episodes read from the manifest);
//! * with `--expect-steps N`, every cell logged exactly `N` steps;
//!   with `--expect-cells N`, exactly `N` cells logged steps;
//! * with `--trace FILE`, `FILE` additionally validates as a Chrome
//!   Trace Event document per the workspace trace schema: every span
//!   id has exactly one balanced begin/end pair, timestamps are
//!   monotone per track, and `B`/`E` events nest LIFO per track
//!   (see `telemetry::trace::validate_chrome`). `--trace` may also be
//!   used alone, without a run log.
//! * with `--zoo`, the run log is an attack-zoo grid log (`exp_zoo`)
//!   instead: after the manifest, `zoo_step` events per cell (`attack`
//!   × `ranker` × `n` × `t` × `transport` labels) must be strictly
//!   increasing and gap-free — starting from 0 unless the cell logged
//!   a `zoo_resumed` event first — with non-decreasing cumulative
//!   `observations`; every stepping cell must finish with exactly one
//!   `zoo_cell` summary whose `observations` respects its declared
//!   `budget_observations` and whose `peak_fake_users` /
//!   `peak_clicks_per_user` respect the cell's `n` / `t` labels (the
//!   guard's budget accounting, visible in telemetry);
//! * with `--access-log FILE`, `FILE` validates as a serve access log:
//!   a leading `{"type":"manifest","kind":"access-log"}` line, then
//!   `access` events whose `method` is a known verb, whose `status` is
//!   in the served protocol's vocabulary (200/400/404/405/409/413/500),
//!   whose `generation` never decreases globally (snapshot swaps are
//!   totally ordered), whose `ts_micros` is monotone non-decreasing
//!   per `conn` (events on one connection are serialized), and whose
//!   numeric `shard` / `lag_micros` fields are present — `shard` must
//!   stay inside the manifest's declared `shards` count. The file must
//!   end with exactly one `{"type":"access-summary"}` line whose drop
//!   accounting balances: its `events` equals the request lines
//!   actually present in the file (parse-error lines, method `"?"`,
//!   are outside the ledger), and `events + dropped` equals the
//!   server's `completed`-request ledger — every completed request is
//!   either in the file or counted as dropped. Like `--trace`, it may
//!   be used alone. Judged feedback events (those carrying a `verdict`
//!   field) are additionally checked: the verdict must be in the
//!   defense vocabulary (`admit`/`flag`/`rate_limit`/`throttle`), a
//!   `detector` string must name the judge, and the queue-depth
//!   bracket must balance — `pending == pending_before + accepted`
//!   with `accepted <= offered`, i.e. rejected feedback never
//!   increments queue depth;
//! * with `--defense`, the run log is a defense-matrix log
//!   (`exp_defense`) instead: after the manifest, every cell (`attack`
//!   × `defense` × `ranker` × `transport` labels) must log exactly one
//!   `defense_cell` summary whose verdict counts balance against the
//!   stack's ledger (`admitted + flagged + rate_limited + throttled ==
//!   offered`), whose `precision` / `recall` / `organic_fpr` are
//!   finite and inside `[0, 1]`, and whose undefended cells
//!   (`defense == "none"`) reject nothing.
//!
//! Exit code 0 on success, 1 with a diagnostic on the first violation.

use std::collections::BTreeMap;
use std::process::ExitCode;

use telemetry::json::{self, Json};
use telemetry::trace;

struct CellState {
    next_step: u64,
    observations: u64,
}

fn fail(msg: String) -> ExitCode {
    eprintln!("validate_jsonl: {msg}");
    ExitCode::FAILURE
}

/// Parses and validates a Chrome trace file; returns a summary line.
fn check_trace(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let doc = json::parse(&text).map_err(|err| format!("{path}: {err}"))?;
    let stats = trace::validate_chrome(&doc).map_err(|err| format!("{path}: {err}"))?;
    Ok(format!(
        "trace OK — {} span(s) on {} track(s)",
        stats.spans, stats.tracks
    ))
}

const KNOWN_METHODS: [&str; 5] = ["GET", "POST", "PUT", "DELETE", "?"];
const KNOWN_STATUSES: [u64; 7] = [200, 400, 404, 405, 409, 413, 500];
/// The defense admission vocabulary (`recsys::defense::Verdict`).
const KNOWN_VERDICTS: [&str; 4] = ["admit", "flag", "rate_limit", "throttle"];

/// Validates a serve access log; returns a summary line.
fn check_access_log(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err(format!("{path} is empty"));
    };
    let manifest = json::parse(first).map_err(|err| format!("{path} line 1: {err}"))?;
    if manifest.get("type").and_then(Json::as_str) != Some("manifest")
        || manifest.get("kind").and_then(Json::as_str) != Some("access-log")
    {
        return Err(format!(
            "{path} line 1 is not an access-log manifest: {first}"
        ));
    }

    // A PR-6 manifest discloses the shard count; when present, every
    // event's `shard` must stay inside it.
    let declared_shards = manifest.get("shards").and_then(Json::as_u64);

    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_generation: BTreeMap<u64, u64> = BTreeMap::new();
    let mut shards_seen: BTreeMap<u64, u64> = BTreeMap::new();
    let mut max_generation = 0u64;
    let mut events = 0u64;
    let mut counted = 0u64;
    let mut judged = 0u64;
    let mut summary: Option<(u64, u64, u64)> = None;
    for (lineno, line) in lines {
        let at = |msg: String| format!("{path} line {}: {msg}", lineno + 1);
        let value = json::parse(line).map_err(|err| at(err.to_string()))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| at("no string `type` field".into()))?;
        if summary.is_some() {
            return Err(at(format!(
                "`{kind}` line after the access-summary (summary must be last)"
            )));
        }
        if kind == "access-summary" {
            let field = |name: &str| {
                value
                    .get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| at(format!("access-summary without numeric `{name}`")))
            };
            summary = Some((field("events")?, field("dropped")?, field("completed")?));
            continue;
        }
        if kind != "access" {
            continue; // metrics/... trailers only need to parse
        }
        events += 1;
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| at(format!("access event without numeric `{name}`")))
        };
        let conn = field("conn")?;
        let status = field("status")?;
        let generation = field("generation")?;
        let ts = field("ts_micros")?;
        field("micros")?;
        field("lag_micros")?;
        let shard = field("shard")?;
        if let Some(n) = declared_shards {
            if shard >= n.max(1) {
                return Err(at(format!(
                    "shard {shard} outside the manifest's {n} shard(s)"
                )));
            }
        }
        *shards_seen.entry(shard).or_insert(0) += 1;
        let method = value
            .get("method")
            .and_then(Json::as_str)
            .ok_or_else(|| at("access event without `method`".into()))?;
        if !KNOWN_METHODS.contains(&method) {
            return Err(at(format!("unknown method {method:?}")));
        }
        // Parse-error lines carry method "?" — they are logged but sit
        // outside the accepted/completed ledger the summary balances.
        if method != "?" {
            counted += 1;
        }
        if value.get("path").and_then(Json::as_str).is_none() {
            return Err(at("access event without `path`".into()));
        }
        if !KNOWN_STATUSES.contains(&status) {
            return Err(at(format!(
                "status {status} outside the served vocabulary {KNOWN_STATUSES:?}"
            )));
        }
        // Snapshot publication is a totally-ordered swap and requests
        // on one connection are serialized, so per connection both the
        // clock and the observed generation are non-decreasing. (Across
        // connections, log lines of requests straddling a swap may
        // interleave, so only per-conn order is checkable.)
        max_generation = max_generation.max(generation);
        if let Some(&prev) = last_generation.get(&conn) {
            if generation < prev {
                return Err(at(format!(
                    "generation regressed on conn {conn}: {prev} -> {generation}"
                )));
            }
        }
        last_generation.insert(conn, generation);
        if let Some(&prev) = last_ts.get(&conn) {
            if ts < prev {
                return Err(at(format!(
                    "ts_micros regressed on conn {conn}: {prev} -> {ts}"
                )));
            }
        }
        last_ts.insert(conn, ts);
        // Judged feedback: the admission verdict rides along. The
        // queue-depth bracket is snapshot under the admission lock, so
        // it is locally checkable even under concurrent clients —
        // rejected feedback must never increment queue depth.
        if let Some(verdict) = value.get("verdict") {
            judged += 1;
            let verdict = verdict
                .as_str()
                .ok_or_else(|| at("`verdict` is not a string".into()))?;
            if !KNOWN_VERDICTS.contains(&verdict) {
                return Err(at(format!(
                    "verdict {verdict:?} outside the defense vocabulary {KNOWN_VERDICTS:?}"
                )));
            }
            if value.get("detector").and_then(Json::as_str).is_none() {
                return Err(at("judged feedback event without `detector`".into()));
            }
            let offered = field("offered")?;
            let accepted = field("accepted")?;
            let pending_before = field("pending_before")?;
            let pending = field("pending")?;
            if accepted > offered {
                return Err(at(format!("accepted {accepted} exceeds offered {offered}")));
            }
            if pending != pending_before + accepted {
                return Err(at(format!(
                    "queue depth does not bracket the admission: pending {pending} != \
                     pending_before {pending_before} + accepted {accepted}"
                )));
            }
        }
    }
    // Drop accounting: every request the server completed must be in
    // the file or explicitly counted as dropped by the summary.
    let Some((sum_events, sum_dropped, sum_completed)) = summary else {
        return Err(format!(
            "{path} has no trailing access-summary line (written on graceful shutdown)"
        ));
    };
    if sum_events != counted {
        return Err(format!(
            "{path}: access-summary claims {sum_events} event(s) but the file holds \
             {counted} ledger-counted request line(s)"
        ));
    }
    if sum_events + sum_dropped != sum_completed {
        return Err(format!(
            "{path}: drop accounting does not balance: events {sum_events} + dropped \
             {sum_dropped} != completed {sum_completed}"
        ));
    }
    Ok(format!(
        "access log OK — {events} request(s) on {} connection(s), {} shard(s), \
         {} generation(s), {judged} judged, {sum_dropped} dropped of {sum_completed} completed",
        last_ts.len(),
        shards_seen.len().max(1),
        max_generation + 1
    ))
}

/// Per-cell bookkeeping for the `--zoo` schema.
struct ZooCellState {
    next_step: Option<u64>,
    resumed: bool,
    observations: u64,
    summarized: bool,
}

/// Validates an `exp_zoo` grid log; returns (cells, summary line).
fn check_zoo_log(path: &str) -> Result<(usize, String), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err(format!("{path} is empty"));
    };
    let manifest = json::parse(first).map_err(|err| format!("{path} line 1: {err}"))?;
    if manifest.get("type").and_then(Json::as_str) != Some("manifest") {
        return Err(format!("{path} line 1 is not a manifest: {first}"));
    }

    let mut cells: BTreeMap<String, ZooCellState> = BTreeMap::new();
    let mut events = 0u64;
    for (lineno, line) in lines {
        let at = |msg: String| format!("{path} line {}: {msg}", lineno + 1);
        let value = json::parse(line).map_err(|err| at(err.to_string()))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| at("no string `type` field".into()))?;
        if !kind.starts_with("zoo_") {
            continue; // metrics/... trailers only need to parse
        }
        events += 1;
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| at(format!("{kind} event without numeric `{name}`")))
        };
        let cell_key = {
            let mut parts = Vec::new();
            for label in ["attack", "ranker", "n", "t", "transport"] {
                let v = value
                    .get(label)
                    .ok_or_else(|| at(format!("{kind} event without `{label}` label")))?;
                parts.push(match v {
                    Json::Str(s) => s.clone(),
                    other => other.render(),
                });
            }
            parts.join("|")
        };
        let state = cells.entry(cell_key.clone()).or_insert(ZooCellState {
            next_step: None,
            resumed: false,
            observations: 0,
            summarized: false,
        });
        if state.summarized && kind != "zoo_cell" {
            return Err(at(format!(
                "cell `{cell_key}` logged {kind} after its zoo_cell summary"
            )));
        }
        match kind {
            "zoo_step" => {
                let step = field("step")?;
                let observations = field("observations")?;
                match state.next_step {
                    Some(expected) if step != expected => {
                        return Err(at(format!(
                            "cell `{cell_key}` logged step {step}, expected {expected} \
                             (steps must be monotone, gap-free)"
                        )));
                    }
                    None if step != 0 && !state.resumed => {
                        return Err(at(format!(
                            "cell `{cell_key}` starts at step {step} without a zoo_resumed event"
                        )));
                    }
                    _ => {}
                }
                state.next_step = Some(step + 1);
                if observations < state.observations {
                    return Err(at(format!(
                        "cell `{cell_key}` observations regressed ({} -> {observations})",
                        state.observations
                    )));
                }
                state.observations = observations;
            }
            "zoo_resumed" => {
                let step = field("step")?;
                state.resumed = true;
                state.next_step = Some(step);
            }
            "zoo_checkpoint" => {
                field("step")?;
                field("bytes")?;
            }
            "zoo_cell" => {
                if state.summarized {
                    return Err(at(format!("cell `{cell_key}` summarized twice")));
                }
                state.summarized = true;
                let steps = field("steps")?;
                let observations = field("observations")?;
                let budget = field("budget_observations")?;
                let peak_n = field("peak_fake_users")?;
                let peak_t = field("peak_clicks_per_user")?;
                if observations > budget {
                    return Err(at(format!(
                        "cell `{cell_key}` spent {observations} observation(s), \
                         over its declared budget of {budget}"
                    )));
                }
                if observations < state.observations {
                    return Err(at(format!(
                        "cell `{cell_key}` summary observations {observations} below \
                         the last step's {}",
                        state.observations
                    )));
                }
                // `steps` counts the full history (resume restores the
                // prefix), so it can only exceed the events seen here.
                if let Some(seen) = state.next_step {
                    if steps < seen {
                        return Err(at(format!(
                            "cell `{cell_key}` summary claims {steps} step(s) but \
                             {seen} were logged"
                        )));
                    }
                }
                // The n/t labels ARE the declared budget: the guard
                // must have kept the peaks inside them.
                let n = value.get("n").and_then(Json::as_u64).unwrap_or(0);
                let t = value.get("t").and_then(Json::as_u64).unwrap_or(0);
                if peak_n > n || peak_t > t {
                    return Err(at(format!(
                        "cell `{cell_key}` peaks {peak_n}x{peak_t} exceed the \
                         declared {n}x{t} budget"
                    )));
                }
            }
            other => return Err(at(format!("unknown zoo event type `{other}`"))),
        }
    }
    for (cell_key, state) in &cells {
        if !state.summarized {
            return Err(format!(
                "{path}: cell `{cell_key}` logged events but no zoo_cell summary"
            ));
        }
    }
    Ok((
        cells.len(),
        format!("zoo log OK — {events} event(s), {} cell(s)", cells.len()),
    ))
}

/// Validates an `exp_defense` matrix log; returns (cells, summary).
///
/// Every cell (`attack` × `defense` × `ranker` × `transport`) must
/// summarize exactly once, its verdict counts must balance against the
/// stack's ledger, and its detection-quality fields must be sane
/// probabilities. Undefended cells must reject nothing — a nonzero
/// rejection count under `defense == "none"` means verdicts leaked
/// from another cell's stack.
fn check_defense_log(path: &str) -> Result<(usize, String), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err(format!("{path} is empty"));
    };
    let manifest = json::parse(first).map_err(|err| format!("{path} line 1: {err}"))?;
    if manifest.get("type").and_then(Json::as_str) != Some("manifest") {
        return Err(format!("{path} line 1 is not a manifest: {first}"));
    }

    let mut cells: BTreeMap<String, u64> = BTreeMap::new();
    let mut events = 0u64;
    for (lineno, line) in lines {
        let at = |msg: String| format!("{path} line {}: {msg}", lineno + 1);
        let value = json::parse(line).map_err(|err| at(err.to_string()))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| at("no string `type` field".into()))?;
        if kind != "defense_cell" {
            continue; // metrics/... trailers only need to parse
        }
        events += 1;
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| at(format!("defense_cell without numeric `{name}`")))
        };
        let ratio = |name: &str| {
            let v = value
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| at(format!("defense_cell without numeric `{name}`")))?;
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(at(format!("`{name}` = {v} is not a probability in [0, 1]")));
            }
            Ok(v)
        };
        let mut parts = Vec::new();
        for label in ["attack", "defense", "ranker", "transport"] {
            let v = value
                .get(label)
                .and_then(Json::as_str)
                .ok_or_else(|| at(format!("defense_cell without `{label}` label")))?;
            parts.push(v.to_string());
        }
        let defense = parts[1].clone();
        let cell_key = parts.join("|");
        let count = cells.entry(cell_key.clone()).or_insert(0);
        *count += 1;
        if *count > 1 {
            return Err(at(format!("cell `{cell_key}` summarized twice")));
        }
        let offered = field("offered")?;
        let admitted = field("admitted")?;
        let flagged = field("flagged")?;
        let rate_limited = field("rate_limited")?;
        let throttled = field("throttled")?;
        let rejected = flagged + rate_limited + throttled;
        if admitted + rejected != offered {
            return Err(at(format!(
                "cell `{cell_key}` verdict counts do not balance the ledger: \
                 admitted {admitted} + flagged {flagged} + rate_limited {rate_limited} \
                 + throttled {throttled} != offered {offered}"
            )));
        }
        if defense == "none" && rejected != 0 {
            return Err(at(format!(
                "undefended cell `{cell_key}` rejected {rejected} trajectorie(s)"
            )));
        }
        ratio("precision")?;
        ratio("recall")?;
        ratio("organic_fpr")?;
    }
    if cells.is_empty() {
        return Err(format!("{path} has no defense_cell summaries"));
    }
    Ok((
        cells.len(),
        format!("defense log OK — {events} cell summarie(s)"),
    ))
}

fn main() -> ExitCode {
    let usage = "usage: validate_jsonl [<run.jsonl>] [--zoo] [--defense] [--expect-steps N] \
                 [--expect-cells N] [--trace FILE] [--access-log FILE]";
    let mut args = std::env::args().skip(1);
    let Some(first) = args.next() else {
        return fail(usage.into());
    };
    let mut expect_steps: Option<u64> = None;
    let mut expect_cells: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut access_path: Option<String> = None;
    let mut zoo = false;
    let mut defense = false;
    let path = if first == "--trace" || first == "--access-log" {
        match args.next() {
            Some(p) if first == "--trace" => trace_path = Some(p),
            Some(p) => access_path = Some(p),
            None => return fail(usage.into()),
        }
        None
    } else {
        Some(first)
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--zoo" => zoo = true,
            "--defense" => defense = true,
            "--trace" => match args.next() {
                Some(p) => trace_path = Some(p),
                None => return fail(usage.into()),
            },
            "--access-log" => match args.next() {
                Some(p) => access_path = Some(p),
                None => return fail(usage.into()),
            },
            other => {
                let value = args.next().and_then(|v| v.parse().ok());
                match (other, value) {
                    ("--expect-steps", Some(v)) => expect_steps = Some(v),
                    ("--expect-cells", Some(v)) => expect_cells = Some(v as usize),
                    (other, _) => return fail(format!("bad flag or value: {other}")),
                }
            }
        }
    }

    let trace_summary = match trace_path.as_deref().map(check_trace) {
        Some(Ok(summary)) => Some(summary),
        Some(Err(err)) => return fail(err),
        None => None,
    };
    let access_summary = match access_path.as_deref().map(check_access_log) {
        Some(Ok(summary)) => Some(summary),
        Some(Err(err)) => return fail(err),
        None => None,
    };
    let Some(path) = path else {
        // --trace/--access-log only: no run log to validate.
        let summary: Vec<String> = [trace_summary, access_summary]
            .into_iter()
            .flatten()
            .collect();
        println!("validate_jsonl: OK — {}", summary.join(", "));
        return ExitCode::SUCCESS;
    };

    if defense {
        if zoo || expect_steps.is_some() {
            return fail(
                "--defense validates cell summaries only; not valid with --zoo or --expect-steps"
                    .into(),
            );
        }
        let (cells, summary) = match check_defense_log(&path) {
            Ok(result) => result,
            Err(err) => return fail(err),
        };
        if let Some(want) = expect_cells {
            if cells != want {
                return fail(format!("{cells} defense cell(s) logged, expected {want}"));
            }
        }
        let extra: String = [trace_summary, access_summary]
            .into_iter()
            .flatten()
            .map(|s| format!(", {s}"))
            .collect();
        println!("validate_jsonl: OK — {summary}{extra}");
        return ExitCode::SUCCESS;
    }

    if zoo {
        if expect_steps.is_some() {
            return fail("--expect-steps is per-family in a zoo grid; not valid with --zoo".into());
        }
        let (cells, summary) = match check_zoo_log(&path) {
            Ok(result) => result,
            Err(err) => return fail(err),
        };
        if let Some(want) = expect_cells {
            if cells != want {
                return fail(format!("{cells} zoo cell(s) logged, expected {want}"));
            }
        }
        let extra: String = [trace_summary, access_summary]
            .into_iter()
            .flatten()
            .map(|s| format!(", {s}"))
            .collect();
        println!("validate_jsonl: OK — {summary}{extra}");
        return ExitCode::SUCCESS;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => return fail(format!("cannot read {path}: {err}")),
    };
    if text.lines().next().is_none() {
        return fail(format!("{path} is empty"));
    }

    let mut episodes: Option<u64> = None;
    let mut cells: BTreeMap<String, CellState> = BTreeMap::new();
    let mut events = 0u64;

    for (lineno, line) in text.lines().enumerate() {
        let value = match json::parse(line) {
            Ok(value) => value,
            Err(err) => return fail(format!("line {}: {err}", lineno + 1)),
        };
        let Some(kind) = value.get("type").and_then(Json::as_str) else {
            return fail(format!("line {}: no string `type` field", lineno + 1));
        };
        if lineno == 0 {
            if kind != "manifest" {
                return fail(format!("first line has type `{kind}`, expected `manifest`"));
            }
            episodes = value.get("episodes").and_then(Json::as_u64);
            continue;
        }
        events += 1;
        if kind != "step" {
            continue; // observation/metrics/... lines only need to parse
        }

        // Cells are whatever label combination the producer attached;
        // numeric labels (e.g. a `threads` tag) render as themselves.
        let cell = ["dataset", "ranker", "design", "threads"]
            .iter()
            .filter_map(|k| value.get(k))
            .map(|v| match v {
                Json::Str(s) => s.clone(),
                other => other.render(),
            })
            .collect::<Vec<_>>()
            .join("|");
        let Some(step) = value.get("step").and_then(Json::as_u64) else {
            return fail(format!("line {}: step event without `step`", lineno + 1));
        };
        let state = cells.entry(cell.clone()).or_insert(CellState {
            next_step: 0,
            observations: 0,
        });
        if step != state.next_step {
            return fail(format!(
                "line {}: cell `{cell}` logged step {step}, expected {} (steps must be monotone, gap-free)",
                lineno + 1,
                state.next_step
            ));
        }
        state.next_step += 1;

        for field in ["sample_secs", "score_secs", "update_secs"] {
            match value.get(field).and_then(Json::as_f64) {
                Some(secs) if secs.is_finite() && secs >= 0.0 => {}
                other => {
                    return fail(format!(
                        "line {}: step event `{field}` invalid: {other:?}",
                        lineno + 1
                    ))
                }
            }
        }

        let Some(observations) = value.get("observations").and_then(Json::as_u64) else {
            return fail(format!(
                "line {}: step event without `observations`",
                lineno + 1
            ));
        };
        if observations <= state.observations {
            return fail(format!(
                "line {}: cell `{cell}` observations not increasing ({} -> {observations})",
                lineno + 1,
                state.observations
            ));
        }
        state.observations = observations;
        if let Some(m) = episodes {
            let expected = m * (step + 1);
            if observations != expected {
                return fail(format!(
                    "line {}: cell `{cell}` step {step} observations = {observations}, \
                     expected episodes x (step+1) = {expected}",
                    lineno + 1
                ));
            }
        }
    }

    if let Some(want) = expect_steps {
        for (cell, state) in &cells {
            if state.next_step != want {
                return fail(format!(
                    "cell `{cell}` logged {} steps, expected {want}",
                    state.next_step
                ));
            }
        }
    }
    if let Some(want) = expect_cells {
        if cells.len() != want {
            return fail(format!(
                "{} cells logged steps, expected {want}",
                cells.len()
            ));
        }
    }

    println!(
        "validate_jsonl: OK — {} event line(s), {} cell(s){}{}",
        events,
        cells.len(),
        episodes.map_or(String::new(), |m| format!(", {m} episodes/step")),
        [trace_summary, access_summary]
            .into_iter()
            .flatten()
            .map(|s| format!(", {s}"))
            .collect::<String>(),
    );
    ExitCode::SUCCESS
}
