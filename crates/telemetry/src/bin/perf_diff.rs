//! Compares two `BENCH_*.json` performance snapshots and fails on
//! regression — the perf gate behind `scripts/bench_snapshot.sh` and
//! the CI bench stage (DESIGN.md §5d).
//!
//! ```text
//! perf_diff <baseline.json> <candidate.json> [--threshold R]
//! ```
//!
//! Every metric is lower-is-better wall time. A metric regresses when
//! `candidate > baseline * (1 + R)`; `R` defaults to 0.10 (+10%).
//! Metrics present on only one side are reported but never fail the
//! gate. Exit code: 0 when no metric regressed, 1 otherwise (or on a
//! malformed snapshot).

use std::process::ExitCode;

use telemetry::json;
use telemetry::perf::{self, BenchSnapshot, Verdict};

fn fail(msg: String) -> ExitCode {
    eprintln!("perf_diff: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let doc = json::parse(&text).map_err(|err| format!("{path}: {err}"))?;
    BenchSnapshot::from_json(&doc).map_err(|err| format!("{path}: {err}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(cand_path)) = (args.next(), args.next()) else {
        return fail("usage: perf_diff <baseline.json> <candidate.json> [--threshold R]".into());
    };
    let mut threshold = perf::DEFAULT_THRESHOLD;
    while let Some(flag) = args.next() {
        match (flag.as_str(), args.next().and_then(|v| v.parse().ok())) {
            ("--threshold", Some(r)) => threshold = r,
            (other, _) => return fail(format!("bad flag or value: {other}")),
        }
    }

    let baseline = match load(&base_path) {
        Ok(snapshot) => snapshot,
        Err(err) => return fail(err),
    };
    let candidate = match load(&cand_path) {
        Ok(snapshot) => snapshot,
        Err(err) => return fail(err),
    };

    println!(
        "baseline `{}` ({}) vs candidate `{}` ({}), threshold +{:.0}%",
        baseline.label,
        base_path,
        candidate.label,
        cand_path,
        threshold * 100.0
    );
    println!(
        "{:<44} {:>14} {:>14} {:>9}  verdict",
        "metric", "baseline", "candidate", "delta"
    );
    let rows = perf::diff(&baseline, &candidate, threshold);
    for row in &rows {
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".into(), |v| format!("{v:.6}"));
        let delta = row
            .relative
            .map_or_else(|| "-".into(), |r| format!("{:+.1}%", r * 100.0));
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::BaselineOnly => "baseline-only",
            Verdict::CandidateOnly => "candidate-only",
        };
        println!(
            "{:<44} {:>14} {:>14} {:>9}  {verdict}",
            row.name,
            fmt(row.baseline),
            fmt(row.candidate),
            delta
        );
    }

    let regressed = rows
        .iter()
        .filter(|r| r.verdict == Verdict::Regressed)
        .count();
    if regressed > 0 {
        eprintln!(
            "perf_diff: {regressed} metric(s) regressed beyond +{:.0}%",
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf_diff: no regression ({} metric(s) compared)",
        rows.len()
    );
    ExitCode::SUCCESS
}
