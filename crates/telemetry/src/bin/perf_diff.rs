//! Compares two `BENCH_*.json` performance snapshots and fails on
//! regression — the perf gate behind `scripts/bench_snapshot.sh` and
//! the CI bench stage (DESIGN.md §5d).
//!
//! ```text
//! perf_diff <baseline.json> <candidate.json> [--threshold R] [--only PREFIX]...
//! ```
//!
//! Every metric is lower-is-better wall time. A metric regresses when
//! `candidate > baseline * (1 + R)`; `R` defaults to 0.10 (+10%). A
//! *negative* threshold turns the gate into a must-improve check:
//! `--threshold -0.5` fails any metric that is not at least 2x faster
//! than baseline, `--threshold -0.6667` demands 3x. Repeatable
//! `--only PREFIX` restricts the comparison to metrics whose name
//! starts with any given prefix (so a must-improve gate can target the
//! hot path without demanding speedups everywhere). Metrics present on
//! only one side are reported but never fail the gate. Exit code: 0
//! when no compared metric regressed, 1 otherwise (or on a malformed
//! snapshot, or when `--only` matches nothing).

use std::process::ExitCode;

use telemetry::json;
use telemetry::perf::{self, BenchSnapshot, Verdict};

fn fail(msg: String) -> ExitCode {
    eprintln!("perf_diff: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let doc = json::parse(&text).map_err(|err| format!("{path}: {err}"))?;
    BenchSnapshot::from_json(&doc).map_err(|err| format!("{path}: {err}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(base_path), Some(cand_path)) = (args.next(), args.next()) else {
        return fail(
            "usage: perf_diff <baseline.json> <candidate.json> [--threshold R] [--only PREFIX]..."
                .into(),
        );
    };
    let mut threshold = perf::DEFAULT_THRESHOLD;
    let mut only: Vec<String> = Vec::new();
    while let Some(flag) = args.next() {
        match (flag.as_str(), args.next()) {
            ("--threshold", Some(v)) => match v.parse() {
                Ok(r) => threshold = r,
                Err(_) => return fail(format!("bad threshold: {v}")),
            },
            ("--only", Some(prefix)) => only.push(prefix),
            (other, _) => return fail(format!("bad flag or value: {other}")),
        }
    }

    let baseline = match load(&base_path) {
        Ok(snapshot) => snapshot,
        Err(err) => return fail(err),
    };
    let candidate = match load(&cand_path) {
        Ok(snapshot) => snapshot,
        Err(err) => return fail(err),
    };

    println!(
        "baseline `{}` ({}) vs candidate `{}` ({}), threshold {:+.1}%",
        baseline.label,
        base_path,
        candidate.label,
        cand_path,
        threshold * 100.0
    );
    println!(
        "{:<44} {:>14} {:>14} {:>9}  verdict",
        "metric", "baseline", "candidate", "delta"
    );
    let mut rows = perf::diff(&baseline, &candidate, threshold);
    if !only.is_empty() {
        rows.retain(|row| only.iter().any(|prefix| row.name.starts_with(prefix)));
        if rows.is_empty() {
            return fail(format!("--only {} matched no metrics", only.join(" ")));
        }
    }
    for row in &rows {
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".into(), |v| format!("{v:.6}"));
        let delta = row
            .relative
            .map_or_else(|| "-".into(), |r| format!("{:+.1}%", r * 100.0));
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::BaselineOnly => "baseline-only",
            Verdict::CandidateOnly => "candidate-only",
        };
        println!(
            "{:<44} {:>14} {:>14} {:>9}  {verdict}",
            row.name,
            fmt(row.baseline),
            fmt(row.candidate),
            delta
        );
    }

    let regressed = rows
        .iter()
        .filter(|r| r.verdict == Verdict::Regressed)
        .count();
    if regressed > 0 {
        eprintln!(
            "perf_diff: {regressed} metric(s) regressed beyond {:+.1}%",
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf_diff: no regression ({} metric(s) compared)",
        rows.len()
    );
    ExitCode::SUCCESS
}
