//! Validates Prometheus text exposition (version 0.0.4) scrapes — the
//! CI smoke stage runs this on live `/metrics?format=prom` output so
//! the renderer can never silently drift off the format.
//!
//! ```text
//! validate_prom scrape1.prom [scrape2.prom]
//! ```
//!
//! Per file:
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names match
//!   `[a-zA-Z_][a-zA-Z0-9_]*`, label values are properly quoted with
//!   only `\\` / `\"` / `\n` escapes, no duplicate label names;
//! * every sample resolves to a `# TYPE` line that precedes it (for a
//!   histogram, `x_bucket` / `x_sum` / `x_count` resolve to `x`), and
//!   no name declares its TYPE twice;
//! * values parse (`+Inf` / `-Inf` / `NaN` allowed by the grammar);
//!   counter-typed samples must be finite and non-negative;
//! * histogram bucket series are cumulative: per label set, `le`
//!   bounds strictly increase, counts never decrease, the series ends
//!   at `le="+Inf"`, and `x_count` equals the `+Inf` bucket.
//!
//! With a second file (a later scrape of the *same* server), every
//! counter-typed series and histogram bucket/count/sum from the first
//! scrape must still exist and must not have decreased — cumulative
//! series are monotone across scrapes or the accounting is broken.
//!
//! Exit code 0 on success, 1 with a diagnostic on the first violation.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

fn fail(msg: String) -> ExitCode {
    eprintln!("validate_prom: {msg}");
    ExitCode::FAILURE
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

const KNOWN_KINDS: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];

struct Sample {
    name: String,
    /// The `# TYPE` group this sample resolved to.
    group: String,
    kind: String,
    labels: Labels,
    value: f64,
}

impl Sample {
    /// Stable series identity: name + sorted labels.
    fn series_key(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
        format!("{}{{{}}}", self.name, rendered.join(","))
    }

    /// Label set with `le` removed — groups one histogram's buckets.
    fn bucket_group(&self) -> String {
        let mut labels: Vec<&(String, String)> =
            self.labels.iter().filter(|(k, _)| k != "le").collect();
        labels.sort();
        labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn le(&self) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| v.as_str())
    }
}

struct Scrape {
    samples: Vec<Sample>,
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => token.parse().ok(),
    }
}

type Labels = Vec<(String, String)>;

/// Parses `{k="v",...}` starting after the `{`; returns (labels, rest).
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start();
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without `=`".to_string())?;
        let name = rest[..eq].trim().to_string();
        if !valid_label_name(&name) {
            return Err(format!("bad label name {name:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let tail = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("label {name} value is not quoted"))?;
        let mut value = String::new();
        let mut chars = tail.char_indices();
        let after_quote = loop {
            let Some((i, c)) = chars.next() else {
                return Err(format!("unterminated value for label {name}"));
            };
            match c {
                '"' => break &tail[i + 1..],
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "bad escape in label {name}: \\{}",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ))
                    }
                },
                '\n' => return Err(format!("raw newline in label {name} value")),
                c => value.push(c),
            }
        };
        labels.push((name, value));
        rest = after_quote.trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        } else if !rest.starts_with('}') {
            return Err("expected `,` or `}` after label".to_string());
        }
    }
}

/// Histogram sample suffixes that resolve to the base `# TYPE` group.
const HISTOGRAM_SUFFIXES: [&str; 3] = ["_bucket", "_sum", "_count"];

fn check_file(path: &str) -> Result<Scrape, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("{path} line {}: {msg}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() != Some("TYPE") {
                continue; // HELP / free comments only need to be comments
            }
            let name = parts
                .next()
                .ok_or_else(|| at("# TYPE without a metric name".into()))?;
            let kind = parts
                .next()
                .ok_or_else(|| at(format!("# TYPE {name} without a kind")))?;
            if !valid_metric_name(name) {
                return Err(at(format!("bad metric name {name:?} in # TYPE")));
            }
            if !KNOWN_KINDS.contains(&kind) {
                return Err(at(format!("unknown kind {kind:?} in # TYPE {name}")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(at(format!("# TYPE {name} declared twice")));
            }
            continue;
        }

        // A sample: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| at("sample line without a value".into()))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(at(format!("bad metric name {name:?}")));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end + 1..]).map_err(|msg| at(format!("{name}: {msg}")))?
        } else {
            (Vec::new(), &line[name_end..])
        };
        {
            let mut seen = BTreeSet::new();
            for (k, _) in &labels {
                if !seen.insert(k) {
                    return Err(at(format!("{name}: duplicate label {k:?}")));
                }
            }
        }
        let mut tokens = rest.split_whitespace();
        let value_token = tokens
            .next()
            .ok_or_else(|| at(format!("{name}: sample without a value")))?;
        let value = parse_value(value_token)
            .ok_or_else(|| at(format!("{name}: unparseable value {value_token:?}")))?;
        if let Some(ts) = tokens.next() {
            if ts.parse::<i64>().is_err() {
                return Err(at(format!("{name}: bad timestamp {ts:?}")));
            }
        }
        if tokens.next().is_some() {
            return Err(at(format!("{name}: trailing tokens after value")));
        }

        // TYPE-before-sample: the declaration must already have passed.
        let group = if types.contains_key(name) {
            name.to_string()
        } else {
            let base = HISTOGRAM_SUFFIXES
                .iter()
                .find_map(|suffix| name.strip_suffix(suffix))
                .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"));
            match base {
                Some(base) => base.to_string(),
                None => {
                    return Err(at(format!(
                        "sample {name} has no preceding # TYPE declaration"
                    )))
                }
            }
        };
        let kind = types[&group].clone();
        if kind == "counter" && !(value.is_finite() && value >= 0.0) {
            return Err(at(format!(
                "counter {name} has non-finite or negative value {value_token}"
            )));
        }
        samples.push(Sample {
            name: name.to_string(),
            group,
            kind,
            labels,
            value,
        });
    }

    check_histograms(path, &types, &samples)?;
    Ok(Scrape { samples })
}

/// Buckets cumulative and ending at `+Inf`, `_count` == `+Inf` bucket.
fn check_histograms(
    path: &str,
    types: &BTreeMap<String, String>,
    samples: &[Sample],
) -> Result<(), String> {
    for (base, kind) in types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{base}_bucket");
        let count_name = format!("{base}_count");
        // label-set (sans le) -> ordered (le, count) as they appeared
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for s in samples {
            if s.name == bucket_name {
                let le_raw = s
                    .le()
                    .ok_or_else(|| format!("{path}: {bucket_name} sample without `le`"))?;
                let le = parse_value(le_raw)
                    .ok_or_else(|| format!("{path}: {bucket_name} bad le {le_raw:?}"))?;
                groups
                    .entry(s.bucket_group())
                    .or_default()
                    .push((le, s.value));
            } else if s.name == count_name {
                counts.insert(s.bucket_group(), s.value);
            }
        }
        for (labels, buckets) in &groups {
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_count = -1.0;
            for &(le, count) in buckets {
                if le <= prev_le {
                    return Err(format!(
                        "{path}: {bucket_name}{{{labels}}} le bounds not strictly increasing"
                    ));
                }
                if count < prev_count {
                    return Err(format!(
                        "{path}: {bucket_name}{{{labels}}} cumulative counts decreased at le={le}"
                    ));
                }
                prev_le = le;
                prev_count = count;
            }
            let Some(&(last_le, last_count)) = buckets.last() else {
                continue;
            };
            if last_le != f64::INFINITY {
                return Err(format!(
                    "{path}: {bucket_name}{{{labels}}} does not end at le=\"+Inf\""
                ));
            }
            match counts.get(labels) {
                Some(&total) if total == last_count => {}
                Some(&total) => {
                    return Err(format!(
                        "{path}: {count_name}{{{labels}}} = {total} but the +Inf bucket \
                         holds {last_count}"
                    ));
                }
                None => {
                    return Err(format!(
                        "{path}: {bucket_name}{{{labels}}} has no matching {count_name}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Is this series cumulative (must be monotone across scrapes)?
fn is_cumulative(s: &Sample) -> bool {
    s.kind == "counter"
        || (s.kind == "histogram"
            && HISTOGRAM_SUFFIXES
                .iter()
                .any(|suffix| s.name == format!("{}{suffix}", s.group)))
}

fn check_monotone(first: &Scrape, second: &Scrape, path2: &str) -> Result<u64, String> {
    let mut later: BTreeMap<String, f64> = BTreeMap::new();
    for s in &second.samples {
        if is_cumulative(s) {
            later.insert(s.series_key(), s.value);
        }
    }
    let mut checked = 0u64;
    for s in &first.samples {
        if !is_cumulative(s) {
            continue;
        }
        let key = s.series_key();
        match later.get(&key) {
            Some(&v2) if v2 >= s.value => checked += 1,
            Some(&v2) => {
                return Err(format!(
                    "{path2}: cumulative series {key} went backwards: {} -> {v2}",
                    s.value
                ));
            }
            None => {
                return Err(format!(
                    "{path2}: cumulative series {key} present in the first scrape is gone"
                ));
            }
        }
    }
    Ok(checked)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (first, second) = match args.as_slice() {
        [a] => (a, None),
        [a, b] => (a, Some(b)),
        _ => return fail("usage: validate_prom FILE [FILE2]".into()),
    };

    let scrape1 = match check_file(first) {
        Ok(s) => s,
        Err(err) => return fail(err),
    };
    let metrics: BTreeSet<&str> = scrape1.samples.iter().map(|s| s.group.as_str()).collect();
    let mut summary = format!(
        "{} sample(s) across {} metric(s)",
        scrape1.samples.len(),
        metrics.len()
    );

    if let Some(path2) = second {
        let scrape2 = match check_file(path2) {
            Ok(s) => s,
            Err(err) => return fail(err),
        };
        match check_monotone(&scrape1, &scrape2, path2) {
            Ok(checked) => {
                summary.push_str(&format!(
                    ", {checked} cumulative series monotone across 2 scrapes"
                ));
            }
            Err(err) => return fail(err),
        }
    }

    println!("validate_prom: OK — {summary}");
    ExitCode::SUCCESS
}
