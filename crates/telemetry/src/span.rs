//! RAII timers over the monotonic clock.
//!
//! [`Stopwatch`] is the bare measurement ([`std::time::Instant`] +
//! elapsed-seconds read); [`Span`] couples one to a registry histogram
//! and records its own lifetime on drop, so instrumenting a scope is
//! one line at the top:
//!
//! ```
//! # fn retrain() {}
//! let _span = telemetry::Span::enter("system_retrain_seconds");
//! retrain(); // duration lands in the histogram when `_span` drops
//! ```

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{self, Histogram, Registry, TIME_BUCKETS};

/// A running monotonic timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Seconds since [`Stopwatch::start`]; monotone, never negative.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Records the duration from construction to drop into a histogram.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    hist: Arc<Histogram>,
    watch: Stopwatch,
}

impl Span {
    /// Times until drop into the [`metrics::global`] histogram `name`
    /// (registered with [`TIME_BUCKETS`] on first use).
    pub fn enter(name: &'static str) -> Self {
        Self::enter_in(metrics::global(), name)
    }

    /// [`Span::enter`] against an explicit registry (tests).
    pub fn enter_in(registry: &Registry, name: &'static str) -> Self {
        Self {
            hist: registry.histogram(name, &TIME_BUCKETS),
            watch: Stopwatch::start(),
        }
    }

    /// Seconds elapsed so far, without ending the span.
    pub fn elapsed_secs(&self) -> f64 {
        self.watch.elapsed_secs()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.watch.elapsed_secs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_secs();
        let b = w.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn span_records_exactly_once_on_drop() {
        let reg = Registry::new();
        {
            let span = Span::enter_in(&reg, "scope_seconds");
            assert_eq!(span.hist.count(), 0, "nothing recorded while open");
            assert!(span.elapsed_secs() >= 0.0);
        }
        let h = reg.histogram("scope_seconds", &TIME_BUCKETS);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }
}
