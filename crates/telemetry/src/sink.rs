//! JSONL event sink: one JSON object per line, append-only.
//!
//! The run-log convention every experiment binary follows (see
//! DESIGN.md §5b):
//!
//! 1. the first line is a **manifest** — `{"type":"manifest", ...}`
//!    with the run configuration (dataset, ranker, seed, thread count,
//!    step/episode counts);
//! 2. every later line is an **event** — `{"type":"step", ...}` per
//!    trainer step (or `"observation"`, `"metrics"`, ... for other
//!    event shapes), carrying whatever fields that event type needs.
//!
//! The sink is `Sync`: a `Mutex` serializes whole lines, so concurrent
//! experiment cells can share one file without interleaving bytes.
//! Every line is flushed as written — a crashed run still leaves a
//! readable prefix, which is what the CI validator relies on.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread::JoinHandle;

use crate::json::Json;
use crate::metrics;

/// A thread-safe JSON-lines file writer.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one value as a single line and flushes it.
    pub fn emit(&self, line: &Json) -> io::Result<()> {
        let mut out = self.out.lock().unwrap();
        out.write_all(line.render().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        metrics::counter("telemetry_lines_total").inc();
        Ok(())
    }

    /// [`JsonlSink::emit`] of a `{"type":"metrics", "metrics": ...}`
    /// line holding a snapshot of the global registry — the
    /// conventional final line of a run log.
    pub fn emit_metrics_snapshot(&self) -> io::Result<()> {
        let line = Json::obj()
            .field("type", "metrics")
            .field("metrics", metrics::snapshot().to_json());
        self.emit(&line)
    }
}

/// Default queue depth for [`AsyncJsonlSink`].
pub const ASYNC_SINK_CAPACITY: usize = 4096;

/// A [`JsonlSink`] drained by a dedicated writer thread.
///
/// `emit` pushes onto a bounded queue and never touches the file — the
/// cost on the caller (e.g. the serve event loop) is one `try_send`.
/// When the queue is full the line is *dropped*, reported via the
/// `false` return so the caller can account for it; the sink itself
/// never blocks and never loses silently.
///
/// [`AsyncJsonlSink::close`] performs the graceful-shutdown handshake:
/// it closes the queue, joins the writer (which drains every enqueued
/// line first), and hands the inner [`JsonlSink`] back so the caller
/// can synchronously append trailing lines (e.g. an accounting summary)
/// that are guaranteed to land after every queued event.
pub struct AsyncJsonlSink {
    tx: Mutex<Option<SyncSender<Json>>>,
    writer: Mutex<Option<JoinHandle<JsonlSink>>>,
}

impl AsyncJsonlSink {
    /// Creates (truncating) the file at `path` and starts the writer
    /// thread.
    pub fn create(path: impl AsRef<Path>, capacity: usize) -> io::Result<Self> {
        let sink = JsonlSink::create(path)?;
        let (tx, rx) = sync_channel::<Json>(capacity.max(1));
        let writer = std::thread::Builder::new()
            .name("jsonl-writer".to_string())
            .spawn(move || {
                while let Ok(line) = rx.recv() {
                    // Write errors are not recoverable from this thread;
                    // drop the line and keep draining so close() still
                    // hands the sink back.
                    let _ = sink.emit(&line);
                }
                sink
            })
            .expect("spawn jsonl writer thread");
        Ok(Self {
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// Enqueue one line. Returns `false` if the line was dropped
    /// (queue full, or the sink already closed).
    pub fn emit(&self, line: Json) -> bool {
        let tx = self.tx.lock().unwrap();
        match tx.as_ref() {
            None => false,
            Some(tx) => match tx.try_send(line) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
            },
        }
    }

    /// Close the queue, drain every enqueued line to disk, and return
    /// the inner synchronous sink (for trailing summary lines).
    /// Subsequent `emit` calls return `false`. Returns `None` if
    /// already closed.
    pub fn close(&self) -> Option<JsonlSink> {
        self.tx.lock().unwrap().take()?;
        let handle = self.writer.lock().unwrap().take()?;
        Some(handle.join().expect("jsonl writer thread panicked"))
    }
}

impl Drop for AsyncJsonlSink {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "telemetry-sink-{}-{name}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn lines_round_trip_through_file() {
        let path = temp_path("roundtrip");
        let sink = JsonlSink::create(&path).expect("create");
        sink.emit(&Json::obj().field("type", "manifest").field("seed", 7u64))
            .expect("emit");
        sink.emit(&Json::obj().field("type", "step").field("step", 0usize))
            .expect("emit");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let manifest = json::parse(lines[0]).expect("line 0 parses");
        assert_eq!(
            manifest.get("type").and_then(Json::as_str),
            Some("manifest")
        );
        let step = json::parse(lines[1]).expect("line 1 parses");
        assert_eq!(step.get("step").and_then(Json::as_u64), Some(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_emitters_never_interleave_bytes() {
        let path = temp_path("concurrent");
        let sink = JsonlSink::create(&path).expect("create");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        sink.emit(
                            &Json::obj()
                                .field("type", "event")
                                .field("thread", t)
                                .field("i", i)
                                .field("pad", "x".repeat(200)),
                        )
                        .expect("emit");
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 200);
        for line in lines {
            json::parse(line).expect("every line is one valid document");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn async_sink_drains_everything_on_close() {
        let path = temp_path("async-drain");
        let sink = AsyncJsonlSink::create(&path, 1024).expect("create");
        for i in 0..300u64 {
            assert!(sink.emit(Json::obj().field("type", "event").field("i", i)));
        }
        let inner = sink.close().expect("first close yields the sink");
        inner
            .emit(&Json::obj().field("type", "summary").field("events", 300u64))
            .expect("trailing summary");
        assert!(sink.close().is_none(), "second close is a no-op");
        assert!(
            !sink.emit(Json::obj()),
            "emit after close is a dropped line"
        );
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 301, "every queued line plus the summary");
        let last = json::parse(lines[300]).expect("summary parses");
        assert_eq!(last.get("type").and_then(Json::as_str), Some("summary"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn async_sink_full_queue_drops_visibly() {
        let path = temp_path("async-full");
        let sink = AsyncJsonlSink::create(&path, 1).expect("create");
        // Saturate: with a 1-deep queue and a slow consumer some of a
        // burst must report as dropped, and accepted+dropped covers all.
        let mut accepted = 0u64;
        for i in 0..2000u64 {
            if sink.emit(Json::obj().field("i", i).field("pad", "x".repeat(64))) {
                accepted += 1;
            }
        }
        sink.close();
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count() as u64, accepted);
        std::fs::remove_file(&path).ok();
    }
}
